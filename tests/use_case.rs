//! E3 — Fig. 3: the supply-chain / trade-finance interoperation use case.

use std::sync::Arc;
use tdt::apps::scenario::{acronym_table, run_trade_scenario, ACRONYMS};
use tdt::apps::stl_app::{CarrierApp, SellerApp};
use tdt::apps::swt_app::{BuyerApp, SellerClientApp};
use tdt::contracts::stl::ShipmentStatus;
use tdt::contracts::swt::LcStatus;
use tdt::interop::setup::stl_swt_testbed;
use tdt::interop::InteropError;

#[test]
fn full_scenario_reaches_payment() {
    let t = stl_swt_testbed();
    let report = run_trade_scenario(&t, "PO-1001").unwrap();
    assert_eq!(report.final_lc_status, LcStatus::Paid);
    // Both ledgers advanced: STL ran 4 business transactions, SWT ran 5.
    let (_, stl_peer) = t.stl.peers().next().unwrap();
    assert!(stl_peer.read().height() >= 5);
    let (_, swt_peer) = t.swt.peers().next().unwrap();
    assert!(swt_peer.read().height() >= 6);
    // Every replica of each network holds an identical world state.
    t.stl.check_replica_consistency().unwrap();
    t.swt.check_replica_consistency().unwrap();
}

#[test]
fn scenario_steps_in_paper_order() {
    let t = stl_swt_testbed();
    let report = run_trade_scenario(&t, "PO-7").unwrap();
    let numbers: Vec<&str> = report.steps.iter().map(|s| s.number).collect();
    assert_eq!(
        numbers,
        vec!["1", "2", "3-4", "5-6", "7", "8", "9", "10a", "10b"]
    );
    // Step 9 is the only cross-network step.
    let cross: Vec<&str> = report
        .steps
        .iter()
        .filter(|s| s.network == "cross")
        .map(|s| s.number)
        .collect();
    assert_eq!(cross, vec!["9"]);
}

/// The fraud scenario the paper's Step 9 exists to prevent: the seller
/// cannot claim payment against a forged B/L, because only a proof-backed
/// B/L reaches the SWT ledger.
#[test]
fn seller_cannot_shortcut_to_payment() {
    let t = stl_swt_testbed();
    let seller = SellerApp::new(t.stl_seller_gateway());
    let carrier = CarrierApp::new(t.stl_carrier_gateway());
    let buyer = BuyerApp::new(t.swt_buyer_gateway());
    let swt_sc = SellerClientApp::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));

    seller.create_shipment("PO-9", "goods").unwrap();
    carrier.confirm_booking("PO-9").unwrap();
    // No possession transfer, no B/L!
    buyer.request_lc("PO-9", "LC-9", "b", "s", 1_000).unwrap();
    buyer.issue_lc("PO-9").unwrap();
    // The cross-network fetch fails: there is no B/L to prove.
    let err = swt_sc.fetch_bill_of_lading("PO-9").unwrap_err();
    assert!(matches!(err, InteropError::NotFound(_)));
    // And payment cannot be requested without verified docs.
    assert!(swt_sc.request_payment("PO-9").is_err());
    assert_eq!(
        buyer.letter_of_credit("PO-9").unwrap().status,
        LcStatus::Issued
    );
    assert_eq!(
        seller.shipment("PO-9").unwrap().status,
        ShipmentStatus::BookingConfirmed
    );
}

#[test]
fn parallel_purchase_orders_do_not_interfere() {
    let t = stl_swt_testbed();
    let r1 = run_trade_scenario(&t, "PO-A").unwrap();
    let r2 = run_trade_scenario(&t, "PO-B").unwrap();
    assert_eq!(r1.final_lc_status, LcStatus::Paid);
    assert_eq!(r2.final_lc_status, LcStatus::Paid);
    // Distinct B/Ls on STL.
    let carrier = CarrierApp::new(t.stl_carrier_gateway());
    assert_eq!(carrier.bill_of_lading("PO-A").unwrap().bl_id, "BL-PO-A");
    assert_eq!(carrier.bill_of_lading("PO-B").unwrap().bl_id, "BL-PO-B");
}

#[test]
fn table_one_acronyms() {
    // E5 — Table 1 regenerates completely.
    let table = acronym_table();
    assert_eq!(ACRONYMS.len(), 7);
    for (acronym, expansion) in ACRONYMS {
        assert!(table.contains(acronym), "{acronym} missing");
        assert!(table.contains(expansion), "{expansion} missing");
    }
}
