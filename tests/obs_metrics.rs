//! Golden test for the unified metrics exposition (ISSUE 5).
//!
//! A full relay + group harness is scraped once; the Prometheus text must
//! parse cleanly and the (metric name, type) inventory must match
//! `tests/golden/metrics.txt`. Regenerate after intentional changes with
//! `OBS_BLESS=1 cargo test --test obs_metrics`.

use std::sync::Arc;
use tdt::obs::export::parse_exposition;
use tdt::obs::ObsHandle;
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::driver::EchoDriver;
use tdt::relay::redundancy::RelayGroup;
use tdt::relay::service::RelayService;
use tdt::relay::telemetry::{register_group, register_relay};
use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt::wire::messages::{NetworkAddress, Query};

const GOLDEN_PATH: &str = "tests/golden/metrics.txt";

/// Builds a one-member relay group, runs one query through it so counters
/// and the latency histogram are live, and scrapes the unified handle.
fn harness_exposition() -> String {
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    stl.register_driver(Arc::new(EchoDriver::new("stl")));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let swt = Arc::new(RelayService::new(
        "swt-relay",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    let group = Arc::new(RelayGroup::new(vec![Arc::clone(&swt)]).expect("non-empty group"));
    let query = Query {
        request_id: "golden".into(),
        address: NetworkAddress::new("stl", "l", "c", "f"),
        ..Default::default()
    };
    group.relay_query(&query).expect("query through harness");

    // A durable ledger backend with one recovery pass behind it, so the
    // tdt_ledger_* series are part of the inventory.
    let mut backend = tdt::ledger::storage::file::FileBackend::new(
        Arc::new(tdt::ledger::storage::vfs::MemVfs::new()),
        tdt::ledger::storage::file::FileConfig::default(),
    );
    use tdt::ledger::storage::StorageBackend;
    backend.load().expect("load empty backend");
    backend
        .append_block(&tdt::ledger::block::Block::genesis(vec![b"g".to_vec()]))
        .expect("append genesis");

    let handle = ObsHandle::new();
    register_relay(&handle, &swt);
    register_group(&handle, &group);
    handle.add_source(Arc::new(
        tdt::ledger::storage::telemetry::StorageMetricSource::new(backend.stats()),
    ));

    // An SLO tracker with one recorded request, so the tdt_slo_* burn
    // gauges join the inventory.
    let slo = Arc::new(tdt::obs::Slo::new(tdt::obs::SloConfig::new(
        "golden",
        std::time::Duration::from_millis(50),
    )));
    slo.record(std::time::Duration::from_millis(1), true);
    handle.add_source(Arc::new(tdt::obs::slo::SloMetricSource::new(&slo)));
    handle.prometheus_text()
}

#[test]
fn exposition_parses_and_matches_golden_inventory() {
    let text = harness_exposition();
    let inventory = parse_exposition(&text).expect("exposition must parse");
    let mut lines: Vec<String> = inventory
        .iter()
        .map(|(name, kind)| format!("{name} {kind}"))
        .collect();
    lines.sort();
    lines.dedup();
    let rendered = format!("{}\n", lines.join("\n"));

    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        println!("blessed {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run OBS_BLESS=1 cargo test --test obs_metrics");
    assert_eq!(
        rendered, golden,
        "metric inventory drifted from {GOLDEN_PATH}; \
         regenerate with OBS_BLESS=1 if the change is intentional"
    );
}

#[test]
fn json_snapshot_covers_the_same_metrics() {
    // The JSON exporter must name every metric the Prometheus exposition
    // names (it is the machine-readable twin, not a subset).
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    let handle = ObsHandle::new();
    register_relay(&handle, &stl);
    let text = handle.prometheus_text();
    let json = handle.json_text();
    for (name, _) in parse_exposition(&text).expect("parse") {
        // Families may carry a label block in the JSON series name, so
        // match on the name prefix rather than the exact quoted string.
        assert!(
            json.contains(&format!("\"name\":\"{name}")),
            "JSON snapshot missing {name}"
        );
    }
}

#[test]
fn two_relays_on_one_handle_stay_distinct() {
    // Regression: relay series are labeled by relay id, so two relays
    // bridged into one handle must not overwrite each other's values.
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    stl.register_driver(Arc::new(EchoDriver::new("stl")));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let swt = Arc::new(RelayService::new(
        "swt-relay",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    let query = Query {
        request_id: "labels".into(),
        address: NetworkAddress::new("stl", "l", "c", "f"),
        ..Default::default()
    };
    swt.relay_query(&query).expect("first query");
    swt.relay_query(&query).expect("second query");

    let handle = ObsHandle::new();
    register_relay(&handle, &stl);
    register_relay(&handle, &swt);
    let text = handle.prometheus_text();
    parse_exposition(&text).expect("labeled exposition parses");
    // The forwarding side and the serving side each keep their own count.
    assert!(
        text.contains("tdt_relay_forwarded_total{relay=\"swt-relay\"} 2"),
        "missing swt forwarded series in:\n{text}"
    );
    assert!(
        text.contains("tdt_relay_served_total{relay=\"stl-relay\"} 2"),
        "missing stl served series in:\n{text}"
    );
    // Both latency histograms are exported, not first-registration-wins.
    assert!(text.contains("tdt_relay_latency_ns_count{relay=\"stl-relay\"}"));
    assert!(text.contains("tdt_relay_latency_ns_count{relay=\"swt-relay\"}"));
}
