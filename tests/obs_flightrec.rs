//! Integration tests for the ISSUE 10 observability stack: the flight
//! recorder, the scoped sampling profiler, the admin health surface,
//! and their interaction under concurrent scraping and injected chaos.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tdt::obs::export::parse_exposition;
use tdt::obs::flight;
use tdt::obs::profile::{parse_folded, Accumulator};
use tdt::obs::ObsHandle;
use tdt::relay::breaker::{BreakerConfig, CircuitBreaker};
use tdt::relay::chaos::{ChaosConfig, ChaosTransport};
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::driver::EchoDriver;
use tdt::relay::service::RelayService;
use tdt::relay::transport::{
    EnvelopeHandler, InProcessBus, Readiness, RelayTransport, TcpRelayServer, TcpServerConfig,
};
use tdt::wire::messages::{NetworkAddress, Query, RelayEnvelope};

/// Minimal HTTP/1.1 GET; returns (status line, body bytes).
fn http_get(base: &str, path: &str) -> (String, Vec<u8>) {
    let addr = base.strip_prefix("http://").expect("http base url");
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let status = head.lines().next().unwrap_or("").to_string();
    (status, raw[header_end + 4..].to_vec())
}

struct EchoServer;

impl EnvelopeHandler for EchoServer {
    fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        envelope
    }
}

fn spawn_admin_server(readiness: Option<Arc<Readiness>>) -> (TcpRelayServer, String) {
    let obs = Arc::new(ObsHandle::new());
    obs.registry()
        .counter("tdt_test_stress_total", "stress marker")
        .add(1);
    let server = TcpRelayServer::spawn_with(
        "127.0.0.1:0",
        Arc::new(EchoServer),
        TcpServerConfig {
            obs: Some(obs),
            readiness,
            ..TcpServerConfig::default()
        },
    )
    .expect("spawn server");
    let base = server.admin_endpoint().expect("admin listener configured");
    (server, base)
}

/// Metrics, profile, and flight-recorder scrapes hammered concurrently:
/// no deadlock, no torn exposition, every payload decodable.
#[test]
fn concurrent_scrape_stress() {
    let (server, base) = spawn_admin_server(Some(Arc::new(Readiness::recovered())));
    // Background traffic so the flight rings and scrape bodies are live.
    flight::record(flight::FlightKind::Mark, 7, 1, 2);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let metrics_base = base.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    let (status, body) = http_get(&metrics_base, "/metrics");
                    assert_eq!(status, "HTTP/1.1 200 OK", "metrics scrape: {status}");
                    let text = String::from_utf8(body).expect("metrics is utf-8");
                    parse_exposition(&text).expect("exposition must parse mid-stress");
                }
            });
            let flight_base = base.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    let (status, body) = http_get(&flight_base, "/debug/flightrec");
                    assert_eq!(status, "HTTP/1.1 200 OK", "flightrec scrape: {status}");
                    let dump = flight::decode_dump(&body).expect("dump decodes mid-stress");
                    assert!(dump.reason.contains("/debug/flightrec"));
                }
            });
            let profile_base = base.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    let (status, body) =
                        http_get(&profile_base, "/debug/profile?seconds=0.05&hz=97");
                    assert_eq!(status, "HTTP/1.1 200 OK", "profile scrape: {status}");
                    let text = String::from_utf8(body).expect("folded is utf-8");
                    parse_folded(&text).expect("folded stacks parse mid-stress");
                }
            });
            let health_base = base.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    let (status, body) = http_get(&health_base, "/healthz");
                    assert_eq!(status, "HTTP/1.1 200 OK", "healthz: {status}");
                    assert_eq!(body, b"ok\n");
                }
            });
        }
    });
    server.shutdown();
}

/// `/healthz` is liveness (always 200); `/readyz` flips with ledger
/// recovery and watches the circuit breaker.
#[test]
fn healthz_and_readyz_gate_on_recovery_and_breaker() {
    let readiness = Arc::new(Readiness::new());
    let (server, base) = spawn_admin_server(Some(Arc::clone(&readiness)));

    let (status, body) = http_get(&base, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, b"ok\n");

    let (status, body) = http_get(&base, "/readyz");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
    assert!(
        String::from_utf8_lossy(&body).contains("ledger recovery incomplete"),
        "got: {}",
        String::from_utf8_lossy(&body)
    );

    readiness.set_recovered(true);
    let (status, body) = http_get(&base, "/readyz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, b"ready\n");

    // An open circuit takes readiness away again.
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        consecutive_failures: 2,
        cooldown: Duration::from_secs(60),
        ..BreakerConfig::default()
    }));
    readiness.watch_breaker(Arc::clone(&breaker));
    breaker.record_failure("inproc:downstream");
    breaker.record_failure("inproc:downstream");
    let (status, body) = http_get(&base, "/readyz");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
    assert!(
        String::from_utf8_lossy(&body).contains("circuit"),
        "got: {}",
        String::from_utf8_lossy(&body)
    );
    server.shutdown();
}

/// Runs a short seeded chaos burst and returns the flight records it
/// left behind (chaos events carrying this seed, after `after_seq`).
fn chaos_burst(seed: u64, after_seq: u64) -> Vec<flight::FlightRecord> {
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    stl.register_driver(Arc::new(EchoDriver::new("stl")));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let chaos = Arc::new(
        ChaosTransport::new(
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
            seed,
            ChaosConfig {
                drop_prob: 0.3,
                corrupt_prob: 0.2,
                ..ChaosConfig::default()
            },
        )
        .with_local_name("swt-chaos"),
    );
    let swt = Arc::new(RelayService::new(
        "swt-chaos",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        chaos as Arc<dyn RelayTransport>,
    ));
    for i in 0..64 {
        let q = Query {
            request_id: format!("c{i}"),
            address: NetworkAddress::new("stl", "l", "c", "f")
                .with_arg(format!("p{i}").into_bytes()),
            ..Default::default()
        };
        let _ = swt.relay_query(&q);
    }
    flight::snapshot()
        .into_iter()
        .filter(|r| r.seq > after_seq && r.kind == flight::FlightKind::Chaos as u8 && r.a == seed)
        .collect()
}

/// A seeded fault burst must leave a decodable dump containing the
/// triggering chaos events, and the same seed must replay to
/// byte-identical canonical dump bytes.
#[test]
fn chaos_fault_burst_produces_replayable_dump() {
    let seed = 0xC0FF_EE00_0BAD_5EED_u64;
    let high_water = flight::snapshot().iter().map(|r| r.seq).max().unwrap_or(0);

    let first = chaos_burst(seed, high_water);
    assert!(
        !first.is_empty(),
        "a 30% drop / 20% corrupt burst over 64 queries must record chaos events"
    );

    // The dump endpoint path: encode with the real API, decode, and find
    // the triggering events inside.
    let dump_bytes = flight::dump("test: chaos fault burst");
    let dump = flight::decode_dump(&dump_bytes).expect("dump decodes");
    let chaos_in_dump = dump
        .records
        .iter()
        .filter(|r| r.kind == flight::FlightKind::Chaos as u8 && r.a == seed)
        .count();
    assert!(
        chaos_in_dump > 0,
        "incident dump must contain the chaos events that triggered it"
    );
    assert_eq!(dump.reason, "test: chaos fault burst");

    // Same seed, fresh harness: the canonical dump bytes replay
    // byte-identically (seq/time/thread normalized; kind/code/payload
    // must match exactly).
    let second_floor = flight::snapshot().iter().map(|r| r.seq).max().unwrap_or(0);
    let second = chaos_burst(seed, second_floor);
    assert_eq!(
        flight::canonical_dump_bytes("chaos replay", &first),
        flight::canonical_dump_bytes("chaos replay", &second),
        "same-seed chaos bursts must produce identical canonical dumps \
         ({} vs {} events)",
        first.len(),
        second.len()
    );
}

/// An SLO breach must fire a flight-recorder dump whose bytes are
/// CRC-valid and whose events include the breach itself.
#[test]
fn slo_breach_fires_a_decodable_flight_dump() {
    let slo = tdt::obs::Slo::new(
        tdt::obs::SloConfig::new("breach-test", Duration::from_millis(10))
            .with_min_samples(1)
            .with_burn_threshold(1.0),
    );
    let dumps_before = flight::dumps_taken();
    for _ in 0..50 {
        slo.record(Duration::from_millis(1), false);
    }
    let status = slo.evaluate();
    assert!(
        status.breached,
        "a 100% failure burst must breach: {status:?}"
    );
    assert!(
        flight::dumps_taken() > dumps_before,
        "a fresh breach must take a flight dump"
    );
    // The dump taken at the breach is CRC-valid and decodable. (Another
    // concurrently-running test may have dumped since, which is fine —
    // every dump must decode.)
    let last = flight::last_dump().expect("a dump was stored");
    flight::decode_dump(&last).expect("breach dump must be CRC-valid");
    // The breach event itself is in the record stream, so any dump taken
    // from here on explains what fired.
    let dump = flight::decode_dump(&flight::dump("test: after slo breach")).expect("decodes");
    assert!(
        dump.records
            .iter()
            .any(|r| r.kind == flight::FlightKind::Slo as u8 && r.code == 1),
        "dump must contain the SLO breach event"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Folded-stack output always parses back, and the parsed weights
    // sum to the accumulator's sample count — for any mix of paths
    // (interned or unknown ids) and idle observations.
    #[test]
    fn folded_stacks_parse_and_weights_sum(
        paths in prop::collection::vec(
            prop::collection::vec(1u32..6, 0..6),
            0..40,
        )
    ) {
        let mut acc = Accumulator::new();
        let mut expected_samples = 0u64;
        let mut expected_idle = 0u64;
        for path in &paths {
            acc.observe(path);
            if path.is_empty() {
                expected_idle += 1;
            } else {
                expected_samples += 1;
            }
        }
        let report = acc.finish();
        prop_assert_eq!(report.samples, expected_samples);
        prop_assert_eq!(report.idle, expected_idle);
        let rows = parse_folded(&report.folded_text())
            .map_err(|e| TestCaseError::fail(format!("folded must parse: {e}")))?;
        let total: u64 = rows.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(total, report.samples, "weights must sum to sample count");
        for (frames, weight) in &rows {
            prop_assert!(*weight > 0, "zero-weight rows are never emitted");
            prop_assert!(!frames.is_empty(), "paths have at least one frame");
        }
    }
}
