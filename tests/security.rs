//! E6-E9 — the paper's security evaluation (§5): confidentiality,
//! integrity, availability, and replay protection, each exercised through
//! fault/attack injection.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tdt::contracts::swt::SwtChaincode;
use tdt::interop::driver::FabricDriver;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
use tdt::interop::{InteropClient, InteropError};
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::ratelimit::RateLimiter;
use tdt::relay::redundancy::RelayGroup;
use tdt::relay::retry::{RetryPolicy, RetryingTransport};
use tdt::relay::service::RelayService;
use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt::relay::RelayError;
use tdt::wire::codec::Message;
use tdt::wire::messages::{NetworkAddress, RelayEnvelope, VerificationPolicy};

fn prepared() -> Testbed {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    let buyer = t.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                b"PO-1001".to_vec(),
                b"LC-1".to_vec(),
                b"buyer".to_vec(),
                b"seller".to_vec(),
                b"100000".to_vec(),
            ],
        )
        .unwrap()
        .into_committed()
        .unwrap();
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])
        .unwrap()
        .into_committed()
        .unwrap();
    t
}

fn bl_address() -> NetworkAddress {
    NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec())
}

fn policy() -> VerificationPolicy {
    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
}

/// A transport that records every envelope it carries (a honest-but-curious
/// relay link) before delegating to the real bus.
struct WiretapTransport {
    inner: Arc<InProcessBus>,
    captured: Mutex<Vec<Vec<u8>>>,
}

impl RelayTransport for WiretapTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        self.captured.lock().push(envelope.encode_to_vec());
        let reply = self.inner.send(endpoint, envelope)?;
        self.captured.lock().push(reply.encode_to_vec());
        Ok(reply)
    }
}

/// A transport that flips bits in the reply payload (a malicious relay).
struct TamperingTransport {
    inner: Arc<InProcessBus>,
}

impl RelayTransport for TamperingTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let mut reply = self.inner.send(endpoint, envelope)?;
        // Decode, corrupt the result ciphertext, re-encode.
        if let Ok(mut response) =
            tdt::wire::messages::QueryResponse::decode_from_slice(&reply.payload)
        {
            if !response.result.is_empty() {
                let last = response.result.len() - 1;
                response.result[last] ^= 0x01;
                reply.payload = response.encode_to_vec();
            }
        }
        Ok(reply)
    }
}

fn client_with_transport(t: &Testbed, transport: Arc<dyn RelayTransport>) -> InteropClient {
    let relay = Arc::new(RelayService::new(
        "swt-relay-custom",
        "swt",
        Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
        transport,
    ));
    InteropClient::new(t.swt_seller_gateway(), relay)
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

// ---------------------------------------------------------------------------
// E6: Confidentiality
// ---------------------------------------------------------------------------

#[test]
fn confidentiality_relay_never_sees_plaintext() {
    let t = prepared();
    let wiretap = Arc::new(WiretapTransport {
        inner: Arc::clone(&t.bus),
        captured: Mutex::new(Vec::new()),
    });
    let client = client_with_transport(&t, Arc::clone(&wiretap) as Arc<dyn RelayTransport>);
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    // The plaintext B/L (and even its goods description) never crossed the
    // relay link in the clear.
    let captured = wiretap.captured.lock();
    assert!(!captured.is_empty());
    for frame in captured.iter() {
        assert!(
            !contains_subslice(frame, &remote.data),
            "plaintext B/L leaked through the relay"
        );
        assert!(
            !contains_subslice(frame, b"600 tulip bulbs"),
            "goods description leaked through the relay"
        );
    }
}

#[test]
fn confidentiality_exfiltrated_proof_unusable() {
    // A malicious relay captures the response. Without the SWT-SC's
    // decryption key the metadata stays encrypted, so the proof cannot be
    // presented to any Data Acceptance contract (which requires plaintext
    // metadata matching the signatures).
    let t = prepared();
    let wiretap = Arc::new(WiretapTransport {
        inner: Arc::clone(&t.bus),
        captured: Mutex::new(Vec::new()),
    });
    let client = client_with_transport(&t, Arc::clone(&wiretap) as Arc<dyn RelayTransport>);
    client.query_remote(bl_address(), policy()).unwrap();
    // Reconstruct what the relay saw.
    let captured = wiretap.captured.lock();
    let reply = RelayEnvelope::decode_from_slice(captured.last().unwrap()).unwrap();
    let response = tdt::wire::messages::QueryResponse::decode_from_slice(&reply.payload).unwrap();
    for att in &response.attestations {
        assert!(att.metadata_encrypted);
        // The signature is over the *plaintext*; over the ciphertext it
        // does not verify, so the stolen attestation proves nothing.
        let cert = tdt::wire::messages::decode_certificate(&att.signer_cert).unwrap();
        let vk = cert.verifying_key().unwrap();
        let sig = tdt::crypto::schnorr::Signature::from_bytes(&att.signature).unwrap();
        assert!(vk.verify(&att.metadata, &sig).is_err());
    }
}

// ---------------------------------------------------------------------------
// E7: Integrity
// ---------------------------------------------------------------------------

#[test]
fn integrity_tampering_relay_detected() {
    let t = prepared();
    let client = client_with_transport(
        &t,
        Arc::new(TamperingTransport {
            inner: Arc::clone(&t.bus),
        }) as Arc<dyn RelayTransport>,
    );
    let err = client.query_remote(bl_address(), policy()).unwrap_err();
    assert!(matches!(err, InteropError::InvalidResponse(_)));
}

#[test]
fn integrity_forged_proof_rejected_by_cmdac() {
    // Even if a compromised client submitted a proof whose result was
    // swapped after attestation, the destination peers reject it.
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let mut remote = client.query_remote(bl_address(), policy()).unwrap();
    // Forge the B/L *after* the proof was assembled.
    remote.data = b"FORGED BILL OF LADING".to_vec();
    remote.proof.result = remote.data.clone();
    let err = client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap_err();
    assert!(err.to_string().contains("result hash") || err.to_string().contains("malformed"));
}

#[test]
fn integrity_signer_outside_recorded_config_rejected() {
    // An attacker who controls a *rogue* CA for "seller-org" cannot forge
    // attestations: the CMDAC validates against the recorded roots.
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    let mut forged = remote.clone();
    // Re-sign attestation 0 with a rogue identity claiming seller-org.
    let mut rogue_msp = tdt::fabric::msp::Msp::new(
        "stl",
        "seller-org",
        tdt::crypto::group::Group::test_group(),
        b"rogue-seed",
    );
    let rogue = rogue_msp.enroll("peer0", tdt::crypto::cert::CertRole::Peer, false);
    let md = forged.proof.attestations[0].metadata.clone();
    forged.proof.attestations[0].signer_cert =
        tdt::wire::messages::encode_certificate(rogue.certificate());
    forged.proof.attestations[0].signature = rogue.sign(&md).to_bytes();
    let err = client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &forged,
        )
        .unwrap_err();
    assert!(matches!(err, InteropError::Fabric(_)));
}

// ---------------------------------------------------------------------------
// E8: Availability
// ---------------------------------------------------------------------------

#[test]
fn availability_single_relay_is_a_failure_point() {
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    t.swt_relay.set_down(true);
    assert!(matches!(
        client.query_remote(bl_address(), policy()),
        Err(InteropError::Relay(RelayError::RelayDown(_)))
    ));
}

#[test]
fn availability_redundant_relays_mask_outage() {
    let t = prepared();
    let mut relays = vec![Arc::clone(&t.swt_relay)];
    for i in 1..3 {
        relays.push(Arc::new(RelayService::new(
            format!("swt-relay-{i}"),
            "swt",
            Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
        )));
    }
    let group = Arc::new(RelayGroup::new(relays.clone()).unwrap());
    let client = InteropClient::with_relay_group(t.swt_seller_gateway(), group);
    // Take down two of three relays: queries still succeed.
    relays[0].set_down(true);
    relays[1].set_down(true);
    for _ in 0..3 {
        assert!(client.query_remote(bl_address(), policy()).is_ok());
    }
    // All three down: unavailable.
    relays[2].set_down(true);
    assert!(client.query_remote(bl_address(), policy()).is_err());
}

#[test]
fn availability_rate_limiter_sheds_floods_but_recovers() {
    let t = prepared();
    // A source relay with a tight limiter in front of the STL driver.
    let limited = Arc::new(
        RelayService::new(
            "stl-relay-limited",
            "stl",
            Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
        )
        .with_rate_limiter(RateLimiter::new(3, 100.0)),
    );
    limited.register_driver(Arc::new(FabricDriver::new(Arc::clone(&t.stl))));
    t.bus.register(
        "stl-relay-limited",
        Arc::clone(&limited) as Arc<dyn EnvelopeHandler>,
    );
    t.registry.register("stl", "inproc:stl-relay-limited");
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    // Flood with cheap pings (an attacker needn't send valid queries): the
    // limiter sheds most of the burst, protecting the peers behind it.
    let mut shed = 0;
    for _ in 0..50 {
        let ping = RelayEnvelope {
            kind: tdt::wire::messages::EnvelopeKind::Ping,
            source_relay: "attacker".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let reply = t.bus.send("inproc:stl-relay-limited", &ping).unwrap();
        if reply.kind == tdt::wire::messages::EnvelopeKind::Error {
            shed += 1;
        }
    }
    assert!(
        shed > 30,
        "flood should have been mostly shed (shed {shed})"
    );
    // After the bucket refills, legitimate queries resume.
    std::thread::sleep(std::time::Duration::from_millis(80));
    assert!(client.query_remote(bl_address(), policy()).is_ok());
}

/// A link that drops the first `remaining` envelopes (a flapping network
/// path) before delegating to the real bus.
struct FlakyLink {
    inner: Arc<InProcessBus>,
    remaining: AtomicU64,
}

impl RelayTransport for FlakyLink {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        if self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(RelayError::TransportFailed("link flapped".into()));
        }
        self.inner.send(endpoint, envelope)
    }
}

#[test]
fn availability_transient_faults_healed_by_retry() {
    let t = prepared();
    for k in [0u64, 1, 3] {
        let retrying = Arc::new(RetryingTransport::new(
            Arc::new(FlakyLink {
                inner: Arc::clone(&t.bus),
                remaining: AtomicU64::new(k),
            }),
            RetryPolicy::without_delay(5),
        ));
        let client = client_with_transport(&t, Arc::clone(&retrying) as Arc<dyn RelayTransport>);
        let remote = client.query_remote(bl_address(), policy()).unwrap();
        assert!(!remote.data.is_empty());
        // k transient faults cost exactly k retries, no more.
        assert_eq!(retrying.retries(), k, "k = {k}");
        assert_eq!(retrying.attempts(), k + 1, "k = {k}");
    }
}

#[test]
fn availability_permanent_outage_exhausts_retries_then_fails_over() {
    let t = prepared();
    // Relay A's discovery points at an endpoint nobody serves: every
    // attempt fails in transport, and retrying cannot heal it.
    let dead_registry = Arc::new(StaticRegistry::new());
    dead_registry.register("stl", "inproc:ghost-relay");
    let retrying = Arc::new(RetryingTransport::new(
        Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
        RetryPolicy::without_delay(2),
    ));
    let relay_a = Arc::new(RelayService::new(
        "swt-relay-a",
        "swt",
        dead_registry as Arc<dyn DiscoveryService>,
        Arc::clone(&retrying) as Arc<dyn RelayTransport>,
    ));
    // Relay B is the healthy testbed relay; the group fails over to it.
    let group = Arc::new(RelayGroup::new(vec![relay_a, Arc::clone(&t.swt_relay)]).unwrap());
    let client = InteropClient::with_relay_group(t.swt_seller_gateway(), group);
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    assert!(!remote.data.is_empty());
    // The dead path burned its full retry budget before the failover.
    assert_eq!(retrying.attempts(), 3);
    assert_eq!(retrying.retries(), 2);
}

// ---------------------------------------------------------------------------
// E9: Replay protection
// ---------------------------------------------------------------------------

#[test]
fn replay_same_proof_rejected_via_nonce() {
    let t = prepared();
    let gateway = t.swt_seller_gateway();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    // First validation consumes the nonce.
    gateway
        .submit(
            "CMDAC",
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                b"stl:trade-channel:TradeLensCC:GetBillOfLading".to_vec(),
                remote.proof_bytes(),
            ],
        )
        .unwrap()
        .into_committed()
        .unwrap();
    // Replaying the identical proof fails.
    let err = gateway
        .submit(
            "CMDAC",
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                b"stl:trade-channel:TradeLensCC:GetBillOfLading".to_vec(),
                remote.proof_bytes(),
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("replay"));
}

#[test]
fn replay_concurrent_double_spend_caught_by_mvcc() {
    // Two transactions carrying the same proof are endorsed against the
    // same snapshot; ordering commits one, MVCC invalidates the other.
    use tdt::fabric::chaincode::Proposal;
    use tdt::fabric::endorse::TransactionEnvelope;
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    let identity = &t.swt_seller_client;
    let orgs = vec!["buyer-bank-org".to_string(), "seller-bank-org".to_string()];
    let mut envelopes = Vec::new();
    for i in 0..2 {
        let proposal = Proposal::new(
            format!("replay-tx-{i}"),
            t.swt.channel(),
            "CMDAC",
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                b"stl:trade-channel:TradeLensCC:GetBillOfLading".to_vec(),
                remote.proof_bytes(),
            ],
            identity.certificate().clone(),
        )
        .sign(identity.signing_key());
        let (sim, endorsements) = t.swt.endorse(&proposal, &orgs).unwrap();
        envelopes.push(TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: t.swt.channel().to_string(),
            chaincode: "CMDAC".into(),
            result: sim.result,
            rwset: sim.rwset,
            endorsements,
            creator_cert: identity.certificate().clone(),
        });
    }
    // Order both in one block.
    t.swt.set_batch_size(2);
    assert!(t.swt.order(&envelopes[0]).unwrap().is_none());
    let (_, codes) = t.swt.order(&envelopes[1]).unwrap().unwrap();
    let valid = codes.iter().filter(|c| c.is_valid()).count();
    assert_eq!(valid, 1, "exactly one of the two replays may commit");
}
