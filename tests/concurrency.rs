//! Concurrency: the in-process networks and relays are shared across
//! threads in real deployments; these tests exercise parallel submissions,
//! parallel cross-network queries, and mixed read/write contention.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use tdt::contracts::CMDAC_NAME;
use tdt::fabric::chaincode::{Chaincode, TxContext};
use tdt::fabric::error::ChaincodeError;
use tdt::fabric::gateway::Gateway;
use tdt::fabric::network::NetworkBuilder;
use tdt::fabric::policy::EndorsementPolicy;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed, BL_ADDRESS};
use tdt::interop::InteropClient;
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

struct Counter;

impl Chaincode for Counter {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "incr" => {
                let key = String::from_utf8_lossy(&args[0]).into_owned();
                let current = ctx
                    .get_state(&key)
                    .map(|v| u64::from_be_bytes(v.try_into().unwrap_or([0; 8])))
                    .unwrap_or(0);
                ctx.put_state(&key, (current + 1).to_be_bytes().to_vec());
                Ok((current + 1).to_be_bytes().to_vec())
            }
            "get" => {
                let key = String::from_utf8_lossy(&args[0]).into_owned();
                ctx.get_state(&key).ok_or(ChaincodeError::NotFound(key))
            }
            f => Err(ChaincodeError::UnknownFunction(f.into())),
        }
    }
}

#[test]
fn parallel_submissions_commit_without_corruption() {
    let net = NetworkBuilder::new("concnet")
        .org("org-a", 2)
        .chaincode(
            "ctr",
            Arc::new(Counter),
            EndorsementPolicy::any_of(["org-a"]),
        )
        .build();
    let mut handles = Vec::new();
    for thread in 0..4 {
        let net = Arc::clone(&net);
        handles.push(std::thread::spawn(move || {
            let client = net
                .register_client("org-a", &format!("client-{thread}"), false)
                .unwrap();
            let gateway = Gateway::new(net, client);
            let mut committed = 0;
            for i in 0..5 {
                // Distinct keys per thread: no read conflicts expected.
                let key = format!("t{thread}-k{i}");
                let outcome = gateway
                    .submit("ctr", "incr", vec![key.into_bytes()])
                    .unwrap();
                if outcome.code.is_valid() {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let committed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(committed, 20);
    // Every peer replica agrees on every key.
    for thread in 0..4 {
        for i in 0..5 {
            let key = format!("t{thread}-k{i}");
            let values: Vec<Vec<u8>> = net
                .peers()
                .map(|(_, p)| p.read().state().get("ctr", &key).unwrap().value.clone())
                .collect();
            assert!(values.windows(2).all(|w| w[0] == w[1]));
            assert_eq!(values[0], 1u64.to_be_bytes().to_vec());
        }
    }
    // Chain integrity holds on every replica.
    for (_, peer) in net.peers() {
        peer.read().store().verify_chain().unwrap();
    }
}

#[test]
fn contended_key_serializes_via_mvcc() {
    // All threads hammer the SAME key; every commit must be a distinct
    // serial increment (some submissions may invalidate, none may corrupt).
    let net = NetworkBuilder::new("hotkey")
        .org("org-a", 1)
        .chaincode(
            "ctr",
            Arc::new(Counter),
            EndorsementPolicy::any_of(["org-a"]),
        )
        .build();
    let mut handles = Vec::new();
    for thread in 0..4 {
        let net = Arc::clone(&net);
        handles.push(std::thread::spawn(move || {
            let client = net
                .register_client("org-a", &format!("c{thread}"), false)
                .unwrap();
            let gateway = Gateway::new(net, client);
            let mut valid = 0u64;
            for _ in 0..5 {
                let outcome = gateway
                    .submit("ctr", "incr", vec![b"hot".to_vec()])
                    .unwrap();
                if outcome.code.is_valid() {
                    valid += 1;
                }
            }
            valid
        }));
    }
    let total_valid: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_valid >= 1);
    // The final counter equals exactly the number of valid commits: lost
    // updates would make it smaller, double-applies larger.
    let (_, peer) = net.peers().next().unwrap();
    let value = peer.read().state().get("ctr", "hot").unwrap().value.clone();
    assert_eq!(u64::from_be_bytes(value.try_into().unwrap()), total_valid);
}

#[test]
fn parallel_cross_network_queries() {
    let t = stl_swt_testbed();
    for po in ["PO-A", "PO-B", "PO-C"] {
        issue_sample_bl(&t, po);
    }
    let t = Arc::new(t);
    let mut handles = Vec::new();
    for (i, po) in ["PO-A", "PO-B", "PO-C"].iter().enumerate() {
        let t = Arc::clone(&t);
        let po = po.to_string();
        handles.push(std::thread::spawn(move || {
            let client_id = t
                .swt
                .register_client("seller-bank-org", &format!("sc-{i}"), true)
                .unwrap();
            let gateway = Gateway::new(Arc::clone(&t.swt), client_id);
            let client = InteropClient::new(gateway, Arc::clone(&t.swt_relay));
            // Each parallel client needs its own exposure rule? No: the
            // rule is per-organization, so all seller-bank clients pass.
            let remote = client
                .query_remote(
                    NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                        .with_arg(po.as_bytes().to_vec()),
                    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"])
                        .with_confidentiality(),
                )
                .unwrap();
            (po, remote.data)
        }));
    }
    for handle in handles {
        let (po, data) = handle.join().unwrap();
        let bl =
            <tdt::contracts::stl::BillOfLading as tdt::wire::codec::Message>::decode_from_slice(
                &data,
            )
            .unwrap();
        assert_eq!(bl.po_ref, po);
    }
}

/// Stress the pooled, multiplexed TCP transport: many client threads share
/// ONE `PooledTcpTransport` (capped at a single connection) against a
/// server whose handler sleeps a payload-controlled jitter, so replies
/// interleave out of order on the shared stream. Every reply must carry
/// its own request's payload back, and the pool counters must balance.
#[test]
fn multiplexed_tcp_transport_stress() {
    use tdt::relay::transport::{
        EnvelopeHandler, PooledTcpTransport, RelayTransport, TcpRelayServer,
    };
    use tdt::wire::messages::{EnvelopeKind, RelayEnvelope};
    const THREADS: u8 = 8;
    const REQUESTS: u8 = 6;

    struct JitteredEcho;
    impl EnvelopeHandler for JitteredEcho {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            // First payload byte selects a 0-3 tick sleep so completion
            // order scrambles relative to arrival order.
            let jitter = envelope.payload.first().copied().unwrap_or(0) % 4;
            std::thread::sleep(std::time::Duration::from_millis(jitter as u64 * 5));
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                source_relay: "jittered-echo".into(),
                dest_network: envelope.dest_network,
                payload: envelope.payload,
                correlation_id: 0,
                trace: Default::default(),
                batch: Vec::new(),
            }
        }
    }

    let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(JitteredEcho)).unwrap();
    let endpoint = server.endpoint();
    let transport = Arc::new(PooledTcpTransport::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let transport = Arc::clone(&transport);
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                for i in 0..REQUESTS {
                    let payload = vec![t.wrapping_mul(7).wrapping_add(i), t, i];
                    let request = RelayEnvelope {
                        kind: EnvelopeKind::QueryRequest,
                        source_relay: format!("client-{t}"),
                        dest_network: "target".into(),
                        payload: payload.clone(),
                        correlation_id: 0,
                        trace: Default::default(),
                        batch: Vec::new(),
                    };
                    let reply = transport.send(&endpoint, &request).unwrap();
                    assert_eq!(reply.payload, payload, "reply crossed wires");
                    assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
                }
            });
        }
    });
    let stats = transport.stats();
    assert_eq!(
        stats.connections_dialed(),
        1,
        "all threads must share the single pooled connection"
    );
    assert_eq!(
        stats.connections_reused(),
        (THREADS as u64 * REQUESTS as u64) - 1
    );
    assert_eq!(stats.requests_in_flight(), 0, "pool must drain");
    assert_eq!(stats.orphaned_replies(), 0, "no reply may go unclaimed");
    assert_eq!(server.connection_count(), 1);
    server.shutdown();
    assert_eq!(server.connection_count(), 0);
}

/// Stress the pooled relay: N client threads, M `query_remote` calls each,
/// all through one worker-pool relay on the STL side. Every proof must
/// validate (client-side and on-chain through the CMDAC, which exercises
/// the shared certificate-chain cache), the relay counters must add up,
/// and every replica in both networks must agree on its state hash.
#[test]
fn pooled_relay_stress_proofs_counters_replicas() {
    const CLIENTS: usize = 4;
    const QUERIES: usize = 3;
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-POOL");
    t.stl_relay.start_workers(4);
    let t = Arc::new(t);
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let t = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            let identity = t
                .swt
                .register_client("seller-bank-org", &format!("stress-sc-{c}"), true)
                .unwrap();
            let gateway = Gateway::new(Arc::clone(&t.swt), identity);
            let client = InteropClient::new(gateway, Arc::clone(&t.swt_relay));
            for _ in 0..QUERIES {
                let remote = client
                    .query_remote(
                        NetworkAddress::new(
                            "stl",
                            "trade-channel",
                            "TradeLensCC",
                            "GetBillOfLading",
                        )
                        .with_arg(b"PO-POOL".to_vec()),
                        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"])
                            .with_confidentiality(),
                    )
                    .unwrap();
                assert_eq!(remote.proof.attestations.len(), 2);
                // On-chain validation through the SWT CMDAC: hits the
                // shared cert-chain cache on every endorsing peer.
                let outcome = client
                    .gateway()
                    .submit(
                        CMDAC_NAME,
                        "ValidateProof",
                        vec![
                            b"stl".to_vec(),
                            BL_ADDRESS.as_bytes().to_vec(),
                            remote.proof_bytes(),
                        ],
                    )
                    .unwrap();
                assert!(outcome.code.is_valid());
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let total = (CLIENTS * QUERIES) as u64;
    // The destination relay forwarded every query; the pooled source relay
    // enqueued, handled, and served every envelope, and is now drained.
    assert_eq!(t.swt_relay.stats().forwarded.load(Ordering::Relaxed), total);
    let stl_stats = t.stl_relay.stats();
    assert_eq!(stl_stats.served.load(Ordering::Relaxed), total);
    assert_eq!(stl_stats.enqueued.load(Ordering::Relaxed), total);
    assert_eq!(stl_stats.handled(), total);
    assert_eq!(stl_stats.deadline_exceeded.load(Ordering::Relaxed), 0);
    assert_eq!(stl_stats.queue_depth(), 0);
    assert_eq!(stl_stats.in_flight(), 0);
    // The SWT CMDAC validated the same two endorser certificates for every
    // proof: after the first validations, the shared cache answers.
    let swt_stats = t.swt_relay.stats();
    assert!(
        swt_stats.cache_hits() > 0,
        "repeated endorser certs should hit the cache"
    );
    assert!(swt_stats.cache_misses() >= 2);
    assert!(
        swt_stats.cache_hit_rate() > 0.5,
        "hit rate {} too low",
        swt_stats.cache_hit_rate()
    );
    // Every replica in both networks agrees on the world state.
    for net in [&t.stl, &t.swt] {
        let hashes: Vec<[u8; 32]> = net.peers().map(|(_, p)| p.read().state_hash()).collect();
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "replica state hashes diverged on {:?}",
            net.name()
        );
    }
    t.stl_relay.stop_workers();
}
