//! E2 — Fig. 2: the architecture and 10-step message flow.
//!
//! Exercises the complete flow both through the production path (client →
//! relay → relay → driver → peers and back) and through the instrumented
//! harness that labels each protocol step.

use std::sync::Arc;
use tdt::contracts::stl::BillOfLading;
use tdt::contracts::swt::{LcStatus, LetterOfCredit, SwtChaincode};
use tdt::interop::flow::harness_for_testbed;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
use tdt::interop::InteropClient;
use tdt::wire::codec::Message;
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

fn prepared() -> Testbed {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    let buyer = t.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                b"PO-1001".to_vec(),
                b"LC-1".to_vec(),
                b"buyer".to_vec(),
                b"seller".to_vec(),
                b"100000".to_vec(),
            ],
        )
        .unwrap()
        .into_committed()
        .unwrap();
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])
        .unwrap()
        .into_committed()
        .unwrap();
    t
}

fn bl_address() -> NetworkAddress {
    NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec())
}

fn policy() -> VerificationPolicy {
    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
}

#[test]
fn production_path_through_relays() {
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    // The relay pair was actually used.
    assert_eq!(
        t.swt_relay
            .stats()
            .forwarded
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        t.stl_relay
            .stats()
            .served
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // Step 10: the proof-carrying transaction commits on SWT.
    let outcome = client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap();
    assert!(outcome.code.is_valid());
    // Every SWT peer holds the same verified B/L.
    for (_, peer) in t.swt.peers() {
        let peer = peer.read();
        let lc_bytes = peer
            .state()
            .get(SwtChaincode::NAME, "lc:PO-1001")
            .expect("L/C present on every peer");
        let lc = LetterOfCredit::decode_from_slice(&lc_bytes.value).unwrap();
        assert_eq!(lc.status, LcStatus::DocsUploaded);
        assert_eq!(lc.bl, remote.data);
    }
}

#[test]
fn traced_steps_cover_figure_two() {
    let t = prepared();
    let harness = harness_for_testbed(&t);
    let traced = harness
        .run_traced(
            bl_address(),
            policy(),
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap();
    let labels: Vec<&str> = traced.steps.iter().map(|s| s.step).collect();
    assert_eq!(labels, vec!["1", "2", "3", "4", "5-7", "8", "9", "10"]);
    assert!(traced.outcome.code.is_valid());
    // Proof collection (Steps 5-7) and the destination transaction
    // (Step 10) dominate; serialization steps are comparatively trivial.
    let get = |label: &str| {
        traced
            .steps
            .iter()
            .find(|s| s.step == label)
            .unwrap()
            .duration
    };
    assert!(get("5-7") > get("3"));
    assert!(get("10") > get("8"));
}

#[test]
fn result_is_correct_bl() {
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    let bl = BillOfLading::decode_from_slice(&remote.data).unwrap();
    assert_eq!(bl.po_ref, "PO-1001");
    assert_eq!(bl.bl_id, "BL-PO-1001");
    // Matches the B/L as read locally on STL.
    let local = t
        .stl_seller_gateway()
        .query("TradeLensCC", "GetBillOfLading", vec![b"PO-1001".to_vec()])
        .unwrap();
    assert_eq!(remote.data, local);
}

#[test]
fn tcp_relays_carry_the_same_flow() {
    use tdt::interop::driver::FabricDriver;
    use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
    use tdt::relay::service::RelayService;
    use tdt::relay::transport::{EnvelopeHandler, RelayTransport, TcpRelayServer, TcpTransport};
    let t = prepared();
    let registry = Arc::new(StaticRegistry::new());
    let stl_relay = Arc::new(RelayService::new(
        "stl-relay-tcp",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
    ));
    stl_relay.register_driver(Arc::new(FabricDriver::new(Arc::clone(&t.stl))));
    let server = TcpRelayServer::spawn(
        "127.0.0.1:0",
        Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
    )
    .unwrap();
    registry.register("stl", server.endpoint());
    let swt_relay = Arc::new(RelayService::new(
        "swt-relay-tcp",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
    ));
    let client = InteropClient::new(t.swt_seller_gateway(), swt_relay);
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    let outcome = client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap();
    assert!(outcome.code.is_valid());
    server.shutdown();
}

#[test]
fn proof_carries_one_attestation_per_policy_org() {
    let t = prepared();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    assert_eq!(remote.proof.attestations.len(), 2);
    let mut orgs: Vec<String> = remote
        .proof
        .attestations
        .iter()
        .map(|a| {
            tdt::wire::messages::decode_certificate(&a.signer_cert)
                .unwrap()
                .subject()
                .organization
                .clone()
        })
        .collect();
    orgs.sort();
    assert_eq!(orgs, vec!["carrier-org", "seller-org"]);
}
