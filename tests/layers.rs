//! E1 — Fig. 1: the layered interaction model. Checks that each layer of
//! the model is served by a distinct, working component, and that the
//! relay spans exactly the technical/syntactic/semantic layers as §3.2
//! claims.

use std::sync::Arc;
use tdt::interop::setup::stl_swt_testbed;
use tdt::wire::codec::Message;

/// Technical layer: transports move opaque envelopes.
#[test]
fn technical_layer_transports() {
    use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
    use tdt::wire::messages::{EnvelopeKind, RelayEnvelope};
    struct Echo;
    impl EnvelopeHandler for Echo {
        fn handle(&self, e: RelayEnvelope) -> RelayEnvelope {
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                ..e
            }
        }
    }
    let bus = InProcessBus::new();
    bus.register("x", Arc::new(Echo));
    let env = RelayEnvelope {
        kind: EnvelopeKind::QueryRequest,
        source_relay: "a".into(),
        dest_network: "b".into(),
        payload: vec![1, 2, 3],
        correlation_id: 0,
        trace: Default::default(),
        batch: Vec::new(),
    };
    let reply = bus.send("inproc:x", &env).unwrap();
    assert_eq!(reply.payload, vec![1, 2, 3]);
}

/// Syntactic layer: the proto3-compatible schema is self-describing enough
/// for roundtrips and unknown-field tolerance.
#[test]
fn syntactic_layer_schema() {
    use tdt::wire::messages::{NetworkAddress, Query};
    let q = Query {
        request_id: "r".into(),
        address: NetworkAddress::new("n", "l", "c", "f"),
        ..Default::default()
    };
    let decoded = Query::decode_from_slice(&q.encode_to_vec()).unwrap();
    assert_eq!(decoded, q);
}

/// Semantic layer: data exposure and acceptance are *consensual* — they run
/// as chaincode under the network's endorsement rules.
#[test]
fn semantic_layer_consensual_controls() {
    let t = stl_swt_testbed();
    // The exposure rule exists on every STL peer (it was committed through
    // consensus, not configured on a single node).
    for (name, peer) in t.stl.peers() {
        let peer = peer.read();
        let rule = peer.state().get(
            "ECC",
            "rule:swt:seller-bank-org:TradeLensCC:GetBillOfLading",
        );
        assert!(rule.is_some(), "exposure rule missing on {name}");
    }
    // Same for the verification policy on every SWT peer.
    for (name, peer) in t.swt.peers() {
        let peer = peer.read();
        let policy = peer
            .state()
            .get("CMDAC", "vpolicy:stl:TradeLensCC:GetBillOfLading");
        assert!(policy.is_some(), "verification policy missing on {name}");
    }
}

/// Governance layer: policy changes require network transactions; a relay
/// (foreign requester) cannot mutate governance state.
#[test]
fn governance_layer_protected_from_relays() {
    let t = stl_swt_testbed();
    // Attempt to add a rule through the relay-query path.
    use tdt::interop::InteropClient;
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let address =
        tdt::wire::messages::NetworkAddress::new("stl", "trade-channel", "ECC", "AddAccessRule")
            .with_arg(b"swt".to_vec())
            .with_arg(b"seller-bank-org".to_vec())
            .with_arg(b"TradeLensCC".to_vec())
            .with_arg(b"GetShipment".to_vec());
    let policy =
        tdt::wire::messages::VerificationPolicy::all_of_orgs(["seller-org"]).with_confidentiality();
    let err = client.query_remote(address, policy).unwrap_err();
    assert!(matches!(err, tdt::interop::InteropError::AccessDenied(_)));
    // The rule was NOT added.
    let rules = t
        .stl_seller_gateway()
        .query("ECC", "ListAccessRules", vec![])
        .unwrap();
    assert!(!String::from_utf8(rules).unwrap().contains("GetShipment"));
}
