//! Chaos soak: the relay group under randomized transport faults.
//!
//! Every test draws its faults from a seeded, replayable schedule
//! (`CHAOS_SEED` env var; pinned default otherwise) and prints the seed,
//! so any failure reproduces exactly with
//! `CHAOS_SEED=<seed> cargo test --test chaos`.
//!
//! Safety properties asserted under chaos:
//! * every request terminates with a reply or a classified error, within
//!   its deadline;
//! * no corrupt reply is accepted as clean — the client-side payload
//!   check here stands in for the end-to-end proof verification the
//!   paper requires of untrusted relays (§3.2, §5);
//! * no reply is delivered twice to a caller (hedge losers are counted
//!   and discarded);
//! * the same seed replays the exact same outcome sequence.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt::relay::breaker::{BreakerConfig, BreakerState};
use tdt::relay::chaos::{ChaosConfig, ChaosTransport};
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::driver::EchoDriver;
use tdt::relay::redundancy::{GroupConfig, RelayGroup};
use tdt::relay::service::RelayService;
use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt::relay::RelayError;
use tdt::wire::messages::{NetworkAddress, Query, QueryResponse};

/// The replay seed: `CHAOS_SEED` env var, or a pinned default.
fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("chaos seed: {seed} (replay with CHAOS_SEED={seed})");
    seed
}

/// A relay group whose members each forward through their own seeded
/// [`ChaosTransport`] to one healthy source relay.
struct ChaosGroup {
    group: RelayGroup,
    chaos: Vec<Arc<ChaosTransport>>,
    _stl: Arc<RelayService>,
}

fn build_group(
    members: usize,
    seed: u64,
    chaos_config: &ChaosConfig,
    group_config: GroupConfig,
) -> ChaosGroup {
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    stl.register_driver(Arc::new(EchoDriver::new("stl")));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let mut chaos = Vec::new();
    let mut relays = Vec::new();
    for i in 0..members {
        let transport = Arc::new(
            ChaosTransport::new(
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
                seed.wrapping_add(i as u64),
                chaos_config.clone(),
            )
            .with_local_name(format!("swt-relay-{i}")),
        );
        chaos.push(Arc::clone(&transport));
        relays.push(Arc::new(RelayService::new(
            format!("swt-relay-{i}"),
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            transport as Arc<dyn RelayTransport>,
        )));
    }
    let group = RelayGroup::with_config(relays, group_config).expect("non-empty group");
    ChaosGroup {
        group,
        chaos,
        _stl: stl,
    }
}

fn query(i: usize) -> (Query, Vec<u8>) {
    let payload = format!("payload-{i:05}").into_bytes();
    let q = Query {
        request_id: format!("r{i}"),
        address: NetworkAddress::new("stl", "l", "c", "f").with_arg(payload.clone()),
        ..Default::default()
    };
    (q, payload)
}

/// Classifies one outcome into a replay-stable label. A reply that fails
/// the payload check is *rejected* here, exactly as the end-to-end proof
/// verification would reject it in the full stack — it is never "ok".
fn classify(outcome: &Result<QueryResponse, RelayError>, expected: &[u8]) -> &'static str {
    match outcome {
        Ok(r) if r.result == expected => "ok",
        Ok(_) => "corrupt-rejected",
        Err(RelayError::TransportFailed(_)) => "transport-failed",
        Err(RelayError::StaleConnection(_)) => "stale-connection",
        Err(RelayError::RelayDown(_)) => "relay-down",
        Err(RelayError::RateLimited) => "rate-limited",
        Err(RelayError::CircuitOpen(_)) => "circuit-open",
        Err(RelayError::Overloaded(_)) => "overloaded",
        Err(RelayError::DeadlineExceeded(_)) => "deadline-exceeded",
        Err(RelayError::Remote(_)) => "remote",
        Err(RelayError::Wire(_)) => "wire",
        Err(RelayError::DiscoveryFailed(_)) => "discovery-failed",
        Err(RelayError::NoDriver(_)) => "no-driver",
        Err(RelayError::DriverFailed(_)) => "driver-failed",
        Err(RelayError::InvalidConfig(_)) => "invalid-config",
    }
}

fn noisy_config() -> ChaosConfig {
    ChaosConfig {
        drop_prob: 0.15,
        delay_prob: 0.1,
        delay: Duration::from_millis(1),
        delay_jitter: Duration::from_millis(1),
        corrupt_prob: 0.1,
        duplicate_prob: 0.1,
        reorder_prob: 0.05,
        reorder_delay: Duration::from_millis(1),
        partition_prob: 0.02,
        partition_ops: 6,
        partition_timeout: Duration::from_millis(2),
    }
}

/// Breaker thresholds whose transitions do not depend on wall-clock time
/// (zero cooldown), keeping sequential soak runs bit-for-bit replayable.
fn deterministic_group_config() -> GroupConfig {
    GroupConfig {
        hedge_after: None,
        deadline: None,
        breaker: BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::ZERO,
            ..BreakerConfig::default()
        },
    }
}

/// Runs `queries` sequential queries and returns the outcome labels plus
/// the total number of injected faults.
fn run_soak(seed: u64, queries: usize) -> (Vec<&'static str>, u64) {
    let g = build_group(3, seed, &noisy_config(), deterministic_group_config());
    let mut outcomes = Vec::with_capacity(queries);
    for i in 0..queries {
        let (q, expected) = query(i);
        let started = Instant::now();
        let outcome = g.group.relay_query(&q);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "query {i} took {elapsed:?} — request failed to terminate promptly (seed {seed})"
        );
        outcomes.push(classify(&outcome, &expected));
    }
    let faults = g.chaos.iter().map(|c| c.stats().total()).sum();
    (outcomes, faults)
}

#[test]
fn soak_same_seed_replays_identically_and_group_stays_safe() {
    let seed = chaos_seed();
    let (first, faults_first) = run_soak(seed, 300);
    let (second, faults_second) = run_soak(seed, 300);
    assert_eq!(
        first, second,
        "same seed {seed} must replay the exact same outcome sequence"
    );
    assert_eq!(
        faults_first, faults_second,
        "same seed {seed} must inject the exact same faults"
    );
    assert!(faults_first > 0, "chaos must actually fire (seed {seed})");
    let ok = first.iter().filter(|o| **o == "ok").count();
    println!(
        "soak: {ok}/300 ok, {faults_first} faults injected, outcome mix: {:?}",
        {
            let mut mix = std::collections::BTreeMap::new();
            for o in &first {
                *mix.entry(*o).or_insert(0u32) += 1;
            }
            mix
        }
    );
    assert!(
        ok > 150,
        "redundant group must keep serving under chaos: only {ok}/300 ok (seed {seed})"
    );
    // No reply was ever delivered twice and nothing corrupt slipped
    // through as clean: every outcome is "ok with the exact expected
    // payload" or a rejection label (enforced per-query by classify).
    assert!(first.iter().all(|o| !o.is_empty()));
}

#[test]
fn soak_with_hedging_keeps_safety_properties() {
    let seed = chaos_seed();
    let mut config = noisy_config();
    // Slow members rather than extra corruption: delays far above the
    // hedge threshold make hedges fire deterministically, and a modest
    // corruption rate keeps the liveness floor meaningful even when the
    // scheduler is noisy (this binary's tests run concurrently).
    config.delay_prob = 0.3;
    config.delay = Duration::from_millis(25);
    config.corrupt_prob = 0.05;
    let group_config = GroupConfig {
        hedge_after: Some(Duration::from_millis(5)),
        deadline: Some(Duration::from_secs(2)),
        breaker: BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_millis(20),
            ..BreakerConfig::default()
        },
    };
    let g = build_group(3, seed, &config, group_config);
    let mut ok = 0usize;
    let mut mix = std::collections::BTreeMap::new();
    for i in 0..200 {
        let (q, expected) = query(i);
        let started = Instant::now();
        let outcome = g.group.relay_query(&q);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(3),
            "query {i} exceeded its deadline budget by seconds: {elapsed:?} (seed {seed})"
        );
        let label = classify(&outcome, &expected);
        *mix.entry(label).or_insert(0u32) += 1;
        if label == "ok" {
            ok += 1;
        }
    }
    println!("hedged soak outcome mix: {mix:?}");
    assert!(
        ok > 120,
        "hedged group must keep serving under chaos: only {ok}/200 ok (seed {seed})"
    );
    assert!(
        g.group.hedges() > 0,
        "25 ms delays at p=0.3 over 200 queries must trigger hedging (seed {seed})"
    );
    // Let hedge losers finish, then confirm their replies were discarded,
    // not delivered: the caller saw exactly one reply per query.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        g.group.discarded_replies() > 0,
        "some hedge loser must have completed and been discarded (seed {seed})"
    );
}

#[test]
fn breaker_transitions_and_partition_heal_recovery() {
    // Deterministic scenario: quiet schedule, manual partition.
    let config = GroupConfig {
        hedge_after: None,
        deadline: None,
        breaker: BreakerConfig {
            consecutive_failures: 2,
            cooldown: Duration::from_millis(30),
            ..BreakerConfig::default()
        },
    };
    let g = build_group(2, 7, &ChaosConfig::default(), config);
    let breaker = g.group.breaker();
    assert_eq!(breaker.state("swt-relay-0"), BreakerState::Closed);

    // Black-hole member 0's path to the source relay.
    g.chaos[0].partition("inproc:stl-relay");
    let (q, _) = query(0);
    assert!(g.group.relay_query(&q).is_ok(), "member 1 must cover");
    assert_eq!(
        breaker.state("swt-relay-0"),
        BreakerState::Closed,
        "one failure is below the trip threshold"
    );
    // Force selection back onto member 0 by downing member 1: both fail,
    // and member 0 crosses the consecutive-failure threshold.
    g.group.relay(1).expect("member").set_down(true);
    assert!(g.group.relay_query(&q).is_err(), "all members unavailable");
    assert_eq!(breaker.state("swt-relay-0"), BreakerState::Open);
    assert_eq!(breaker.trips(), 1);
    g.group.relay(1).expect("member").set_down(false);
    assert!(g.group.relay_query(&q).is_ok(), "member 1 back");

    // Heal the partition and wait out the cooldown: the next attempt at
    // member 0 is admitted as a half-open probe and closes the circuit.
    g.chaos[0].heal("inproc:stl-relay");
    std::thread::sleep(Duration::from_millis(40));
    g.group.relay(1).expect("member").set_down(true);
    let response = g
        .group
        .relay_query(&q)
        .expect("probe must recover member 0");
    assert!(!response.result.is_empty());
    assert_eq!(breaker.state("swt-relay-0"), BreakerState::Closed);
    assert!(breaker.probes() >= 1, "recovery must go through a probe");
    g.group.relay(1).expect("member").set_down(false);
}

#[test]
fn manual_partition_black_holes_group_of_one_until_healed() {
    let g = build_group(1, 11, &ChaosConfig::default(), GroupConfig::default());
    let (q, expected) = query(0);
    assert_eq!(g.group.relay_query(&q).unwrap().result, expected);
    g.chaos[0].partition("inproc:stl-relay");
    assert!(matches!(
        g.group.relay_query(&q),
        Err(RelayError::TransportFailed(_))
    ));
    g.chaos[0].heal("inproc:stl-relay");
    assert_eq!(g.group.relay_query(&q).unwrap().result, expected);
}

#[test]
fn hedge_wins_against_slow_primary_and_loser_is_discarded() {
    let config = GroupConfig {
        hedge_after: Some(Duration::from_millis(3)),
        deadline: None,
        breaker: BreakerConfig::default(),
    };
    let g = build_group(2, 13, &ChaosConfig::default(), config);
    // Member 0 answers, but only after 100 ms.
    g.chaos[0].faults().set_latency(Duration::from_millis(100));
    let (q, expected) = query(0);
    let started = Instant::now();
    let response = g.group.relay_query(&q).expect("hedge must win");
    let elapsed = started.elapsed();
    assert_eq!(response.result, expected);
    assert!(
        elapsed < Duration::from_millis(60),
        "hedged reply should beat the 100 ms primary, took {elapsed:?}"
    );
    assert_eq!(g.group.hedges(), 1);
    // The slow primary eventually completes; its reply must be discarded,
    // never delivered as a second answer.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(g.group.discarded_replies(), 1);
}

#[test]
fn breaker_isolates_black_holed_member_p99_within_2x_baseline() {
    fn p99(latencies: &mut [Duration]) -> Duration {
        latencies.sort_unstable();
        latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
    }
    let chaos_config = ChaosConfig {
        partition_timeout: Duration::from_millis(25),
        ..ChaosConfig::default()
    };
    let config = GroupConfig {
        hedge_after: None,
        deadline: None,
        breaker: BreakerConfig {
            consecutive_failures: 1,
            cooldown: Duration::from_secs(60),
            ..BreakerConfig::default()
        },
    };
    let g = build_group(3, 17, &chaos_config, config);

    // All-healthy baseline.
    let mut baseline = Vec::with_capacity(100);
    for i in 0..100 {
        let (q, _) = query(i);
        let started = Instant::now();
        g.group.relay_query(&q).expect("healthy baseline");
        baseline.push(started.elapsed());
    }
    let p99_baseline = p99(&mut baseline);

    // Black-hole member 0: every send to it burns the 25 ms partition
    // timeout until the breaker opens.
    g.chaos[0].partition("inproc:stl-relay");
    for i in 100..110 {
        let (q, _) = query(i);
        g.group.relay_query(&q).expect("redundancy must mask");
    }
    assert_eq!(
        g.group.breaker().state("swt-relay-0"),
        BreakerState::Open,
        "breaker must have isolated the black-holed member"
    );
    assert!(g.group.breaker().trips() >= 1);

    // With the circuit open the partitioned member is skipped without
    // paying its timeout, so tail latency returns to the baseline.
    let mut degraded = Vec::with_capacity(100);
    for i in 110..210 {
        let (q, _) = query(i);
        let started = Instant::now();
        g.group.relay_query(&q).expect("two healthy members remain");
        degraded.push(started.elapsed());
    }
    let p99_degraded = p99(&mut degraded);
    // Generous floor so scheduler jitter on sub-millisecond baselines
    // cannot flake the comparison; the partitioned path would cost 25 ms.
    let bound = (p99_baseline * 2).max(Duration::from_millis(20));
    println!("p99 baseline {p99_baseline:?}, p99 with open breaker {p99_degraded:?}");
    assert!(
        p99_degraded <= bound,
        "breaker failed to isolate the black-holed member: p99 {p99_degraded:?} vs baseline {p99_baseline:?}"
    );
}

/// A driver with a fixed service time, so the overload soak's capacity
/// is known (`workers / service_time`) instead of machine-dependent.
struct FixedCostDriver {
    service: Duration,
}

impl tdt::relay::driver::NetworkDriver for FixedCostDriver {
    fn network_id(&self) -> &str {
        "stl"
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        std::thread::sleep(self.service);
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            result: query.address.args.first().cloned().unwrap_or_default(),
            ..Default::default()
        })
    }
}

/// One seeded overload soak: flooding threads against an
/// admission-guarded single-worker relay, with chaos delay faults on
/// the transport. Returns (label → count, ok latencies, gate sheds).
fn run_overload_soak(
    seed: u64,
    threads: usize,
    queries_per_thread: usize,
) -> (
    std::collections::BTreeMap<&'static str, u32>,
    Vec<Duration>,
    u64,
) {
    use tdt::relay::admission::AdmissionConfig;

    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(
        RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_request_deadline(Duration::from_millis(25))
        .with_admission_control(AdmissionConfig {
            burst_floor: 4,
            alpha: 0.2,
            initial_service_time: Duration::from_millis(2),
            headroom: 0.8,
        }),
    );
    stl.register_driver(Arc::new(FixedCostDriver {
        service: Duration::from_millis(2),
    }));
    stl.start_workers(1);
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let chaos = Arc::new(
        ChaosTransport::new(
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
            seed,
            ChaosConfig {
                drop_prob: 0.0,
                delay_prob: 0.3,
                delay: Duration::from_millis(1),
                delay_jitter: Duration::from_millis(1),
                corrupt_prob: 0.0,
                duplicate_prob: 0.0,
                reorder_prob: 0.0,
                reorder_delay: Duration::ZERO,
                partition_prob: 0.0,
                partition_ops: 0,
                partition_timeout: Duration::ZERO,
            },
        )
        .with_local_name("swt-flood"),
    );
    let swt = Arc::new(RelayService::new(
        "swt-flood",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&chaos) as Arc<dyn RelayTransport>,
    ));

    let mut results: Vec<(&'static str, Duration)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let swt = Arc::clone(&swt);
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(queries_per_thread);
                    for i in 0..queries_per_thread {
                        let (q, expected) = query(t * queries_per_thread + i);
                        let started = Instant::now();
                        let outcome = swt.relay_query(&q);
                        local.push((classify(&outcome, &expected), started.elapsed()));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("flood thread panicked"));
        }
    });
    let sheds = stl.stats().admission_shed();
    stl.stop_workers();

    let mut mix = std::collections::BTreeMap::new();
    let mut ok_latencies = Vec::new();
    for (label, latency) in results {
        *mix.entry(label).or_insert(0u32) += 1;
        if label == "ok" {
            ok_latencies.push(latency);
        }
    }
    ok_latencies.sort_unstable();
    (mix, ok_latencies, sheds)
}

#[test]
fn overload_soak_sheds_at_the_gate_with_bounded_p99_and_replayable_faults() {
    let seed = chaos_seed();
    let threads = 32;
    let per_thread = 25;
    let (mix, ok_latencies, sheds) = run_overload_soak(seed, threads, per_thread);
    println!("overload soak: outcome mix {mix:?}, {sheds} gate sheds");

    let total: u32 = mix.values().sum();
    assert_eq!(total as usize, threads * per_thread);
    let ok = mix.get("ok").copied().unwrap_or(0);
    let overloaded = mix.get("overloaded").copied().unwrap_or(0);
    assert!(
        ok > 0,
        "overloaded relay must keep serving in-deadline work"
    );
    assert!(
        overloaded > 0,
        "flooding a single 2 ms worker from {threads} threads must trip the admission gate (seed {seed})"
    );
    // Every client-visible `overloaded` outcome is one gate shed; the
    // single-attempt query path has no retry or hedge to double-count.
    assert_eq!(
        overloaded as u64, sheds,
        "client-observed sheds must match the gate's own count"
    );
    // Bounded tail instead of queue collapse: with admission off, the
    // backlog would make late queries wait for the whole flood
    // (~threads × per_thread × 2 ms ≈ 1.6 s). With the gate, completed
    // queries waited at most roughly the deadline plus scheduling noise.
    let p99 = ok_latencies[(ok_latencies.len() * 99 / 100).min(ok_latencies.len() - 1)];
    println!("overload soak: {ok} ok, p99 {p99:?}");
    assert!(
        p99 < Duration::from_millis(250),
        "p99 {p99:?} looks like queue collapse, not admission control (seed {seed})"
    );

    // The injected fault schedule replays byte-identically from the
    // printed seed: the same seed yields the same decision for every
    // operation index.
    let config = ChaosConfig {
        delay_prob: 0.3,
        ..ChaosConfig::default()
    };
    let first = tdt::relay::chaos::FaultSchedule::new(seed, config.clone());
    let second = tdt::relay::chaos::FaultSchedule::new(seed, config);
    for op in 0..2_000u64 {
        assert_eq!(
            first.decision(op),
            second.decision(op),
            "fault schedule diverged at op {op} (seed {seed})"
        );
    }
}

/// Durable-ledger kill+recover soak: a committing peer over a seeded
/// fault-injecting disk. The client keeps a shadow model of what each
/// acknowledged commit implies; after every injected crash the peer is
/// reopened through recovery and checked against it.
///
/// Safety properties asserted under disk chaos:
/// * **no acked loss** — once `validate_and_commit` returns `Ok`, the
///   block survives every later crash (clean-disk soak);
/// * **verified prefix** — whatever height recovery lands on, the
///   recovered state hash is exactly the client's shadow hash for that
///   height: never garbage, never a half-applied block (bit-rot soak,
///   where tail truncation may legitimately lose acked blocks);
/// * the same seed replays the exact same commit/crash/recover trace.
mod durable_ledger {
    use super::chaos_seed;
    use std::collections::HashMap;
    use std::sync::Arc;
    use tdt::crypto::cert::CertRole;
    use tdt::crypto::group::Group;
    use tdt::fabric::chaincode::{Chaincode, ChaincodeRegistry, Proposal, TxContext};
    use tdt::fabric::endorse::TransactionEnvelope;
    use tdt::fabric::error::ChaincodeError;
    use tdt::fabric::msp::{Identity, Msp, MspRegistry};
    use tdt::fabric::peer::Peer;
    use tdt::fabric::policy::EndorsementPolicy;
    use tdt::fabric::FabricError;
    use tdt::ledger::block::Block;
    use tdt::ledger::rwset::Version;
    use tdt::ledger::state::WorldState;
    use tdt::ledger::storage::fault::{FaultConfig, FaultVfs};
    use tdt::ledger::storage::file::{FileBackend, FileConfig};
    use tdt::ledger::storage::vfs::{MemVfs, Vfs};
    use tdt::ledger::LedgerError;
    use tdt::wire::codec::Message;

    struct KvStore;

    impl Chaincode for KvStore {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, ChaincodeError> {
            match function {
                "put" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.put_state(&key, args[1].clone());
                    Ok(Vec::new())
                }
                f => Err(ChaincodeError::UnknownFunction(f.into())),
            }
        }
    }

    struct Parts {
        peer_id: Identity,
        client: Identity,
        registry: Arc<ChaincodeRegistry>,
        msp_registry: Arc<MspRegistry>,
        policies: Arc<std::collections::HashMap<String, EndorsementPolicy>>,
    }

    fn parts() -> Parts {
        let mut msp = Msp::new("net", "org1", Group::test_group(), b"s");
        let peer_id = msp.enroll("peer0", CertRole::Peer, false);
        let client = msp.enroll("alice", CertRole::Client, false);
        let mut registry = ChaincodeRegistry::new();
        registry.deploy("kv", Arc::new(KvStore));
        let mut msp_registry = MspRegistry::new();
        msp_registry.register("org1", msp.root_certificate().clone());
        let mut policies = std::collections::HashMap::new();
        policies.insert("kv".to_string(), EndorsementPolicy::any_of(["org1"]));
        Parts {
            peer_id,
            client,
            registry: Arc::new(registry),
            msp_registry: Arc::new(msp_registry),
            policies: Arc::new(policies),
        }
    }

    fn is_storage_err(e: &FabricError) -> bool {
        matches!(e, FabricError::Ledger(LedgerError::Storage(_)))
    }

    /// Reopens the peer through recovery, rebooting the disk out of any
    /// crashed state first (and again if recovery itself hits a crash
    /// point — recovery must be re-runnable from any crash).
    fn reopen(
        p: &Parts,
        disk: &Arc<FaultVfs>,
        config: &FileConfig,
        trace: &mut Vec<String>,
    ) -> Peer {
        loop {
            if disk.is_crashed() {
                disk.reboot();
            }
            let backend = Box::new(FileBackend::new(
                Arc::clone(disk) as Arc<dyn Vfs>,
                config.clone(),
            ));
            match Peer::with_backend(
                "net",
                "org1",
                "peer0",
                p.peer_id.clone(),
                Arc::clone(&p.registry),
                Arc::clone(&p.msp_registry),
                Arc::clone(&p.policies),
                backend,
            ) {
                Ok(peer) => {
                    let r = peer.recovery_report().expect("opened via with_backend");
                    trace.push(format!(
                        "recovered h={} replayed={} truncated={} fallbacks={}",
                        r.chain_height, r.replayed_blocks, r.truncated_bytes, r.snapshot_fallbacks
                    ));
                    return peer;
                }
                Err(e) if is_storage_err(&e) => {
                    trace.push("recovery-crashed".into());
                }
                Err(e) => panic!("non-storage error during recovery: {e}"),
            }
        }
    }

    struct SoakOutcome {
        trace: Vec<String>,
        crashes: u64,
        injected: u64,
        final_height: u64,
        acked: u64,
        recoveries: u64,
        duplicates: u64,
    }

    /// One seeded soak: `attempts` put-transactions committed one block
    /// each against a peer whose disk injects `fault_config` faults.
    /// `require_no_loss` asserts acked commits survive every crash (only
    /// sound when the config injects no bit rot).
    fn run_recovery_soak(
        seed: u64,
        attempts: usize,
        fault_config: FaultConfig,
        require_no_loss: bool,
    ) -> SoakOutcome {
        let p = parts();
        let disk = Arc::new(FaultVfs::new(Arc::new(MemVfs::new()), seed, fault_config));
        let file_config = FileConfig {
            snapshot_interval: 16,
            ..FileConfig::default()
        };
        let mut trace: Vec<String> = Vec::new();
        // Shadow model: for every chain height the client has ever sent a
        // block for, the exact world state that prefix implies.
        let mut shadow = WorldState::new();
        let mut candidates: HashMap<u64, WorldState> = HashMap::new();
        candidates.insert(0, WorldState::new());
        candidates.insert(1, WorldState::new()); // genesis writes nothing
        let mut acked: u64 = 0;
        let mut recoveries: u64 = 0;

        let mut peer = reopen(&p, &disk, &file_config, &mut trace);
        let mut i = 0usize;
        while i < attempts {
            // (Re-)establish genesis if the chain is empty — possible at
            // first open and again if bit rot ate the whole WAL.
            if peer.height() == 0 {
                match peer.validate_and_commit(Block::genesis(vec![b"config".to_vec()])) {
                    Ok(_) => {
                        shadow = WorldState::new();
                        acked = acked.max(1);
                        trace.push("genesis-ok".into());
                    }
                    Err(e) if is_storage_err(&e) => {
                        trace.push("crash@genesis".into());
                        peer = reopen(&p, &disk, &file_config, &mut trace);
                        recoveries += 1;
                    }
                    Err(e) => panic!("genesis commit failed: {e}"),
                }
                continue;
            }
            let proposal = Proposal::new(
                format!("tx{i}"),
                "ch",
                "kv",
                "put",
                vec![
                    format!("k{}", i % 8).into_bytes(),
                    format!("v{i}").into_bytes(),
                ],
                p.client.certificate().clone(),
            )
            .sign(p.client.signing_key());
            let sim = peer.simulate(&proposal).expect("simulation is disk-free");
            let endorsement = peer
                .endorse_transaction(&proposal, &sim)
                .expect("endorsement is disk-free");
            let envelope = TransactionEnvelope {
                txid: proposal.txid.clone(),
                channel: "ch".into(),
                chaincode: "kv".into(),
                result: sim.result.clone(),
                rwset: sim.rwset.clone(),
                endorsements: vec![endorsement],
                creator_cert: proposal.creator.clone(),
            };
            let tip = peer.store().tip().expect("non-empty chain").clone();
            let block = Block::next(&tip, vec![envelope.encode_to_vec()]);
            let number = block.header.number;
            // What the world state must be if this block commits.
            let mut candidate = shadow.clone();
            candidate.apply(&envelope.rwset, Version::new(number, 0));
            candidates.insert(number + 1, candidate.clone());
            match peer.validate_and_commit(block) {
                Ok(codes) => {
                    assert!(
                        codes.iter().all(|c| c.is_valid()),
                        "blind puts can never be invalidated: {codes:?} (seed {seed})"
                    );
                    shadow = candidate;
                    acked = acked.max(number + 1);
                    assert_eq!(
                        peer.state_hash(),
                        shadow.state_hash(),
                        "live state diverged from shadow after block {number} (seed {seed})"
                    );
                    trace.push(format!("ok@{number}"));
                    i += 1;
                }
                Err(e) if is_storage_err(&e) => {
                    trace.push(format!("crash@{number}"));
                    peer = reopen(&p, &disk, &file_config, &mut trace);
                    recoveries += 1;
                    let h = peer.height();
                    assert!(
                        h <= number + 1,
                        "recovered past what was ever sent: {h} > {} (seed {seed})",
                        number + 1
                    );
                    if require_no_loss {
                        assert!(
                            h >= acked,
                            "acked block lost: recovered to {h} after acking {acked} (seed {seed})"
                        );
                    }
                    // Verified prefix: the recovered state is exactly the
                    // shadow state for that height — never a half-applied
                    // or corrupt prefix.
                    let expected = candidates
                        .get(&h)
                        .unwrap_or_else(|| panic!("recovered to unknown height {h} (seed {seed})"));
                    assert_eq!(
                        peer.state_hash(),
                        expected.state_hash(),
                        "recovered state at height {h} is not the committed prefix (seed {seed})"
                    );
                    shadow = expected.clone();
                    // The client moves on: an unacked block may or may not
                    // have survived; re-sending tx{i} in a fresh block is
                    // legal and exercises duplicate-txid handling.
                }
                Err(e) => panic!("commit of block {number} failed: {e}"),
            }
        }
        SoakOutcome {
            trace,
            crashes: disk.crashes(),
            injected: disk.injected(),
            final_height: peer.height(),
            acked,
            recoveries,
            duplicates: peer.storage_stats().duplicate_txids(),
        }
    }

    #[test]
    fn kill_recover_soak_never_loses_acked_commits() {
        let seed = chaos_seed();
        let outcome = run_recovery_soak(seed, 120, FaultConfig::crashy(), true);
        println!(
            "durable soak: {} attempts acked to height {}, {} crashes, {} faults injected, {} recoveries, {} duplicate txids",
            120, outcome.acked, outcome.crashes, outcome.injected, outcome.recoveries, outcome.duplicates
        );
        assert!(
            outcome.crashes > 0,
            "crash schedule must actually fire (seed {seed})"
        );
        assert!(
            outcome.recoveries > 0,
            "soak must exercise recovery (seed {seed})"
        );
        // 120 acked puts + genesis, plus any durable-but-unacked blocks
        // that survived a crash-after-write (those are retried under a
        // fresh block, so they add height).
        assert!(
            outcome.final_height >= 121,
            "all 120 payloads plus genesis must eventually commit: height {} (seed {seed})",
            outcome.final_height
        );
        assert!(
            outcome.acked <= outcome.final_height,
            "acked height {} above actual chain {} (seed {seed})",
            outcome.acked,
            outcome.final_height
        );
    }

    #[test]
    fn kill_recover_soak_with_bit_rot_always_recovers_a_verified_prefix() {
        let seed = chaos_seed().wrapping_add(1);
        // Bit rot may destroy acked durable bytes; the property that
        // survives is prefix integrity, asserted inside the soak after
        // every recovery.
        let outcome = run_recovery_soak(seed, 120, FaultConfig::rotten(), false);
        println!(
            "rotten soak: final height {}, {} crashes, {} faults injected, {} recoveries",
            outcome.final_height, outcome.crashes, outcome.injected, outcome.recoveries
        );
        assert!(
            outcome.injected > 0,
            "fault schedule must actually fire (seed {seed})"
        );
        assert!(
            outcome.recoveries > 0,
            "soak must exercise recovery (seed {seed})"
        );
        // Bit rot may permanently truncate acked blocks, so no exact
        // height claim — the load-bearing assertions (recovered state ==
        // shadow prefix after every crash) already ran inside the soak.
        assert!(
            outcome.final_height >= 1,
            "chain must end non-empty (seed {seed})"
        );
    }

    #[test]
    fn kill_recover_soak_replays_identically_from_its_seed() {
        let seed = chaos_seed();
        let first = run_recovery_soak(seed, 60, FaultConfig::crashy(), true);
        let second = run_recovery_soak(seed, 60, FaultConfig::crashy(), true);
        assert_eq!(
            first.trace, second.trace,
            "same seed {seed} must replay the exact same commit/crash/recover trace"
        );
        assert_eq!(first.crashes, second.crashes);
        assert_eq!(first.injected, second.injected);
        assert_eq!(first.final_height, second.final_height);
        // And a different seed produces a different schedule (overwhelming
        // probability for any non-degenerate config).
        let third = run_recovery_soak(seed.wrapping_add(0x9e37), 60, FaultConfig::crashy(), true);
        assert_ne!(
            first.trace, third.trace,
            "different seeds should not produce identical traces"
        );
    }
}
