//! E11 — §5 "Generalization and Extensibility": the relay service, system
//! contracts, and client support are reused unchanged for a non-Fabric
//! (Corda-like notary) network; only the network driver is new.

use std::sync::Arc;
use tdt::interop::corda_like::{CordaLikeDriver, NotaryNetwork};
use tdt::interop::setup::stl_swt_testbed;
use tdt::interop::{InteropClient, InteropError};
use tdt::relay::discovery::DiscoveryService;
use tdt::relay::service::RelayService;
use tdt::relay::transport::{EnvelopeHandler, RelayTransport};
use tdt::wire::messages::{NetworkAddress, PolicyNode, VerificationPolicy};

struct NotaryFixture {
    testbed: tdt::interop::setup::Testbed,
    notary_net: Arc<NotaryNetwork>,
}

fn fixture() -> NotaryFixture {
    let testbed = stl_swt_testbed();
    let notary_net = Arc::new(NotaryNetwork::new(
        "corda-net",
        &["notary-org-a", "notary-org-b", "notary-org-c"],
    ));
    notary_net.record_fact("VaultCC", "GetFact", "K-1", b"notarized state".to_vec());
    notary_net.allow("swt", "seller-bank-org");
    let relay = Arc::new(RelayService::new(
        "corda-relay",
        "corda-net",
        Arc::clone(&testbed.registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&testbed.bus) as Arc<dyn RelayTransport>,
    ));
    relay.register_driver(Arc::new(CordaLikeDriver::new(Arc::clone(&notary_net))));
    testbed.bus.register(
        "corda-relay",
        Arc::clone(&relay) as Arc<dyn EnvelopeHandler>,
    );
    testbed.registry.register("corda-net", "inproc:corda-relay");
    NotaryFixture {
        testbed,
        notary_net,
    }
}

fn fact_address() -> NetworkAddress {
    NetworkAddress::new("corda-net", "vault", "VaultCC", "GetFact").with_arg(b"K-1".to_vec())
}

#[test]
fn unchanged_client_queries_both_platforms() {
    let f = fixture();
    tdt::interop::setup::issue_sample_bl(&f.testbed, "PO-1001");
    let client = InteropClient::new(
        f.testbed.swt_seller_gateway(),
        Arc::clone(&f.testbed.swt_relay),
    );
    // Fabric source.
    let fabric_remote = client
        .query_remote(
            NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(b"PO-1001".to_vec()),
            VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality(),
        )
        .unwrap();
    // Notary source, same client, same relay.
    let notary_remote = client
        .query_remote(
            fact_address(),
            VerificationPolicy::all_of_orgs(["notary-org-a", "notary-org-b"])
                .with_confidentiality(),
        )
        .unwrap();
    assert!(!fabric_remote.data.is_empty());
    assert_eq!(notary_remote.data, b"notarized state");
}

#[test]
fn notary_threshold_policies_work() {
    let f = fixture();
    let client = InteropClient::new(
        f.testbed.swt_seller_gateway(),
        Arc::clone(&f.testbed.swt_relay),
    );
    // 2-of-3 notaries.
    let policy = VerificationPolicy {
        expression: PolicyNode::OutOf(
            2,
            vec![
                PolicyNode::Org("notary-org-a".into()),
                PolicyNode::Org("notary-org-b".into()),
                PolicyNode::Org("notary-org-c".into()),
            ],
        ),
        confidential: true,
    };
    let remote = client.query_remote(fact_address(), policy).unwrap();
    assert_eq!(remote.proof.attestations.len(), 2);
}

#[test]
fn cmdac_accepts_notary_configuration_schema() {
    // The "standardized platform-independent schema" (paper §5): the
    // notary network's configuration uses the same NetworkConfig message
    // and the same recording transaction as Fabric networks.
    let f = fixture();
    let admin = f.testbed.swt_seller_gateway();
    tdt::interop::config::record_foreign_config(&admin, &f.notary_net.network_config()).unwrap();
    let policy =
        VerificationPolicy::all_of_orgs(["notary-org-a", "notary-org-b"]).with_confidentiality();
    tdt::interop::config::set_verification_policy(
        &admin,
        "corda-net",
        "VaultCC",
        "GetFact",
        &policy,
    )
    .unwrap();
    let client = InteropClient::new(
        f.testbed.swt_seller_gateway(),
        Arc::clone(&f.testbed.swt_relay),
    );
    let remote = client.query_remote(fact_address(), policy).unwrap();
    let verdict = admin
        .submit(
            "CMDAC",
            "ValidateProof",
            vec![
                b"corda-net".to_vec(),
                b"corda-net:vault:VaultCC:GetFact".to_vec(),
                remote.proof_bytes(),
            ],
        )
        .unwrap()
        .into_committed()
        .unwrap();
    assert_eq!(verdict, b"ok");
}

#[test]
fn notary_exposure_control_denies_unauthorized_networks() {
    let f = fixture();
    // The STL seller (wrong network/org pairing) is not on the grant list.
    let stl_client = f
        .testbed
        .stl
        .register_client("seller-org", "stl-prober", true)
        .unwrap();
    let gateway = tdt::fabric::gateway::Gateway::new(Arc::clone(&f.testbed.stl), stl_client);
    let client = InteropClient::new(gateway, Arc::clone(&f.testbed.stl_relay));
    let err = client
        .query_remote(
            fact_address(),
            VerificationPolicy::all_of_orgs(["notary-org-a"]).with_confidentiality(),
        )
        .unwrap_err();
    assert!(matches!(err, InteropError::AccessDenied(_)));
}
