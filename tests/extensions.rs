//! The paper's future-work extensions (§5/§7) end to end: cross-network
//! invocations (ledger updates with commitment receipts) and cross-network
//! event subscription.

use std::sync::Arc;
use std::time::Duration;
use tdt::interop::events::{verify_event_notice, FabricEventSource};
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
use tdt::interop::{InteropClient, InteropError};
use tdt::wire::codec::Message;
use tdt::wire::messages::{AuthInfo, NetworkAddress, ResultMetadata, VerificationPolicy};

fn policy() -> VerificationPolicy {
    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
}

fn financing_address(po: &str, status: &str) -> NetworkAddress {
    NetworkAddress::new(
        "stl",
        "trade-channel",
        "TradeLensCC",
        "RecordFinancingStatus",
    )
    .with_arg(po.as_bytes().to_vec())
    .with_arg(status.as_bytes().to_vec())
}

fn allow_invocation(t: &Testbed) {
    tdt::interop::config::add_exposure_rule(
        &t.stl_seller_gateway(),
        "swt",
        "seller-bank-org",
        "TradeLensCC",
        "RecordFinancingStatus",
    )
    .unwrap();
}

#[test]
fn cross_network_invocation_commits_with_receipt() {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    allow_invocation(&t);
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let remote = client
        .invoke_remote(financing_address("PO-1001", "lc-issued"), policy())
        .unwrap();
    // The decrypted acknowledgement.
    assert_eq!(remote.data, b"recorded:lc-issued");
    // The receipt metadata carries the committed block and txid.
    for att in &remote.proof.attestations {
        let md = ResultMetadata::decode_from_slice(&att.metadata).unwrap();
        assert!(md.committed_block().is_some());
        assert!(md.txid.starts_with("relay-"));
    }
    // The write actually committed on every STL peer.
    for (name, peer) in t.stl.peers() {
        let value = peer
            .read()
            .state()
            .get("TradeLensCC", "financing:PO-1001")
            .unwrap_or_else(|| panic!("financing status missing on {name}"))
            .value
            .clone();
        assert_eq!(value, b"lc-issued");
    }
    // And the status is queryable locally.
    let status = t
        .stl_seller_gateway()
        .query(
            "TradeLensCC",
            "GetFinancingStatus",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap();
    assert_eq!(status, b"lc-issued");
}

#[test]
fn invocation_without_exposure_rule_denied() {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let err = client
        .invoke_remote(financing_address("PO-1001", "x"), policy())
        .unwrap_err();
    assert!(matches!(err, InteropError::AccessDenied(_)));
    // Nothing was written.
    for (_, peer) in t.stl.peers() {
        assert!(peer
            .read()
            .state()
            .get("TradeLensCC", "financing:PO-1001")
            .is_none());
    }
}

#[test]
fn invocation_flag_covered_by_auth_signature() {
    // A malicious relay cannot upgrade a signed read-only query into a
    // write: the invocation flag is inside the signed bytes.
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    allow_invocation(&t);
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let mut query = client.build_query(financing_address("PO-1001", "evil"), policy());
    assert!(!query.invocation);
    query.invocation = true; // flipped in transit
    let driver = tdt::interop::driver::FabricDriver::new(Arc::clone(&t.stl));
    use tdt::relay::driver::NetworkDriver;
    let err = driver.execute_query(&query).unwrap_err();
    assert!(err.to_string().contains("authentication"));
    for (_, peer) in t.stl.peers() {
        assert!(peer
            .read()
            .state()
            .get("TradeLensCC", "financing:PO-1001")
            .is_none());
    }
}

#[test]
fn invocation_for_missing_shipment_fails() {
    let t = stl_swt_testbed();
    allow_invocation(&t);
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let err = client
        .invoke_remote(financing_address("PO-GHOST", "x"), policy())
        .unwrap_err();
    assert!(matches!(err, InteropError::NotFound(_)));
}

#[test]
fn event_subscription_across_networks() {
    let t = stl_swt_testbed();
    t.stl_relay
        .register_event_source(Arc::new(FabricEventSource::new(Arc::clone(&t.stl))));
    let auth = AuthInfo {
        network_id: "swt".into(),
        organization_id: "seller-bank-org".into(),
        certificate: tdt::wire::messages::encode_certificate(t.swt_seller_client.certificate()),
        signature: Vec::new(),
    };
    let rx = t.swt_relay.subscribe_remote_events("stl", auth).unwrap();
    // Drive STL activity; the SWT side observes attested block events.
    issue_sample_bl(&t, "PO-555");
    let stl_config = t.stl.network_config();
    let mut blocks = Vec::new();
    for _ in 0..4 {
        let notice = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        verify_event_notice(&notice, &stl_config).unwrap();
        blocks.push(notice.block_number);
    }
    // Four consecutive blocks (the testbed's init transactions already
    // occupied the first block numbers before the subscription).
    assert!(blocks.windows(2).all(|w| w[1] == w[0] + 1));
    assert_eq!(blocks.len(), 4);
}
