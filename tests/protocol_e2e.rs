//! E4 — Fig. 4: the protocol instance behind Step 9, inspected in detail.
//!
//! Verifies the mechanics the figure depicts: ECC access checks and
//! response encryption on the STL peers, custom endorsement over metadata,
//! proof transport through both relays, client-side decryption, and
//! CMDAC-based validation inside the SWT transaction (with the nonce
//! recorded on the destination ledger).

use std::sync::Arc;
use tdt::contracts::swt::SwtChaincode;
use tdt::crypto::sha256::sha256;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
use tdt::interop::{InteropClient, InteropError};
use tdt::wire::codec::Message;
use tdt::wire::messages::{decode_certificate, NetworkAddress, ResultMetadata, VerificationPolicy};

fn prepared() -> (Testbed, InteropClient) {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, "PO-1001");
    let buyer = t.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                b"PO-1001".to_vec(),
                b"LC-1".to_vec(),
                b"buyer".to_vec(),
                b"seller".to_vec(),
                b"100000".to_vec(),
            ],
        )
        .unwrap()
        .into_committed()
        .unwrap();
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])
        .unwrap()
        .into_committed()
        .unwrap();
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    (t, client)
}

fn bl_address() -> NetworkAddress {
    NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec())
}

fn policy() -> VerificationPolicy {
    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
}

#[test]
fn proof_metadata_binds_query_and_result() {
    let (_t, client) = prepared();
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    let result_hash = sha256(&remote.data);
    for att in &remote.proof.attestations {
        let metadata = ResultMetadata::decode_from_slice(&att.metadata).unwrap();
        assert_eq!(metadata.request_id, remote.proof.request_id);
        assert_eq!(
            metadata.address,
            "stl:trade-channel:TradeLensCC:GetBillOfLading"
        );
        assert_eq!(metadata.nonce, remote.proof.nonce);
        assert_eq!(metadata.result_hash, result_hash.to_vec());
        assert!(metadata.ledger_height > 0);
        // The metadata's org matches the signing certificate.
        let cert = decode_certificate(&att.signer_cert).unwrap();
        assert_eq!(metadata.org_id, cert.subject().organization);
        assert_eq!(metadata.peer_id, cert.subject().qualified_name());
    }
}

#[test]
fn attestation_signatures_authentic_against_stl_roots() {
    let (t, client) = prepared();
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    for att in &remote.proof.attestations {
        let cert = decode_certificate(&att.signer_cert).unwrap();
        // Chains to the STL org's root exactly as the CMDAC would check.
        let org = t.stl.org(&cert.subject().organization).unwrap();
        cert.verify(&org.root_certificate()).unwrap();
        // Signature verifies over the plaintext metadata.
        let vk = cert.verifying_key().unwrap();
        let sig = tdt::crypto::schnorr::Signature::from_bytes(&att.signature).unwrap();
        vk.verify(&att.metadata, &sig).unwrap();
    }
}

#[test]
fn nonce_recorded_on_destination_ledger() {
    let (t, client) = prepared();
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap()
        .into_committed()
        .unwrap();
    // Every SWT peer recorded the consumed nonce under the CMDAC namespace.
    let nonce_key = format!("nonce:stl:{}", tdt::crypto::hex_encode(&remote.proof.nonce));
    for (name, peer) in t.swt.peers() {
        assert!(
            peer.read().state().get("CMDAC", &nonce_key).is_some(),
            "nonce missing on {name}"
        );
    }
}

#[test]
fn swt_endorsement_policy_enforced_on_upload() {
    // The UploadDispatchDocs transaction needs one endorsement from each
    // bank org (paper §4.3). With all of one bank's peers down it cannot
    // be endorsed.
    let (t, client) = prepared();
    let remote = client.query_remote(bl_address(), policy()).unwrap();
    t.swt.faults().take_down("swt/buyer-bank-org/peer0");
    t.swt.faults().take_down("swt/buyer-bank-org/peer1");
    let err = client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap_err();
    assert!(matches!(err, InteropError::Fabric(_)));
    // Restore one buyer-bank peer: now it commits.
    t.swt.faults().restore("swt/buyer-bank-org/peer0");
    client
        .submit_with_remote_data(
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
            &remote,
        )
        .unwrap()
        .into_committed()
        .unwrap();
}

#[test]
fn proof_rejected_when_policy_not_recorded_for_function() {
    // Querying a function with no recorded verification policy fails at
    // the Data Acceptance stage even if the source would serve it.
    let (t, client) = prepared();
    // Expose GetShipment on STL.
    tdt::interop::config::add_exposure_rule(
        &t.stl_seller_gateway(),
        "swt",
        "seller-bank-org",
        "TradeLensCC",
        "GetShipment",
    )
    .unwrap();
    let address = NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetShipment")
        .with_arg(b"PO-1001".to_vec());
    // GetShipment is not interop-adapted (no on-chain encryption), so the
    // query runs with a plaintext policy.
    let remote = client
        .query_remote(
            address,
            VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]),
        )
        .unwrap();
    // Direct CMDAC validation on SWT: no policy recorded for GetShipment.
    let err = t
        .swt_seller_gateway()
        .submit(
            "CMDAC",
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                b"stl:trade-channel:TradeLensCC:GetShipment".to_vec(),
                remote.proof_bytes(),
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("no verification policy"));
}
