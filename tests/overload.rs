//! Deterministic admission-control tests (ISSUE 6).
//!
//! The chaos soak exercises the admission gate under randomized timing;
//! these tests pin down its *exact* contract with no randomness at all:
//! a worker pool whose single worker is parked on a gated driver gives
//! complete control over queue depth, so every admit/shed decision is
//! forced, not probabilistic.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tdt::obs::ObsHandle;
use tdt::relay::admission::AdmissionConfig;
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::driver::NetworkDriver;
use tdt::relay::service::{RelayService, RelayStatsSnapshot};
use tdt::relay::telemetry::register_relay;
use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt::relay::RelayError;
use tdt::wire::messages::{NetworkAddress, Query, QueryResponse};

/// A driver whose queries block until the test opens the gate, so the
/// worker pool's queue depth is under test control.
struct GatedDriver {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedDriver {
    fn new() -> (Arc<(Mutex<bool>, Condvar)>, GatedDriver) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let driver = GatedDriver {
            gate: Arc::clone(&gate),
        };
        (gate, driver)
    }
}

impl NetworkDriver for GatedDriver {
    fn network_id(&self) -> &str {
        "stl"
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            result: query.address.args.first().cloned().unwrap_or_default(),
            ..Default::default()
        })
    }
}

fn flood_query(i: usize) -> (Query, Vec<u8>) {
    let payload = format!("flood-{i:03}").into_bytes();
    let q = Query {
        request_id: format!("f{i}"),
        address: NetworkAddress::new("stl", "l", "c", "f").with_arg(payload.clone()),
        ..Default::default()
    };
    (q, payload)
}

#[test]
fn flood_past_capacity_sheds_at_the_gate_without_queuing() {
    const FLOOD: usize = 24;
    const BURST_FLOOR: u64 = 2;

    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let (gate, driver) = GatedDriver::new();
    let stl = Arc::new(
        RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        // A deadline far beyond the test's runtime: nothing admitted may
        // time out, so every flood outcome is either "served" or "shed".
        .with_request_deadline(Duration::from_secs(60))
        // An absurd initial service-time estimate forces a shed for any
        // depth at or above the burst floor — no EWMA warm-up needed.
        .with_admission_control(AdmissionConfig {
            burst_floor: BURST_FLOOR,
            alpha: 0.2,
            initial_service_time: Duration::from_secs(3600),
            headroom: 1.0,
        }),
    );
    stl.register_driver(Arc::new(driver));
    stl.start_workers(1);
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let swt = Arc::new(RelayService::new(
        "swt-relay",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));

    let outcomes = std::thread::scope(|scope| {
        // One query occupies the single worker inside the gated driver.
        let pilot = {
            let swt = Arc::clone(&swt);
            scope.spawn(move || {
                let (q, expected) = flood_query(0);
                (swt.relay_query(&q), expected)
            })
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while stl.stats().snapshot().in_flight == 0 {
            assert!(
                Instant::now() < deadline,
                "pilot query never reached the driver"
            );
            std::thread::yield_now();
        }

        // Flood well past the burst floor while the worker is parked.
        let handles: Vec<_> = (1..=FLOOD)
            .map(|i| {
                let swt = Arc::clone(&swt);
                scope.spawn(move || {
                    let (q, expected) = flood_query(i);
                    let started = Instant::now();
                    let outcome = swt.relay_query(&q);
                    (outcome, expected, started.elapsed())
                })
            })
            .collect();

        // Every flood request must become either a queued admit or a
        // gate shed *before* the driver is released — sheds by
        // definition never waited on the queue.
        while {
            let snap = stl.stats().snapshot();
            (snap.admission_shed + snap.queue_depth) < FLOOD as u64
        } {
            assert!(
                Instant::now() < deadline,
                "flood never settled: {:?}",
                stl.stats().snapshot()
            );
            std::thread::yield_now();
        }
        let sheds_before_release = stl.stats().admission_shed();

        // Open the gate; the worker drains the queued admits.
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();

        let mut outcomes = vec![];
        let (pilot_outcome, pilot_expected) = pilot.join().expect("pilot thread");
        assert_eq!(
            pilot_outcome.expect("pilot query must be served").result,
            pilot_expected
        );
        for handle in handles {
            outcomes.push(handle.join().expect("flood thread"));
        }
        assert_eq!(
            stl.stats().admission_shed(),
            sheds_before_release,
            "no request may be shed after the queue drained"
        );
        outcomes
    });
    stl.stop_workers();

    let mut served = 0u64;
    let mut shed = 0u64;
    for (outcome, expected, elapsed) in &outcomes {
        match outcome {
            Ok(r) => {
                assert_eq!(&r.result, expected, "served reply must be intact");
                served += 1;
            }
            Err(RelayError::Overloaded(m)) => {
                assert!(
                    *elapsed < Duration::from_secs(2),
                    "a shed must be a fast reject, took {elapsed:?}"
                );
                assert!(
                    m.contains("deadline budget"),
                    "shed reason is diagnostic: {m}"
                );
                shed += 1;
            }
            Err(other) => panic!("flood outcome must be served or shed, got {other}"),
        }
    }
    // The worker was parked for the whole flood, so at most the burst
    // floor (plus the admit-vs-enqueue race margin) squeezed in; all the
    // rest were shed, and in-deadline work still completed.
    assert!(served >= 1, "in-deadline requests must still complete");
    assert!(
        served <= BURST_FLOOR + 2,
        "worker was parked: only burst-floor admits may be served, got {served}"
    );
    assert!(
        shed >= FLOOD as u64 - BURST_FLOOR - 2,
        "flood past capacity must shed, got {shed}/{FLOOD}"
    );

    // The client-observed shed count is exactly the gate's own counter,
    // and the metrics registry exports the same number.
    assert_eq!(stl.stats().admission_shed(), shed);
    assert_eq!(stl.stats().admission_admitted(), served + 1);
    let handle = ObsHandle::new();
    register_relay(&handle, &stl);
    let text = handle.prometheus_text();
    assert!(
        text.contains(&format!(
            "tdt_relay_admission_shed_total{{relay=\"stl-relay\"}} {shed}"
        )),
        "registry must export the gate's shed count, got:\n{text}"
    );
    assert!(text.contains(&format!(
        "tdt_relay_admission_admitted_total{{relay=\"stl-relay\"}} {}",
        served + 1
    )));
}

#[test]
fn snapshot_merge_saturates_admission_counters() {
    let mut a = RelayStatsSnapshot {
        admission_admitted: u64::MAX - 1,
        admission_shed: u64::MAX,
        ..Default::default()
    };
    let b = RelayStatsSnapshot {
        admission_admitted: 7,
        admission_shed: 7,
        ..Default::default()
    };
    a.merge(&b);
    assert_eq!(a.admission_admitted, u64::MAX);
    assert_eq!(a.admission_shed, u64::MAX);
}

#[test]
fn served_and_shed_partition_the_flood_exactly() {
    // Conservation: admitted + shed must equal every request that ever
    // reached the gate, so operators can trust the two counters to add
    // up during an incident.
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(
        RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_admission_control(AdmissionConfig::default()),
    );
    stl.register_driver(Arc::new(tdt::relay::driver::EchoDriver::new("stl")));
    stl.start_workers(2);
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let swt = Arc::new(RelayService::new(
        "swt-relay",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    for i in 0..50 {
        let (q, _) = flood_query(i);
        let _ = swt.relay_query(&q);
    }
    stl.stop_workers();
    let snap = stl.stats().snapshot();
    assert_eq!(snap.admission_admitted + snap.admission_shed, 50);
    assert_eq!(snap.admission_admitted, snap.enqueued);
}
