//! Cross-crate property-based tests: protocol invariants that must hold
//! for *all* inputs, not just the fixtures.

use proptest::prelude::*;
use tdt::crypto::sha256::sha256;
use tdt::wire::codec::Message;
use tdt::wire::messages::{
    Attestation, EnvelopeKind, NetworkAddress, PolicyNode, Proof, Query, RelayEnvelope,
    ResultMetadata, TraceHeader, VerificationPolicy,
};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_policy() -> impl Strategy<Value = PolicyNode> {
    let leaf = "[a-e]{1,4}".prop_map(PolicyNode::Org);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(PolicyNode::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(PolicyNode::Or),
            (1u32..4, prop::collection::vec(inner, 1..4))
                .prop_map(|(k, children)| PolicyNode::OutOf(k, children)),
        ]
    })
}

fn arb_address() -> impl Strategy<Value = NetworkAddress> {
    (
        "[a-z]{1,8}",
        "[a-z]{1,8}",
        "[A-Za-z]{1,10}",
        "[A-Za-z]{1,10}",
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..3),
    )
        .prop_map(|(n, l, c, f, args)| {
            let mut addr = NetworkAddress::new(n, l, c, f);
            addr.args = args;
            addr
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        "[a-z0-9-]{1,20}",
        arb_address(),
        arb_policy(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..24),
        any::<bool>(),
    )
        .prop_map(
            |(request_id, address, expression, confidential, nonce, invocation)| Query {
                request_id,
                address,
                policy: VerificationPolicy {
                    expression,
                    confidential,
                },
                auth: Default::default(),
                nonce,
                invocation,
            },
        )
}

fn arb_envelope() -> impl Strategy<Value = RelayEnvelope> {
    (
        prop_oneof![
            Just(EnvelopeKind::QueryRequest),
            Just(EnvelopeKind::QueryResponse),
            Just(EnvelopeKind::Error),
            Just(EnvelopeKind::Ping),
            Just(EnvelopeKind::Pong),
        ],
        "[a-z0-9-]{1,12}",
        "[a-z]{1,8}",
        prop::collection::vec(any::<u8>(), 0..32),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(kind, source_relay, dest_network, payload, correlation_id, traced)| RelayEnvelope {
                kind,
                source_relay,
                dest_network,
                payload,
                correlation_id,
                // Either no trace (zero-elided) or a fully populated one,
                // derived from the correlation id to stay shrinkable.
                trace: if traced {
                    TraceHeader {
                        trace_hi: correlation_id | 1,
                        trace_lo: correlation_id.rotate_left(17) | 1,
                        span_id: correlation_id.rotate_left(31) | 1,
                        parent_span_id: correlation_id.rotate_left(43),
                        sampled: true,
                    }
                } else {
                    TraceHeader::default()
                },
                batch: Vec::new(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -----------------------------------------------------------------------
    // Wire roundtrips for arbitrary protocol messages.
    // -----------------------------------------------------------------------

    #[test]
    fn prop_query_wire_roundtrip(query in arb_query()) {
        let decoded = Query::decode_from_slice(&query.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded, query);
    }

    #[test]
    fn prop_policy_wire_roundtrip(policy in arb_policy()) {
        let decoded = PolicyNode::decode_from_slice(&policy.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded, policy);
    }

    #[test]
    fn prop_wire_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes either decode or error — never panic.
        let _ = Query::decode_from_slice(&bytes);
        let _ = Proof::decode_from_slice(&bytes);
        let _ = PolicyNode::decode_from_slice(&bytes);
    }

    // -----------------------------------------------------------------------
    // Envelope batching (ISSUE 6): the repeated batch field is
    // append-only, zero-elided, and positionally faithful.
    // -----------------------------------------------------------------------

    #[test]
    fn prop_envelope_batch_roundtrip_is_positional(
        outer in arb_envelope(),
        members in prop::collection::vec(arb_envelope(), 1..6),
    ) {
        let encoded_members: Vec<Vec<u8>> =
            members.iter().map(|m| m.encode_to_vec()).collect();
        let batched = outer.clone().with_batch(encoded_members);
        prop_assert!(batched.is_batch());
        let decoded =
            RelayEnvelope::decode_from_slice(&batched.encode_to_vec()).unwrap();
        prop_assert_eq!(&decoded, &batched);
        // Every sub-frame decodes back to its member, in order —
        // positional correlation is what the client's reply fan-out
        // relies on.
        prop_assert_eq!(decoded.batch.len(), members.len());
        for (frame, member) in decoded.batch.iter().zip(&members) {
            prop_assert_eq!(&RelayEnvelope::decode_from_slice(frame).unwrap(), member);
        }
    }

    #[test]
    fn prop_empty_batch_is_wire_invisible(
        envelope in arb_envelope(),
        members in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..16), 1..4),
    ) {
        // Zero elision: an envelope without a batch encodes not one byte
        // differently from the pre-batching schema, so batch-of-1 client
        // flushes (which send the original envelope) and legacy peers
        // stay byte-for-byte interchangeable.
        let legacy = envelope.encode_to_vec();
        prop_assert!(!envelope.is_batch());
        let reencoded = RelayEnvelope::decode_from_slice(&legacy)
            .unwrap()
            .encode_to_vec();
        prop_assert_eq!(&reencoded, &legacy);
        // Append-only evolution: adding the batch strictly appends to
        // the legacy frame (tag 7 sorts after every legacy field), so an
        // old decoder that skips unknown fields still reads the prefix.
        let batched = envelope.with_batch(members).encode_to_vec();
        prop_assert!(batched.len() > legacy.len());
        prop_assert!(batched.starts_with(&legacy));
    }

    // -----------------------------------------------------------------------
    // Policy algebra.
    // -----------------------------------------------------------------------

    #[test]
    fn prop_policy_satisfaction_monotone(
        policy in arb_policy(),
        base in prop::collection::vec("[a-e]{1,4}", 0..6),
        extra in prop::collection::vec("[a-e]{1,4}", 0..4),
    ) {
        // Adding organizations never turns a satisfied policy unsatisfied.
        if policy.is_satisfied(&base) {
            let mut superset = base.clone();
            superset.extend(extra);
            prop_assert!(policy.is_satisfied(&superset));
        }
    }

    #[test]
    fn prop_minimal_org_set_sound_and_complete(policy in arb_policy()) {
        match tdt::interop::policy::minimal_org_set(&policy) {
            Some(set) => prop_assert!(policy.is_satisfied(&set), "minimal set must satisfy"),
            None => {
                // Unsatisfiable even with every mentioned org present.
                let all: Vec<String> =
                    policy.organizations().iter().map(|s| s.to_string()).collect();
                prop_assert!(!policy.is_satisfied(&all), "claimed unsatisfiable but all-orgs satisfies");
            }
        }
    }

    #[test]
    fn prop_empty_org_set_only_satisfies_trivial(policy in arb_policy()) {
        // A policy satisfied by nobody's attestation must also be reported
        // satisfiable with an empty minimal set (degenerate expressions
        // like And([]) — which arb_policy cannot generate — aside).
        let empty: Vec<String> = Vec::new();
        if policy.is_satisfied(&empty) {
            let set = tdt::interop::policy::minimal_org_set(&policy);
            prop_assert!(set.is_some());
        }
    }
}

// ---------------------------------------------------------------------------
// Proof mutation resistance: no single byte flip may change the accepted
// result.
// ---------------------------------------------------------------------------

fn make_valid_proof() -> (Proof, tdt::fabric::msp::Identity, tdt::fabric::msp::Msp) {
    let mut msp = tdt::fabric::msp::Msp::new(
        "src-net",
        "org-a",
        tdt::crypto::group::Group::test_group(),
        b"prop-seed",
    );
    let peer = msp.enroll("peer0", tdt::crypto::cert::CertRole::Peer, false);
    let result = b"the genuine result".to_vec();
    let metadata = ResultMetadata {
        request_id: "req".into(),
        address: "src-net:l:CC:Get".into(),
        result_hash: sha256(&result).to_vec(),
        nonce: vec![1; 8],
        peer_id: peer.qualified_name(),
        org_id: "org-a".into(),
        ledger_height: 3,
        committed_block_plus_one: 0,
        txid: String::new(),
    };
    let md = metadata.encode_to_vec();
    let proof = Proof {
        request_id: "req".into(),
        address: "src-net:l:CC:Get".into(),
        nonce: vec![1; 8],
        result,
        attestations: vec![Attestation {
            signer_cert: tdt::wire::messages::encode_certificate(peer.certificate()),
            signature: peer.sign(&md).to_bytes(),
            metadata: md,
            metadata_encrypted: false,
        }],
    };
    (proof, peer, msp)
}

/// Like [`make_valid_proof`] but with one attestation per enrolled peer,
/// for properties over attestation orderings.
fn make_valid_proof_multi(peers: usize) -> (Proof, tdt::fabric::msp::Msp) {
    let mut msp = tdt::fabric::msp::Msp::new(
        "src-net",
        "org-a",
        tdt::crypto::group::Group::test_group(),
        b"prop-seed-multi",
    );
    let result = b"the genuine result".to_vec();
    let attestations = (0..peers)
        .map(|i| {
            let peer = msp.enroll(
                &format!("peer{i}"),
                tdt::crypto::cert::CertRole::Peer,
                false,
            );
            let metadata = ResultMetadata {
                request_id: "req".into(),
                address: "src-net:l:CC:Get".into(),
                result_hash: sha256(&result).to_vec(),
                nonce: vec![1; 8],
                peer_id: peer.qualified_name(),
                org_id: "org-a".into(),
                ledger_height: 3,
                committed_block_plus_one: 0,
                txid: String::new(),
            };
            let md = metadata.encode_to_vec();
            Attestation {
                signer_cert: tdt::wire::messages::encode_certificate(peer.certificate()),
                signature: peer.sign(&md).to_bytes(),
                metadata: md,
                metadata_encrypted: false,
            }
        })
        .collect();
    let proof = Proof {
        request_id: "req".into(),
        address: "src-net:l:CC:Get".into(),
        nonce: vec![1; 8],
        result,
        attestations,
    };
    (proof, msp)
}

/// CMDAC-equivalent standalone validation (root check + signature +
/// metadata consistency). Chain validation optionally goes through a
/// [`CertChainCache`], mirroring the CMDAC's cached hot path.
fn validates_impl(
    proof: &Proof,
    root: &tdt::crypto::cert::Certificate,
    cache: Option<&tdt::crypto::certcache::CertChainCache>,
) -> bool {
    let result_hash = sha256(&proof.result);
    if proof.attestations.is_empty() {
        return false;
    }
    for att in &proof.attestations {
        let Ok(cert) = tdt::wire::messages::decode_certificate(&att.signer_cert) else {
            return false;
        };
        let chain_ok = match cache {
            Some(cache) => cache.verify_chain(&cert, root).is_ok(),
            None => cert.verify(root).is_ok(),
        };
        if !chain_ok {
            return false;
        }
        let Ok(vk) = cert.verifying_key() else {
            return false;
        };
        let Ok(sig) = tdt::crypto::schnorr::Signature::from_bytes(&att.signature) else {
            return false;
        };
        if vk.verify(&att.metadata, &sig).is_err() {
            return false;
        }
        let Ok(md) = ResultMetadata::decode_from_slice(&att.metadata) else {
            return false;
        };
        if md.result_hash != result_hash.to_vec()
            || md.request_id != proof.request_id
            || md.address != proof.address
            || md.nonce != proof.nonce
        {
            return false;
        }
    }
    true
}

fn validates(proof: &Proof, root: &tdt::crypto::cert::Certificate) -> bool {
    validates_impl(proof, root, None)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_proof_single_byte_flip_never_accepted_with_changed_content(
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (proof, _peer, msp) = make_valid_proof();
        let root = msp.root_certificate().clone();
        prop_assert!(validates(&proof, &root), "baseline proof must validate");
        let mut bytes = proof.encode_to_vec();
        let idx = byte_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        match Proof::decode_from_slice(&bytes) {
            Err(_) => {} // corrupted encoding rejected outright
            Ok(mutated) => {
                if validates(&mutated, &root) {
                    // Acceptable only if the mutation was semantically
                    // invisible (e.g. a skipped unknown field) — the
                    // accepted content must be identical to the original.
                    prop_assert_eq!(mutated, proof);
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Verification verdicts with the cert-chain cache enabled.
    // -----------------------------------------------------------------------

    #[test]
    fn prop_proof_verdict_invariant_under_attestation_reordering(
        peers in 2usize..5,
        perm_seed in any::<u64>(),
        corrupt in any::<bool>(),
        corrupt_seed in any::<usize>(),
    ) {
        let (mut proof, msp) = make_valid_proof_multi(peers);
        let root = msp.root_certificate().clone();
        let cache = tdt::crypto::certcache::CertChainCache::new();
        if corrupt {
            // Break one attestation's signature: the verdict must be
            // "reject" in every ordering.
            let idx = corrupt_seed % peers;
            let last = proof.attestations[idx].signature.len() - 1;
            proof.attestations[idx].signature[last] ^= 0x01;
        }
        let baseline = validates_impl(&proof, &root, Some(&cache));
        prop_assert_eq!(baseline, !corrupt);
        // Fisher-Yates with a proptest-drawn seed: verdict is order-blind,
        // even with chains already cached from the baseline pass.
        let mut shuffled = proof.clone();
        let mut state = perm_seed;
        for i in (1..shuffled.attestations.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            shuffled.attestations.swap(i, j);
        }
        prop_assert_eq!(validates_impl(&shuffled, &root, Some(&cache)), baseline);
    }

    #[test]
    fn prop_proof_byte_flip_fails_closed_with_warm_cache(
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (proof, _peer, msp) = make_valid_proof();
        let root = msp.root_certificate().clone();
        let cache = tdt::crypto::certcache::CertChainCache::new();
        // Warm the cache with the genuine chain, then flip one bit: the
        // cached entry must never vouch for altered bytes.
        prop_assert!(validates_impl(&proof, &root, Some(&cache)));
        let mut bytes = proof.encode_to_vec();
        let idx = byte_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        match Proof::decode_from_slice(&bytes) {
            Err(_) => {}
            Ok(mutated) => {
                if validates_impl(&mutated, &root, Some(&cache)) {
                    prop_assert_eq!(mutated, proof);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Correlation routing: multiplexed replies must reach exactly the caller
// that sent the matching request, in any arrival order, and strays must
// never be delivered at all.
// ---------------------------------------------------------------------------

fn reply_for(correlation_id: u64) -> tdt::wire::messages::RelayEnvelope {
    tdt::wire::messages::RelayEnvelope {
        kind: tdt::wire::messages::EnvelopeKind::QueryResponse,
        source_relay: "remote".into(),
        dest_network: "here".into(),
        payload: correlation_id.to_be_bytes().to_vec(),
        correlation_id,
        trace: Default::default(),
        batch: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_shuffled_correlated_replies_route_to_right_callers(
        ids in prop::collection::vec(1u64..100_000, 1..24),
        perm_seed in any::<u64>(),
    ) {
        use tdt::relay::transport::CorrelationRouter;
        let router = CorrelationRouter::new();
        let ids: Vec<u64> = ids
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let receivers: Vec<_> = ids
            .iter()
            .map(|&id| (id, router.register(id).unwrap()))
            .collect();
        // Deliver the replies in a shuffled order, as out-of-order
        // completion on a multiplexed connection would.
        let mut arrival = ids.clone();
        let mut state = perm_seed;
        for i in (1..arrival.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            arrival.swap(i, j);
        }
        for &id in &arrival {
            router.complete(id, reply_for(id)).unwrap();
        }
        for (id, rx) in receivers {
            let reply = rx.try_recv().expect("registered caller must get a reply");
            prop_assert_eq!(reply.correlation_id, id);
            prop_assert_eq!(reply.payload, id.to_be_bytes().to_vec());
        }
        prop_assert_eq!(router.pending_count(), 0);
    }

    #[test]
    fn prop_unknown_correlation_id_fails_closed(
        ids in prop::collection::vec(1u64..1000, 1..12),
        stray_offset in 0u64..1000,
    ) {
        use tdt::relay::transport::CorrelationRouter;
        let router = CorrelationRouter::new();
        let ids: Vec<u64> = ids
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let receivers: Vec<_> = ids
            .iter()
            .map(|&id| (id, router.register(id).unwrap()))
            .collect();
        // A reply for an id nobody registered: must error and must not
        // reach any waiting caller.
        let stray = 1000 + stray_offset;
        prop_assert!(router.complete(stray, reply_for(stray)).is_err());
        prop_assert_eq!(router.pending_count(), ids.len());
        for (_, rx) in &receivers {
            prop_assert!(rx.try_recv().is_err(), "stray reply leaked to a caller");
        }
        // The legitimate waiters are unaffected.
        for (id, rx) in receivers {
            router.complete(id, reply_for(id)).unwrap();
            prop_assert_eq!(rx.try_recv().unwrap().correlation_id, id);
        }
    }
}

// ---------------------------------------------------------------------------
// MVCC serializability: committed transactions correspond to a serial
// execution.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_mvcc_commits_equal_serial_execution(
        ops in prop::collection::vec((0u8..4, 0u8..3), 1..12),
    ) {
        use tdt::ledger::rwset::{TxRwSet, Version};
        use tdt::ledger::state::WorldState;
        // Each op is a read-modify-write of key k_i simulated against the
        // *initial* state (a same-block batch), then validated serially.
        let mut state = WorldState::new();
        let mut seed = TxRwSet::new();
        for key in 0..3 {
            seed.record_write("cc", &format!("k{key}"), Some(vec![0]));
        }
        state.apply(&seed, Version::new(0, 0));

        // Simulate every tx against the committed snapshot.
        let txs: Vec<TxRwSet> = ops
            .iter()
            .map(|(val, key)| {
                let key = format!("k{key}");
                let mut rw = TxRwSet::new();
                let version = state.version("cc", &key);
                rw.record_read("cc", &key, version);
                rw.record_write("cc", &key, Some(vec![val + 1]));
                rw
            })
            .collect();

        // Serial validation, Fabric style.
        let mut shadow = state.clone();
        let mut committed = Vec::new();
        for (i, rw) in txs.iter().enumerate() {
            if shadow.mvcc_check(rw) {
                shadow.apply(rw, Version::new(1, i as u64));
                committed.push(i);
            }
        }
        // Property 1: per key, at most one of the conflicting txs commits.
        for key in 0..3u8 {
            let key = format!("k{key}");
            let writers: Vec<usize> = committed
                .iter()
                .copied()
                .filter(|&i| txs[i].pending_write("cc", &key).is_some())
                .collect();
            prop_assert!(writers.len() <= 1, "key {} written by {:?}", key, writers);
        }
        // Property 2: final state equals applying exactly the committed txs
        // serially to the initial state.
        let mut replay = state.clone();
        for &i in &committed {
            replay.apply(&txs[i], Version::new(1, i as u64));
        }
        for key in 0..3u8 {
            let key = format!("k{key}");
            prop_assert_eq!(
                shadow.get("cc", &key).map(|v| v.value.clone()),
                replay.get("cc", &key).map(|v| v.value.clone())
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Durable ledger: WAL framing and corruption recovery. For *any* chain and
// *any* byte-level damage (truncation at an arbitrary offset, an arbitrary
// bit flip), a scan never panics and always yields a verified prefix of
// what was written — never reordered, never invented, never half-decoded.
// ---------------------------------------------------------------------------

fn arb_chain() -> impl Strategy<Value = Vec<tdt::ledger::block::Block>> {
    use tdt::ledger::block::Block;
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..4),
        1..8,
    )
    .prop_map(|blocks_txs| {
        let mut chain: Vec<Block> = Vec::with_capacity(blocks_txs.len());
        for txs in blocks_txs {
            let block = match chain.last() {
                None => Block::genesis(txs),
                Some(prev) => Block::next(&prev.header, txs),
            };
            chain.push(block);
        }
        chain
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_wal_block_roundtrip(chain in arb_chain()) {
        use tdt::ledger::storage::codec::{decode_block, encode_block};
        for block in &chain {
            let decoded = decode_block(&encode_block(block)).expect("roundtrip");
            prop_assert_eq!(&decoded, block);
        }
    }

    #[test]
    fn prop_wal_scan_returns_exactly_what_was_appended(chain in arb_chain()) {
        use std::sync::Arc;
        use tdt::ledger::storage::vfs::MemVfs;
        use tdt::ledger::storage::wal::Wal;
        let vfs = Arc::new(MemVfs::new());
        let wal = Wal::new(vfs.as_ref(), "wal.log");
        for block in &chain {
            wal.append_block(block).expect("append");
        }
        let scan = wal.scan().expect("scan");
        prop_assert!(scan.tail.is_none());
        prop_assert_eq!(&scan.blocks, &chain);
    }

    #[test]
    fn prop_wal_truncation_yields_a_prefix(
        chain in arb_chain(),
        cut_seed in any::<u64>(),
    ) {
        use std::sync::Arc;
        use tdt::ledger::storage::vfs::{MemVfs, Vfs};
        use tdt::ledger::storage::wal::Wal;
        let vfs = Arc::new(MemVfs::new());
        let wal = Wal::new(vfs.as_ref(), "wal.log");
        for block in &chain {
            wal.append_block(block).expect("append");
        }
        let len = vfs.len("wal.log").expect("len");
        let cut = cut_seed % (len + 1);
        vfs.truncate("wal.log", cut).expect("truncate");
        let scan = wal.scan().expect("scan never fails on damage");
        // Whatever survived is a verified prefix: same blocks, in order,
        // from the start.
        prop_assert!(scan.blocks.len() <= chain.len());
        prop_assert_eq!(&scan.blocks, &chain[..scan.blocks.len()]);
        prop_assert!(scan.valid_len <= cut);
        if cut < len {
            prop_assert!(scan.blocks.len() < chain.len());
        }
        // And physically truncating the damage leaves a clean WAL.
        wal.truncate_to(scan.valid_len).expect("truncate_to");
        let rescan = wal.scan().expect("rescan");
        prop_assert!(rescan.tail.is_none());
        prop_assert_eq!(&rescan.blocks, &scan.blocks);
    }

    #[test]
    fn prop_wal_bit_flip_yields_a_prefix(
        chain in arb_chain(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        use std::sync::Arc;
        use tdt::ledger::storage::vfs::MemVfs;
        use tdt::ledger::storage::wal::Wal;
        let vfs = Arc::new(MemVfs::new());
        let wal = Wal::new(vfs.as_ref(), "wal.log");
        for block in &chain {
            wal.append_block(block).expect("append");
        }
        let len = vfs.durable_len("wal.log") as u64;
        let pos = (pos_seed % len) as usize;
        vfs.corrupt("wal.log", pos, 1 << bit).expect("corrupt");
        let scan = wal.scan().expect("scan never fails on damage");
        // A single flipped bit can only shorten the trusted prefix (CRC-32
        // detects all 1-bit errors); it can never corrupt a decoded block
        // or reorder the chain.
        prop_assert!(scan.blocks.len() < chain.len() || scan.tail.is_none());
        prop_assert_eq!(&scan.blocks, &chain[..scan.blocks.len()]);
        prop_assert!(scan.tail.is_some(), "a flipped bit must be detected");
    }
}
