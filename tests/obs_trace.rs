//! Observability under chaos (ISSUE 5): a seeded fault schedule must not
//! fracture the span tree.
//!
//! Properties asserted with the pinned seed 42:
//! * every query produces exactly one coherent span tree — every recorded
//!   span's parent is another span of the same trace (or the test root),
//!   even when the chaos layer duplicates, reorders or delays envelopes
//!   and the retry layer re-sends them;
//! * hedged losers are *discarded*, not double-counted: the group's
//!   `discarded_replies` counter and the `hedge.discarded` spans agree,
//!   and `hedge.fired` events agree with the `hedges` counter;
//! * a slow event subscriber loses notices (counted in `events_dropped`)
//!   instead of blocking the pushing source.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tdt::obs::span::{self as obs_span, SpanRecord};
use tdt::obs::TraceContext;
use tdt::relay::breaker::BreakerConfig;
use tdt::relay::chaos::{ChaosConfig, ChaosTransport};
use tdt::relay::discovery::{DiscoveryService, StaticRegistry};
use tdt::relay::driver::EchoDriver;
use tdt::relay::events::{EventSink, EventSource};
use tdt::relay::redundancy::{GroupConfig, RelayGroup};
use tdt::relay::retry::{RetryPolicy, RetryingTransport};
use tdt::relay::service::{RelayService, EVENT_QUEUE_CAPACITY};
use tdt::relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt::relay::RelayError;
use tdt::wire::messages::{AuthInfo, EventNotice, EventSubscribeRequest, NetworkAddress, Query};

const SEED: u64 = 42;

/// A hedged relay group whose members retry through seeded chaos
/// transports toward one healthy source relay.
struct ChaosGroup {
    group: RelayGroup,
    chaos: Vec<Arc<ChaosTransport>>,
    _stl: Arc<RelayService>,
}

fn build_group(members: usize, seed: u64) -> ChaosGroup {
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    stl.register_driver(Arc::new(EchoDriver::new("stl")));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    let chaos_config = ChaosConfig {
        drop_prob: 0.15,
        delay_prob: 0.3,
        delay: Duration::from_millis(5),
        delay_jitter: Duration::from_millis(1),
        duplicate_prob: 0.15,
        reorder_prob: 0.1,
        reorder_delay: Duration::from_millis(1),
        ..ChaosConfig::default()
    };
    let mut chaos = Vec::new();
    let mut relays = Vec::new();
    for i in 0..members {
        let transport = Arc::new(
            ChaosTransport::new(
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
                seed.wrapping_add(i as u64),
                chaos_config.clone(),
            )
            .with_local_name(format!("swt-relay-{i}")),
        );
        chaos.push(Arc::clone(&transport));
        let retrying = Arc::new(RetryingTransport::new(
            Arc::clone(&transport) as Arc<dyn RelayTransport>,
            RetryPolicy::without_delay(2),
        ));
        relays.push(Arc::new(RelayService::new(
            format!("swt-relay-{i}"),
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            retrying as Arc<dyn RelayTransport>,
        )));
    }
    let config = GroupConfig {
        hedge_after: Some(Duration::from_millis(1)),
        deadline: None,
        breaker: BreakerConfig {
            consecutive_failures: 1_000_000, // never trip: every member keeps sending
            ..BreakerConfig::default()
        },
    };
    let group = RelayGroup::with_config(relays, config).expect("non-empty group");
    ChaosGroup {
        group,
        chaos,
        _stl: stl,
    }
}

fn query(i: usize) -> Query {
    Query {
        request_id: format!("obs-{i}"),
        address: NetworkAddress::new("stl", "l", "c", "f").with_arg(format!("p{i}").into_bytes()),
        ..Default::default()
    }
}

/// Waits until late hedge losers stop mutating the group counters, so
/// counter/span comparisons are race-free.
fn settle(group: &RelayGroup) {
    let mut last = (group.hedges(), group.discarded_replies());
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        let now = (group.hedges(), group.discarded_replies());
        if now == last {
            return;
        }
        last = now;
    }
}

fn events_named<'a>(
    spans: &'a [SpanRecord],
    event: &str,
) -> impl Iterator<Item = &'a SpanRecord> + 'a {
    let event = event.to_owned();
    spans
        .iter()
        .filter(move |s| s.events.iter().any(|e| e.name == event))
}

#[test]
fn chaos_faults_never_fracture_the_span_tree() {
    let g = build_group(3, SEED);
    let mut traces: Vec<(u64, u64, u64)> = Vec::new();
    for i in 0..30 {
        let root = TraceContext::root();
        traces.push((root.trace_hi, root.trace_lo, root.span_id));
        let _guard = root.install();
        let (mut span, _span_guard) = obs_span::enter("test.query");
        let _ = g.group.relay_query(&query(i));
        span.event("test.done");
    }
    settle(&g.group);

    let faults: u64 = g.chaos.iter().map(|c| c.stats().total()).sum();
    assert!(faults > 0, "chaos must actually fire (seed {SEED})");

    let mut all_spans: Vec<SpanRecord> = Vec::new();
    let mut all_ids: HashSet<u64> = HashSet::new();
    for &(hi, lo, root_id) in &traces {
        let spans = obs_span::spans_for_trace(hi, lo);
        assert!(
            !spans.is_empty(),
            "trace {hi:032x}{lo:016x} recorded nothing"
        );
        // Span ids are unique: a duplicated envelope may be *handled*
        // twice (two spans), but no span lands in the ring twice.
        let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids.len(), spans.len(), "duplicate span ids in one trace");
        // No orphans: every parent is the test root or another recorded
        // span of the same trace — one connected tree per query.
        for span in &spans {
            assert!(
                span.parent_span_id == root_id || ids.contains(&span.parent_span_id),
                "orphan span {:?} (parent {:x} unknown) in trace {hi:032x}{lo:016x}",
                span.name,
                span.parent_span_id,
            );
        }
        // Traces never share spans.
        for id in &ids {
            assert!(all_ids.insert(*id), "span id {id:x} appears in two traces");
        }
        all_spans.extend(spans);
    }

    // The fault/recovery machinery actually exercised the tree: chaos
    // spans and retry events are present and belong to the trees above.
    assert!(
        all_spans.iter().any(|s| s.name == "chaos.fault"),
        "no chaos.fault spans recorded"
    );
    assert!(
        events_named(&all_spans, "retry.attempt").next().is_some(),
        "no retry.attempt events recorded"
    );

    // Hedged losers: fired hedges and discarded replies match their spans
    // one-to-one — nothing double-counted, nothing lost.
    let hedge_events = events_named(&all_spans, "hedge.fired").fold(0u64, |n, s| {
        n + s.events.iter().filter(|e| e.name == "hedge.fired").count() as u64
    });
    assert!(g.group.hedges() > 0, "hedging never fired (seed {SEED})");
    assert_eq!(
        hedge_events,
        g.group.hedges(),
        "hedge.fired events vs counter"
    );
    let discarded_spans = all_spans
        .iter()
        .filter(|s| s.name == "hedge.discarded")
        .count() as u64;
    assert_eq!(
        discarded_spans,
        g.group.discarded_replies(),
        "hedge losers must be discarded exactly once each"
    );
}

/// Captures the sink handed to the source relay so the test can push
/// notices synchronously.
struct CapturingSource {
    sink: Mutex<Option<(String, EventSink)>>,
}

impl EventSource for CapturingSource {
    fn network_id(&self) -> &str {
        "stl"
    }

    fn start(&self, request: &EventSubscribeRequest, sink: EventSink) -> Result<(), RelayError> {
        *self.sink.lock().unwrap() = Some((request.subscription_id.clone(), sink));
        Ok(())
    }
}

#[test]
fn slow_event_subscriber_drops_notices_instead_of_blocking_the_source() {
    let registry = Arc::new(StaticRegistry::new());
    let bus = Arc::new(InProcessBus::new());
    registry.register("stl", "inproc:stl-relay");
    registry.register("swt", "inproc:swt-relay");
    let stl = Arc::new(RelayService::new(
        "stl-relay",
        "stl",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    let source = Arc::new(CapturingSource {
        sink: Mutex::new(None),
    });
    stl.register_event_source(Arc::clone(&source) as Arc<dyn EventSource>);
    let swt = Arc::new(RelayService::new(
        "swt-relay",
        "swt",
        Arc::clone(&registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&bus) as Arc<dyn RelayTransport>,
    ));
    bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
    bus.register("swt-relay", Arc::clone(&swt) as Arc<dyn EnvelopeHandler>);

    let auth = AuthInfo {
        network_id: "swt".into(),
        ..Default::default()
    };
    let rx = swt
        .subscribe_remote_events("stl", auth)
        .expect("subscription");
    let (subscription_id, sink) = source.sink.lock().unwrap().take().expect("sink captured");

    // Push far more notices than the queue holds, never draining. The
    // source must sail through: full queues Ack-and-drop, they do not
    // block or kill the subscription.
    let pushes = EVENT_QUEUE_CAPACITY + 100;
    let started = Instant::now();
    for n in 0..pushes {
        let notice = EventNotice {
            subscription_id: subscription_id.clone(),
            network_id: "stl".into(),
            block_number: n as u64,
            ..Default::default()
        };
        sink(notice).expect("push must succeed even against a full queue");
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "pushing against a lagging subscriber must not block"
    );

    let stats = swt.stats().snapshot();
    assert_eq!(stats.events_delivered, EVENT_QUEUE_CAPACITY as u64);
    assert_eq!(stats.events_dropped, 100);
    assert_eq!(
        swt.lagging_subscriptions(),
        1,
        "full queue counts as lagging"
    );
    assert_eq!(swt.subscription_count(), 1, "subscription must stay live");

    // The subscriber drains what fit; the overflow is gone, not deferred.
    let mut received = 0;
    while rx.try_recv().is_ok() {
        received += 1;
    }
    assert_eq!(received, EVENT_QUEUE_CAPACITY);
    assert_eq!(swt.lagging_subscriptions(), 0);

    // Delivery resumes after the subscriber catches up.
    let notice = EventNotice {
        subscription_id,
        network_id: "stl".into(),
        block_number: 9_999,
        ..Default::default()
    };
    sink(notice).expect("push after drain");
    assert_eq!(
        swt.stats().snapshot().events_delivered,
        EVENT_QUEUE_CAPACITY as u64 + 1
    );
}
