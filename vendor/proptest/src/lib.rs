//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest it uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, [`arbitrary::any`],
//! [`collection::vec`], regex-subset string strategies for `&str`
//! patterns like `"[a-z0-9-]{1,20}"`, integer-range strategies, tuple
//! strategies, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the case number, and the RNG is seeded deterministically from
//! the test name so failures reproduce across runs.

pub mod test_runner {
    //! Deterministic RNG, run configuration, and case-level errors.

    /// Error raised inside a property body: either a failed assertion or
    /// a rejected (assumed-away) case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection error.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name, so
    /// each property sees a distinct but reproducible input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from `name` (FNV-1a).
        pub fn new(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 32 uniformly random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `usize` in `[start, end)`.
        pub fn usize_in(&mut self, start: usize, end: usize) -> usize {
            debug_assert!(start < end);
            start + self.below((end - start) as u64) as usize
        }

        /// Fills `dest` with random bytes.
        pub fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Builds recursive structures: at each of `depth` levels the
        /// result is either the shallower strategy or one round of
        /// `recurse` applied to it, so generated values mix leaves and
        /// nested nodes up to `depth` deep. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                strat = union(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// Cloneable type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy { .. }")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly picks one of several strategies per generated value.
    /// Built by the `prop_oneof!` macro.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_in(0, self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Builds a [`Union`] over `options`; used by `prop_oneof!`.
    pub fn union<T>(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical random generator.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }

    impl<A: Arbitrary> Arbitrary for Vec<A> {
        fn arbitrary(rng: &mut TestRng) -> Vec<A> {
            let len = rng.usize_in(0, 64);
            (0..len).map(|_| A::arbitrary(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! `&str` regex-subset strategies.
    //!
    //! Supports patterns of the form used in this workspace: sequences
    //! of character classes (`[a-z]`, `[A-Za-z0-9 -]`) or literal
    //! characters, each optionally followed by `{n}` or `{m,n}`
    //! repetition. Anything else panics at generation time.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '-' => match (prev, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        for v in (lo as u32 + 1)..=(hi as u32) {
                            alphabet.push(char::from_u32(v).expect("bad class range"));
                        }
                        prev = None;
                    }
                    // Leading or trailing '-' is a literal dash.
                    _ => {
                        alphabet.push('-');
                        prev = Some('-');
                    }
                },
                c => {
                    alphabet.push(c);
                    prev = Some(c);
                }
            }
        }
        assert!(!alphabet.is_empty(), "empty character class");
        alphabet
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        loop {
            match chars.next().expect("unterminated repetition") {
                '}' => break,
                c => spec.push(c),
            }
        }
        match spec.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad repetition bound"),
                hi.trim().parse().expect("bad repetition bound"),
            ),
            None => {
                let n = spec.trim().parse().expect("bad repetition count");
                (n, n)
            }
        }
    }

    /// Generates one string matching the supported regex subset.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let alphabet = match c {
                '[' => parse_class(&mut chars),
                '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex construct {c:?} in {pattern:?}")
                }
                '\\' => vec![chars.next().expect("dangling escape")],
                literal => vec![literal],
            };
            let (lo, hi) = parse_repeat(&mut chars);
            let count = if lo == hi {
                lo
            } else {
                rng.usize_in(lo, hi + 1)
            };
            for _ in 0..count {
                out.push(alphabet[rng.usize_in(0, alphabet.len())]);
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_matching(self, rng)
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works from the
/// prelude, as in real proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The glob-import surface: traits, `any`, config, and macros.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run a property over many random
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::new(concat!(
                module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<
                    (), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, message);
                    }
                }
            }
        }
    )*};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniformly selects among several strategies producing the same value
/// type. Weighted arms are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generation() {
        let mut rng = TestRng::new("regex");
        for _ in 0..200 {
            let s = crate::string::generate_matching("[a-e]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));

            let t = crate::string::generate_matching("[A-Za-z0-9 -]{0,6}", &mut rng);
            assert!(t.len() <= 6);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '-'));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new("same");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new("same");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, n in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(n < 5);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in prop::collection::vec(any::<u8>(), 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..4).prop_map(|x| x as u32),
                100u32..104,
            ],
        ) {
            prop_assert!(v < 4 || (100..104).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(String),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = "[a-c]{1,2}"
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new("tree");
        let mut seen_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            seen_node |= matches!(t, Tree::Node(_));
        }
        assert!(seen_node, "recursion should sometimes produce nodes");
    }
}
