//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates wire/crypto types with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers, but no
//! code path in this repository ever invokes serde serialization (the
//! protocol uses its own varint codec in `tdt-wire`). The derives here
//! therefore expand to nothing: the attribute parses and the names
//! resolve, and no trait impls are emitted.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item (and `#[serde(...)]`
/// attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item (and `#[serde(...)]`
/// attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
