//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of crossbeam it uses: multi-producer multi-consumer
//! channels (`crossbeam::channel`) with `unbounded`/`bounded`
//! constructors, cloneable senders AND receivers, blocking/timed/non-
//! blocking receives, and disconnect semantics. The implementation is a
//! `Mutex<VecDeque>` + two `Condvar`s — not lock-free like the real
//! crossbeam, but semantically equivalent for this workspace's traffic.

pub mod channel;
