//! MPMC channels with crossbeam-compatible surface.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    capacity: Option<usize>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or all senders disconnect.
    recv_ready: Condvar,
    /// Signalled when space frees up or all receivers disconnect.
    send_ready: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is full; the message is handed back.
    Full(T),
    /// Every receiver has been dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC: each message is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel that holds at most `cap` in-flight messages; sends
/// block while the channel is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            capacity,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.recv_ready.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.send_ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] (handing `value` back) when every receiver
    /// has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = state
                .capacity
                .map(|cap| state.queue.len() >= cap)
                .unwrap_or(false);
            if !full {
                state.queue.push_back(value);
                drop(state);
                self.shared.recv_ready.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .send_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sends `value` without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone. Both
    /// hand `value` back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        let full = state
            .capacity
            .map(|cap| state.queue.len() >= cap)
            .unwrap_or(false);
        if full {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.recv_ready.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a bounded channel is at capacity (always false for
    /// unbounded channels).
    pub fn is_full(&self) -> bool {
        let state = self.shared.lock();
        state
            .capacity
            .map(|cap| state.queue.len() >= cap)
            .unwrap_or(false)
    }
}

impl<T> Receiver<T> {
    fn pop(state: &mut State<T>, shared: &Shared<T>) -> T {
        let value = state.queue.pop_front().expect("queue checked non-empty");
        if state.capacity.is_some() {
            shared.send_ready.notify_one();
        }
        value
    }

    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if !state.queue.is_empty() {
                return Ok(Self::pop(&mut state, &self.shared));
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .recv_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is buffered,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if !state.queue.is_empty() {
            return Ok(Self::pop(&mut state, &self.shared));
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives a message, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the timeout elapses,
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if !state.queue.is_empty() {
                return Ok(Self::pop(&mut state, &self.shared));
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .recv_ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator yielding messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages (ends on disconnect).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator (ends on disconnect).
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }
}
