//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex`, `RwLock`, and `Condvar` with parking_lot's
//! non-poisoning API, implemented as thin wrappers over `std::sync`.
//! Poisoned locks are recovered transparently (`PoisonError::into_inner`),
//! matching parking_lot's behavior of not propagating panics through locks.

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, re-acquiring the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
