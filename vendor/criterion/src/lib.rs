//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of criterion it uses: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `BatchSize`, and
//! `Bencher::{iter, iter_batched}`. Measurement is a simple calibrated
//! wall-clock loop reporting the median of a handful of samples — no
//! statistical analysis, plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample. Iteration counts
/// are calibrated so a sample takes at least this long (one iteration
/// minimum), keeping slow end-to-end benches from ballooning.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// Upper bound on samples per benchmark, regardless of `sample_size`.
const MAX_SAMPLES: usize = 15;

/// Identifier for a parameterized benchmark, rendered `function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; accepted for API compatibility
/// (every variant re-runs setup per iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input for every routine invocation.
    PerIteration,
    /// Small batches in real criterion; per-iteration here.
    SmallInput,
    /// Large batches in real criterion; per-iteration here.
    LargeInput,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the calibrated number of iterations, timing
    /// the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `setup` + `routine` per iteration, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn format_time(per_iter: Duration) -> String {
    let nanos = per_iter.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn format_rate(throughput: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
    match throughput {
        Throughput::Bytes(bytes) => {
            format!("  ({:.2} MiB/s)", bytes as f64 / secs / (1024.0 * 1024.0))
        }
        Throughput::Elements(elements) => {
            format!("  ({:.0} elem/s)", elements as f64 / secs)
        }
    }
}

/// Runs one benchmark closure: calibrate the iteration count, take
/// several samples, report the median per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibration: grow the iteration count until one sample is long
    // enough to time meaningfully.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let samples = sample_size.clamp(1, MAX_SAMPLES);
    let mut per_iter: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            bencher.elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];

    let rate = throughput
        .map(|t| format_rate(t, median))
        .unwrap_or_default();
    println!(
        "{label:<52} {:>12}/iter{rate}  [{} samples x {iters} iters]",
        format_time(median),
        per_iter.len(),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Annotates subsequent benchmarks with a throughput for rate
    /// reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, self.throughput, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, self.throughput, |bencher| {
            routine(bencher, input);
        });
        self
    }

    /// Ends the group (output is already printed incrementally).
    pub fn finish(self) {}
}

/// Benchmark driver with the same shape as criterion's.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Accepted for API compatibility; command-line flags are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, 10, None, routine);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut criterion = Criterion::new();
        let mut group = criterion.benchmark_group("unit");
        group.sample_size(2);
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut criterion = Criterion::new();
        let mut group = criterion.benchmark_group("unit");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("batched", 3), &3u64, |b, &n| {
            b.iter_batched(
                || vec![0u8; n as usize],
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_time(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_time(Duration::from_millis(7)), "7.00 ms");
    }
}
