//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the `rand 0.8` API it actually uses: the
//! [`RngCore`] trait, the opaque [`Error`] type, and [`thread_rng`].
//!
//! `thread_rng` returns a thread-local xoshiro256++ generator seeded from
//! the system clock, a process-global counter, and the thread's id, which
//! is plenty for nonces and key generation in tests and benches. It is NOT
//! a cryptographically reviewed generator; production deployments would
//! swap the real `rand`/`getrandom` back in.

use std::cell::RefCell;
use std::fmt;

/// Error type mirroring `rand::Error` (never produced by this stub).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        R::try_fill_bytes(self, dest)
    }
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ThreadRng {
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let tid = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish()
        };
        let mut seed = now
            ^ tid.rotate_left(32)
            ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed)
            ^ (std::process::id() as u64).rotate_left(48);
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        ThreadRng { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<ThreadRng> = RefCell::new(ThreadRng::from_entropy());
}

/// Returns a fresh handle to this thread's generator (mirrors
/// `rand::thread_rng`, minus the shared-state optimization: each call
/// clones the thread-local state forward, re-mixing a counter so separate
/// handles do not repeat each other).
pub fn thread_rng() -> ThreadRng {
    THREAD_RNG.with(|cell| {
        let mut rng = cell.borrow_mut();
        // Advance the stored state so the next handle differs.
        let fork = [rng.next(), rng.next(), rng.next(), rng.next()];
        ThreadRng { s: fork }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = thread_rng();
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn handles_do_not_repeat() {
        let a = thread_rng().next_u64();
        let b = thread_rng().next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn trait_object_via_mut_ref() {
        fn take<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = thread_rng();
        take(&mut rng);
        take(&mut &mut rng);
    }
}
