//! Offline stand-in for the `serde` crate.
//!
//! This workspace derives `Serialize`/`Deserialize` on wire types but
//! never exercises serde serialization (all encoding goes through the
//! custom varint codec in `tdt-wire`). The stand-in re-exports no-op
//! derive macros so the annotations compile; there are no runtime
//! traits because nothing in the workspace bounds on them.

pub use serde_derive::{Deserialize, Serialize};
