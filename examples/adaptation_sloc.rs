//! Regenerates the paper's adaptation-effort measurements (§5, "Ease of
//! Use and Adaptation"): counts the interop-specific source lines in the
//! source chaincode, destination chaincode, and destination application —
//! every such line is tagged `// interop-adaptation` in this codebase —
//! and compares them with the paper's reported figures.
//!
//! Run with: `cargo run --example adaptation_sloc`

use std::path::Path;

/// Counts tagged lines in `path`, optionally restricted to the region
/// between `start_anchor` and the next match-arm terminator, so functions
/// adapted later (extensions) don't inflate the paper-comparable number.
fn count_marked(path: &Path, region: Option<&str>) -> std::io::Result<usize> {
    let content = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = content.lines().collect();
    let (from, to) = match region {
        None => (0, lines.len()),
        Some(anchor) => {
            let start = lines.iter().position(|l| l.contains(anchor)).unwrap_or(0);
            // The region ends at the next top-level match arm (`"..." =>`).
            let end = lines[start + 1..]
                .iter()
                .position(|l| l.trim_start().starts_with('"') && l.contains("=>"))
                .map(|off| start + 1 + off)
                .unwrap_or(lines.len());
            (start, end)
        }
    };
    Ok(lines[from..to]
        .iter()
        .filter(|line| line.contains("// interop-adaptation"))
        .count())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let stl = root.join("crates/contracts/src/stl.rs");
    let swt = root.join("crates/contracts/src/swt.rs");
    let app = root.join("crates/apps/src/swt_app.rs");
    let cases = [
        (
            "source chaincode (STL GetBillOfLading only)",
            count_marked(&stl, Some("\"GetBillOfLading\" =>"))?,
            Some(35usize),
        ),
        (
            "destination chaincode (SWT UploadDispatchDocs)",
            count_marked(&swt, None)?,
            Some(20),
        ),
        (
            "destination application (SWT Seller Client)",
            count_marked(&app, None)?,
            Some(80),
        ),
        (
            "extension: STL RecordFinancingStatus (invocation target)",
            count_marked(&stl, Some("\"RecordFinancingStatus\" =>"))?,
            None,
        ),
    ];
    println!("adaptation effort: interop-specific SLOC (paper §5 vs this reproduction)\n");
    println!(
        "{:<58} | {:>10} | {:>8}",
        "component", "paper SLOC", "measured"
    );
    println!("{}", "-".repeat(84));
    for (name, measured, paper) in &cases {
        match paper {
            Some(p) => println!("{name:<58} | {p:>9}~ | {measured:>8}"),
            None => println!("{name:<58} | {:>10} | {measured:>8}", "n/a"),
        }
    }
    println!(
        "\nNotes: the paper counts Go/JavaScript lines; this reproduction counts Rust\n\
         lines tagged `// interop-adaptation`. The shape matches the paper's claim:\n\
         the source-side change is small and one-time (\"permitting access to\n\
         functions other than GetBillOfLading only requires the addition of a\n\
         policy rule\"), and the destination chaincode change is smaller still.\n\
         The destination *application* burden is far below the paper's ~80 SLOC\n\
         because the reusable InteropClient absorbs the relay-API calls,\n\
         decryption, and proof handling the paper's authors wrote by hand."
    );
    Ok(())
}
