//! Quickstart: trusted data transfer between two blockchain networks.
//!
//! Builds the paper's proof-of-concept deployment (Simplified TradeLens +
//! Simplified We.Trade), produces a bill of lading on STL, then fetches it
//! from SWT with a consensus-backed proof and commits it locally.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use tdt::contracts::stl::BillOfLading;
use tdt::contracts::swt::SwtChaincode;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed};
use tdt::interop::InteropClient;
use tdt::wire::codec::Message;
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble and initialize both networks: organizations, peers,
    //    chaincodes, exchanged configurations, verification policy, and
    //    exposure rule — the paper's initialization phase.
    println!("building STL (trade logistics) and SWT (trade finance) networks...");
    let testbed = stl_swt_testbed();
    println!(
        "  STL: {} peers across {:?}",
        testbed.stl.peers().count(),
        testbed.stl.org_ids()
    );
    println!(
        "  SWT: {} peers across {:?}",
        testbed.swt.peers().count(),
        testbed.swt.org_ids()
    );

    // 2. Produce a bill of lading on the source network.
    println!("\ndriving the STL shipment lifecycle for PO-1001...");
    issue_sample_bl(&testbed, "PO-1001");

    // 3. Open and issue the letter of credit on the destination network.
    let buyer = testbed.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                b"PO-1001".to_vec(),
                b"LC-1".to_vec(),
                b"buyer-gmbh".to_vec(),
                b"tulip-exports".to_vec(),
                b"100000".to_vec(),
            ],
        )?
        .into_committed()?;
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])?
        .into_committed()?;
    println!("letter of credit LC-1 issued on SWT");

    // 4. Cross-network query: the SWT Seller Client fetches the B/L with a
    //    proof satisfying "one peer from each STL organization",
    //    end-to-end encrypted so the relays never see the document.
    let client = InteropClient::new(testbed.swt_seller_gateway(), Arc::clone(&testbed.swt_relay));
    let address = NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec());
    let policy =
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality();
    let remote = client.query_remote(address, policy)?;
    let bl = BillOfLading::decode_from_slice(&remote.data)?;
    println!(
        "\nfetched B/L {} for {} ({}), proof carries {} attestations",
        bl.bl_id,
        bl.po_ref,
        bl.goods,
        remote.proof.attestations.len()
    );

    // 5. Submit the local transaction with data + proof; the SWT peers
    //    validate the proof against the recorded verification policy.
    let outcome = client.submit_with_remote_data(
        SwtChaincode::NAME,
        "UploadDispatchDocs",
        vec![b"PO-1001".to_vec()],
        &remote,
    )?;
    println!(
        "UploadDispatchDocs committed in SWT block {} with code {:?}",
        outcome.block_number, outcome.code
    );
    println!("\ntrusted data transfer complete: the B/L on the SWT ledger is consensus-backed.");
    Ok(())
}
