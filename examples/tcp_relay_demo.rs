//! Relays over real TCP sockets with a file-based discovery registry —
//! the deployment shape of the paper's proof-of-concept (which plugged "a
//! local file-based registry" into the SWT relay).
//!
//! Run with: `cargo run --example tcp_relay_demo`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tdt::contracts::stl::BillOfLading;
use tdt::interop::driver::FabricDriver;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed};
use tdt::interop::InteropClient;
use tdt::obs::export::parse_exposition;
use tdt::obs::ObsHandle;
use tdt::relay::discovery::{DiscoveryService, FileRegistry};
use tdt::relay::service::RelayService;
use tdt::relay::telemetry::register_relay;
use tdt::relay::transport::{
    EnvelopeHandler, PooledTcpTransport, Readiness, RelayTransport, TcpRelayServer,
    TcpServerConfig, TcpTransport,
};
use tdt::wire::codec::Message;
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building networks...");
    let testbed = stl_swt_testbed();
    issue_sample_bl(&testbed, "PO-1001");

    // Source-side relay served over TCP.
    let registry_path =
        std::env::temp_dir().join(format!("tdt-registry-{}.txt", std::process::id()));
    // An SLO on the serving relay: 50 ms latency objective, with burn-rate
    // breach detection feeding the flight recorder.
    let slo = Arc::new(tdt::obs::Slo::new(tdt::obs::SloConfig::new(
        "stl-relay-tcp",
        std::time::Duration::from_millis(50),
    )));
    let stl_relay = Arc::new(
        RelayService::new(
            "stl-relay-tcp",
            "stl",
            Arc::new(FileRegistry::new(&registry_path)) as Arc<dyn DiscoveryService>,
            Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
        )
        .with_slo(Arc::clone(&slo)),
    );
    stl_relay.register_driver(Arc::new(FabricDriver::new(Arc::clone(&testbed.stl))));
    // Unified observability: the server exposes the relay's counters,
    // gauges, the latency histogram, and the SLO burn gauges on a
    // loopback admin endpoint, plus health/readiness and the debug
    // surface (flight recorder, profiler).
    let obs = Arc::new(ObsHandle::new());
    register_relay(&obs, &stl_relay);
    obs.add_source(Arc::new(tdt::obs::slo::SloMetricSource::new(&slo)));
    let readiness = Arc::new(Readiness::recovered());
    let server = TcpRelayServer::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        TcpServerConfig {
            obs: Some(Arc::clone(&obs)),
            readiness: Some(Arc::clone(&readiness)),
            ..TcpServerConfig::default()
        },
    )?;
    println!("STL relay listening on {}", server.local_addr());

    // The destination relay discovers it through the file registry.
    FileRegistry::write_entries(&registry_path, [("stl", server.endpoint().as_str())])?;
    println!("registry written to {}", registry_path.display());
    let swt_relay = Arc::new(RelayService::new(
        "swt-relay-tcp",
        "swt",
        Arc::new(FileRegistry::new(&registry_path)) as Arc<dyn DiscoveryService>,
        Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
    ));

    // A second destination relay rides the pooled, multiplexed transport:
    // one warm connection instead of a TCP handshake per query, with the
    // pool's health surfaced through the relay's stats.
    let pooled_transport = Arc::new(PooledTcpTransport::new());
    let swt_relay_pooled = Arc::new(
        RelayService::new(
            "swt-relay-tcp-pooled",
            "swt",
            Arc::new(FileRegistry::new(&registry_path)) as Arc<dyn DiscoveryService>,
            Arc::clone(&pooled_transport) as Arc<dyn RelayTransport>,
        )
        .with_pool_stats(pooled_transport.stats()),
    );

    // The cross-network query now travels over a real socket.
    let client = InteropClient::new(testbed.swt_seller_gateway(), swt_relay);
    let address = NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec());
    let policy =
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality();
    let remote = client.query_remote(address.clone(), policy.clone())?;
    let bl = BillOfLading::decode_from_slice(&remote.data)?;
    println!(
        "\nfetched B/L {} over TCP with {} attestations",
        bl.bl_id,
        remote.proof.attestations.len()
    );

    // Same queries through both transports, timed: connect-per-request
    // redials every time, the pool multiplexes one warm stream.
    const ROUNDS: usize = 10;
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        client.query_remote(address.clone(), policy.clone())?;
    }
    let per_request = start.elapsed();
    let pooled_client =
        InteropClient::new(testbed.swt_seller_gateway(), Arc::clone(&swt_relay_pooled));
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        pooled_client.query_remote(address.clone(), policy.clone())?;
    }
    let pooled_elapsed = start.elapsed();
    println!("\n{ROUNDS} queries, connect-per-request: {per_request:?}");
    println!("{ROUNDS} queries, pooled/multiplexed:  {pooled_elapsed:?}");
    let stats = swt_relay_pooled.stats();
    println!(
        "pool stats: {} dialed, {} reused, {} open, {} in flight, {} orphaned",
        stats.pool_connections_dialed(),
        stats.pool_connections_reused(),
        stats.pool_connections_open(),
        stats.pool_requests_in_flight(),
        stats.pool_orphaned_replies(),
    );
    println!(
        "server: {} live connection(s), {} refused",
        server.connection_count(),
        server.refused_connections()
    );

    // Scrape the admin endpoint exactly like a Prometheus agent would and
    // check the exposition parses.
    let admin = server
        .admin_endpoint()
        .ok_or("admin endpoint not configured")?;
    let host = admin.trim_start_matches("http://");
    let mut stream = TcpStream::connect(host)?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let inventory = parse_exposition(body).map_err(|e| format!("bad exposition: {e}"))?;
    println!(
        "\nscraped {admin}/metrics: {} metrics, all parse",
        inventory.len()
    );
    for line in body.lines().filter(|l| {
        l.starts_with("tdt_relay_served_total")
            || l.starts_with("tdt_relay_forwarded_total")
            || l.starts_with("tdt_relay_latency_ns_count")
            || l.starts_with("tdt_relay_latency_ns_max")
            || l.starts_with("tdt_slo_")
    }) {
        println!("  {line}");
    }

    // The rest of the admin surface: liveness, readiness, a profiler
    // capture, and a flight-recorder dump of everything this demo did.
    let scrape = |path: &str| -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        let mut stream = TcpStream::connect(host)?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
        )?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let split = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or("no header/body split")?;
        Ok(raw[split + 4..].to_vec())
    };
    let health = String::from_utf8(scrape("/healthz")?)?;
    let ready = String::from_utf8(scrape("/readyz")?)?;
    println!("healthz: {} readyz: {}", health.trim(), ready.trim());
    let folded = String::from_utf8(scrape("/debug/profile?seconds=0.2&hz=97")?)?;
    let profile_rows =
        tdt::obs::profile::parse_folded(&folded).map_err(|e| format!("bad folded stacks: {e}"))?;
    println!(
        "profiler: {} folded path(s) in a 0.2s capture",
        profile_rows.len()
    );
    let dump = tdt::obs::flight::decode_dump(&scrape("/debug/flightrec")?)
        .map_err(|e| format!("bad flight dump: {e}"))?;
    println!(
        "flight recorder: {} event(s), dump reason {:?}",
        dump.records.len(),
        dump.reason
    );
    std::fs::remove_file(&registry_path).ok();
    server.shutdown();
    println!("done.");
    Ok(())
}
