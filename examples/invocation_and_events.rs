//! The paper's future-work features (§5/§7), working end to end:
//! a cross-network *invocation* (ledger update with a commitment receipt)
//! and a cross-network *event subscription* with peer-attested notices.
//!
//! Run with: `cargo run --example invocation_and_events`

use std::sync::Arc;
use std::time::Duration;
use tdt::interop::events::{verify_event_notice, FabricEventSource};
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed};
use tdt::interop::InteropClient;
use tdt::wire::codec::Message;
use tdt::wire::messages::{AuthInfo, NetworkAddress, ResultMetadata, VerificationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the STL/SWT testbed...");
    let t = stl_swt_testbed();

    // --- Cross-network events -------------------------------------------
    println!("\nsubscribing SWT to STL block events through the relays...");
    t.stl_relay
        .register_event_source(Arc::new(FabricEventSource::new(Arc::clone(&t.stl))));
    let auth = AuthInfo {
        network_id: "swt".into(),
        organization_id: "seller-bank-org".into(),
        certificate: tdt::wire::messages::encode_certificate(t.swt_seller_client.certificate()),
        signature: Vec::new(),
    };
    let events = t.swt_relay.subscribe_remote_events("stl", auth)?;

    println!("driving STL shipment activity for PO-1001...");
    issue_sample_bl(&t, "PO-1001");
    let stl_config = t.stl.network_config();
    for _ in 0..4 {
        let notice = events.recv_timeout(Duration::from_secs(5))?;
        verify_event_notice(&notice, &stl_config)?;
        println!(
            "  event: STL block {} ({} tx, attested by a recorded STL peer)",
            notice.block_number,
            notice.txids.len()
        );
    }

    // --- Cross-network invocation ---------------------------------------
    println!("\ngranting SWT's seller bank write access to RecordFinancingStatus...");
    tdt::interop::config::add_exposure_rule(
        &t.stl_seller_gateway(),
        "swt",
        "seller-bank-org",
        "TradeLensCC",
        "RecordFinancingStatus",
    )?;
    let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
    let address = NetworkAddress::new(
        "stl",
        "trade-channel",
        "TradeLensCC",
        "RecordFinancingStatus",
    )
    .with_arg(b"PO-1001".to_vec())
    .with_arg(b"lc-issued".to_vec());
    let policy =
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality();
    println!("invoking RecordFinancingStatus on STL from SWT...");
    let remote = client.invoke_remote(address, policy)?;
    println!(
        "  acknowledgement (decrypted): {:?}",
        String::from_utf8_lossy(&remote.data)
    );
    let receipt = ResultMetadata::decode_from_slice(&remote.proof.attestations[0].metadata)?;
    println!(
        "  receipt: tx {} committed in STL block {} ({} attestations)",
        receipt.txid,
        receipt.committed_block().unwrap(),
        remote.proof.attestations.len()
    );
    let status = t.stl_seller_gateway().query(
        "TradeLensCC",
        "GetFinancingStatus",
        vec![b"PO-1001".to_vec()],
    )?;
    println!(
        "  STL ledger now records financing status: {:?}",
        String::from_utf8_lossy(&status)
    );
    println!("\ndone: both future-work features of the paper ran end to end.");
    Ok(())
}
