//! Extensibility demonstration (paper §5): the same relay, wire protocol,
//! client, and destination-side Data Acceptance contract serving a
//! Corda-like notary network through a second driver.
//!
//! Run with: `cargo run --example notary_interop`

use std::sync::Arc;
use tdt::interop::corda_like::{CordaLikeDriver, NotaryNetwork};
use tdt::interop::setup::stl_swt_testbed;
use tdt::interop::InteropClient;
use tdt::relay::discovery::DiscoveryService;
use tdt::relay::service::RelayService;
use tdt::relay::transport::{EnvelopeHandler, RelayTransport};
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the SWT destination network...");
    let testbed = stl_swt_testbed();

    println!("standing up a Corda-like notary network with two notaries...");
    let notary_net = Arc::new(NotaryNetwork::new(
        "corda-net",
        &["notary-org-a", "notary-org-b"],
    ));
    notary_net.record_fact(
        "VaultCC",
        "GetFact",
        "ISIN-DE000",
        b"bond registered, face value 1,000,000".to_vec(),
    );
    notary_net.allow("swt", "seller-bank-org");

    // Reuse the existing relay bus + registry: only a driver is new.
    let relay = Arc::new(RelayService::new(
        "corda-relay",
        "corda-net",
        Arc::clone(&testbed.registry) as Arc<dyn DiscoveryService>,
        Arc::clone(&testbed.bus) as Arc<dyn RelayTransport>,
    ));
    relay.register_driver(Arc::new(CordaLikeDriver::new(Arc::clone(&notary_net))));
    testbed.bus.register(
        "corda-relay",
        Arc::clone(&relay) as Arc<dyn EnvelopeHandler>,
    );
    testbed.registry.register("corda-net", "inproc:corda-relay");

    // Record the notary network's config + a notary verification policy on
    // SWT — the exact admin path used for Fabric networks.
    let admin = testbed.swt_seller_gateway();
    let policy =
        VerificationPolicy::all_of_orgs(["notary-org-a", "notary-org-b"]).with_confidentiality();
    tdt::interop::config::record_foreign_config(&admin, &notary_net.network_config())?;
    tdt::interop::config::set_verification_policy(
        &admin,
        "corda-net",
        "VaultCC",
        "GetFact",
        &policy,
    )?;

    // Query the notary network through the unchanged client + relay.
    let client = InteropClient::new(testbed.swt_seller_gateway(), Arc::clone(&testbed.swt_relay));
    let address = NetworkAddress::new("corda-net", "vault", "VaultCC", "GetFact")
        .with_arg(b"ISIN-DE000".to_vec());
    let remote = client.query_remote(address, policy)?;
    println!(
        "\nfetched fact: {:?} with {} notary attestations",
        String::from_utf8_lossy(&remote.data),
        remote.proof.attestations.len()
    );

    // Validate the notary proof through SWT's CMDAC, unchanged.
    let verdict = admin
        .submit(
            "CMDAC",
            "ValidateProof",
            vec![
                b"corda-net".to_vec(),
                b"corda-net:vault:VaultCC:GetFact".to_vec(),
                remote.proof_bytes(),
            ],
        )?
        .into_committed()?;
    println!(
        "SWT's Data Acceptance contract verdict: {:?}",
        String::from_utf8_lossy(&verdict)
    );
    println!("\nno relay, wire, client, or CMDAC changes were needed — only a driver.");
    Ok(())
}
