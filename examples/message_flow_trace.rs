//! Regenerates the Fig. 2 / Fig. 4 protocol trace: the 10-step message
//! flow with per-step latency, run over the standard testbed.
//!
//! Run with: `cargo run --example message_flow_trace`

use std::sync::Arc;
use tdt::contracts::swt::SwtChaincode;
use tdt::interop::flow::harness_for_testbed;
use tdt::interop::setup::{issue_sample_bl, stl_swt_testbed};
use tdt::interop::InteropClient;
use tdt::obs::span as obs_span;
use tdt::obs::{waterfall, TraceContext};
use tdt::wire::messages::{NetworkAddress, VerificationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building the STL/SWT testbed...");
    let testbed = stl_swt_testbed();
    issue_sample_bl(&testbed, "PO-1001");
    let buyer = testbed.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                b"PO-1001".to_vec(),
                b"LC-1".to_vec(),
                b"buyer".to_vec(),
                b"seller".to_vec(),
                b"100000".to_vec(),
            ],
        )?
        .into_committed()?;
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])?
        .into_committed()?;

    println!("executing the instrumented Fig. 2 message flow...\n");
    let harness = harness_for_testbed(&testbed);
    let address = NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(b"PO-1001".to_vec());
    let policy =
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality();
    let traced = harness.run_traced(
        address.clone(),
        policy.clone(),
        SwtChaincode::NAME,
        "UploadDispatchDocs",
        vec![b"PO-1001".to_vec()],
    )?;
    print!("{}", traced.table());
    println!("\ntotal: {:.1?}", traced.total());
    println!("transaction outcome: {:?}", traced.outcome.code);
    println!(
        "proof: {} attestations, result {} bytes (encrypted in transit)",
        traced.remote.proof.attestations.len(),
        traced.remote.data.len()
    );

    // The same cross-network query again, this time observed end to end:
    // one trace context travels from the client across both relays into
    // the source network's contracts, and every hop lands in one tree.
    println!("\ndistributed trace of the cross-network query (real timestamps):\n");
    let client = InteropClient::new(testbed.swt_seller_gateway(), Arc::clone(&testbed.swt_relay));
    let root = TraceContext::root();
    {
        let _guard = root.install();
        client.query_remote(address, policy)?;
    }
    let spans = obs_span::spans_for_trace(root.trace_hi, root.trace_lo);
    print!("{}", waterfall::render(&spans));
    let hops: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    println!(
        "\n{} spans across {} distinct hops",
        spans.len(),
        hops.len()
    );
    if hops.len() < 6 {
        return Err(format!("expected >= 6 distinct hops, got {hops:?}").into());
    }
    Ok(())
}
