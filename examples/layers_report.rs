//! Regenerates Fig. 1: the layered interaction model for blockchain
//! applications, annotated with which component of this implementation
//! covers each layer.
//!
//! Run with: `cargo run --example layers_report`

fn main() {
    let layers: &[(&str, &str, &str)] = &[
        (
            "Governance",
            "network governing bodies decide exposure & acceptance policies",
            "interop::config admin transactions (ECC rules, CMDAC policies)",
        ),
        (
            "Semantic",
            "consensual data exposure and acceptance; proofs of consensus view",
            "tdt-contracts (ECC, CMDAC), interop::{plugin, proof, driver}",
        ),
        (
            "Syntactic",
            "network-neutral message schema (queries, policies, proofs)",
            "tdt-wire::messages (proto3-compatible codec)",
        ),
        (
            "Technical",
            "wire transports, framing, discovery",
            "tdt-relay::{transport, discovery}, tdt-wire::framing",
        ),
    ];
    println!("Fig. 1 — Layered Interaction Model for Blockchain Applications\n");
    println!(
        "{:<11} | {:<66} | implemented by",
        "layer", "responsibility"
    );
    println!("{}", "-".repeat(140));
    for (layer, responsibility, component) in layers {
        println!("{layer:<11} | {responsibility:<66} | {component}");
    }
    println!(
        "\nThe relay operates at the technical, syntactic, and semantic layers\n\
         (paper §3.2); the unique blockchain-interoperability challenge sits at\n\
         the semantic layer, where data validity is a *consensus* property."
    );
}
