//! The full Fig. 3 interoperation scenario with a step-by-step report,
//! plus the Table 1 acronym listing (pass `--acronyms`).
//!
//! Run with: `cargo run --example trade_finance_flow [-- --acronyms]`

use tdt::apps::scenario::{acronym_table, run_trade_scenario};
use tdt::interop::setup::stl_swt_testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--acronyms") {
        println!("Table 1: Common Use Case Acronyms\n");
        print!("{}", acronym_table());
        return Ok(());
    }
    println!("building the STL/SWT testbed...");
    let testbed = stl_swt_testbed();
    println!("running the Fig. 3 trade interoperation scenario...\n");
    let report = run_trade_scenario(&testbed, "PO-2026-0001")?;
    print!("{}", report.table());
    println!(
        "\nfinal L/C status for {}: {:?}",
        report.po_ref, report.final_lc_status
    );
    println!(
        "total scenario latency: {:.1?}",
        report
            .steps
            .iter()
            .map(|s| s.duration)
            .sum::<std::time::Duration>()
    );
    Ok(())
}
