#![warn(missing_docs)]

//! Facade crate for the Trusted Data Transfer stack.
//!
//! Re-exports every layer of the reproduction of *"Enabling Enterprise
//! Blockchain Interoperability with Trusted Data Transfer"* (Abebe et al.,
//! Middleware 2019) so examples and integration tests can depend on a single
//! crate. See `README.md` for the architecture overview and `DESIGN.md` for
//! the system inventory.

pub use interop;
pub use tdt_apps as apps;
pub use tdt_contracts as contracts;
pub use tdt_crypto as crypto;
pub use tdt_fabric as fabric;
pub use tdt_ledger as ledger;
pub use tdt_obs as obs;
pub use tdt_relay as relay;
pub use tdt_wire as wire;
