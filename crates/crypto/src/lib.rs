#![warn(missing_docs)]

//! From-scratch cryptographic substrate for the trusted data transfer stack.
//!
//! The paper's proof-of-concept relies on Hyperledger Fabric's crypto stack
//! (ECDSA signatures, X.509 certificates, hybrid encryption of query results).
//! None of the usual Rust crypto crates are available in this reproduction, so
//! this crate implements the required primitives from first principles:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`drbg`] — a deterministic HMAC-DRBG (SP 800-90A flavoured) used for
//!   nonce derivation and keystream generation.
//! * [`bigint`] — arbitrary-precision unsigned integers with Barrett-reduced
//!   modular exponentiation.
//! * [`group`] — named multiplicative groups modulo safe primes (Oakley /
//!   RFC 3526 MODP groups plus a small test group).
//! * [`schnorr`] — Schnorr signatures over a MODP subgroup of prime order.
//! * [`elgamal`] — ElGamal KEM + SHA-256 counter-mode stream cipher with
//!   encrypt-then-MAC, used for end-to-end confidentiality of query results.
//! * [`cert`] — minimal X.509-like certificates and certificate authorities,
//!   the basis for the Fabric-like Membership Service Providers.
//! * [`prime`] — Miller-Rabin primality testing, validating the built-in
//!   safe-prime constants and any imported group parameters.
//!
//! # Example
//!
//! ```
//! use tdt_crypto::{group::Group, schnorr::SigningKey};
//!
//! let group = Group::test_group();
//! let key = SigningKey::generate(group.clone(), &mut rand::thread_rng());
//! let sig = key.sign(b"bill of lading #42");
//! assert!(key.verifying_key().verify(b"bill of lading #42", &sig).is_ok());
//! ```

pub mod bigint;
pub mod cert;
pub mod certcache;
pub mod drbg;
pub mod elgamal;
pub mod error;
pub mod group;
pub mod hmac;
pub mod prime;
pub mod schnorr;
pub mod sha256;
pub mod stream;

pub use error::CryptoError;
pub use sha256::{sha256, Sha256};

/// Hex-encode a byte slice (lowercase), used pervasively for digests and ids.
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a lowercase/uppercase hex string into bytes.
///
/// # Errors
///
/// Returns [`CryptoError::Encoding`] if the input has odd length or contains
/// a non-hex character.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::Encoding("odd-length hex string".into()));
    }
    fn nibble(c: u8) -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::Encoding(format!(
                "invalid hex character {:?}",
                c as char
            ))),
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = vec![0u8, 1, 2, 0xfe, 0xff, 0x7f];
        let encoded = hex_encode(&data);
        assert_eq!(encoded, "000102feff7f");
        assert_eq!(hex_decode(&encoded).unwrap(), data);
    }

    #[test]
    fn hex_decode_rejects_odd_length() {
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn hex_decode_rejects_bad_chars() {
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn hex_decode_accepts_uppercase() {
        assert_eq!(hex_decode("FF00").unwrap(), vec![0xff, 0x00]);
    }
}
