//! HMAC-SHA-256 (RFC 2104), used for message authentication tags and as the
//! PRF inside the deterministic random bit generator.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
///
/// # Example
///
/// ```
/// use tdt_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tdt_crypto::hex_encode(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time equality for MAC tags.
///
/// Avoids early-exit timing side channels when comparing authentication tags.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex_encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"secret");
        mac.update(b"part one, ");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"secret", b"part one, part two")
        );
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_rejects_every_single_bit_flip() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(ct_eq(&tag, &tag));
        for byte in 0..tag.len() {
            for bit in 0..8 {
                let mut flipped = tag;
                flipped[byte] ^= 1 << bit;
                assert!(
                    !ct_eq(&tag, &flipped),
                    "flip of byte {byte} bit {bit} compared equal"
                );
            }
        }
    }

    #[test]
    fn ct_eq_rejects_unequal_lengths() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(!ct_eq(&tag, &tag[..31]));
        assert!(!ct_eq(&tag[..31], &tag));
        assert!(!ct_eq(&tag, b""));
        // A shared prefix must not make truncated tags acceptable.
        let mut extended = tag.to_vec();
        extended.push(0);
        assert!(!ct_eq(&tag, &extended));
    }
}
