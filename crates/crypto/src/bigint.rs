//! Arbitrary-precision unsigned integers.
//!
//! Implements exactly the operations needed by the Schnorr/ElGamal layer:
//! comparison, addition, subtraction, schoolbook multiplication, binary long
//! division, and Barrett-reduced modular exponentiation (HAC 14.42). Limbs
//! are `u64`, stored little-endian.

use crate::error::CryptoError;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use tdt_crypto::bigint::BigUint;
///
/// let a = BigUint::from_u64(10);
/// let b = BigUint::from_u64(4);
/// assert_eq!(a.mul(&b), BigUint::from_u64(40));
/// let (q, r) = a.div_rem(&b);
/// assert_eq!((q, r), (BigUint::from_u64(2), BigUint::from_u64(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (normalized).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let lo = chunk_start.saturating_sub(8);
            let mut limb = 0u64;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Parses a hex string (whitespace tolerated).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Encoding`] on non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let padded = if cleaned.len() % 2 == 1 {
            format!("0{cleaned}")
        } else {
            cleaned
        };
        let bytes = crate::hex_decode(&padded)?;
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to big-endian bytes left-padded to exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Drops the limbs above index `k` (i.e. `self mod 2^(64k)`).
    fn truncate_limbs(&self, k: usize) -> BigUint {
        let mut limbs = self.limbs.clone();
        limbs.truncate(k);
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Shifts right by whole limbs (i.e. `self / 2^(64k)`).
    fn shr_limbs(&self, k: usize) -> BigUint {
        if k >= self.limbs.len() {
            return BigUint::zero();
        }
        BigUint {
            limbs: self.limbs[k..].to_vec(),
        }
    }

    /// Binary long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_u64(divisor.limbs[0]);
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient_limbs = vec![0u64; shift / 64 + 1];
        let mut shifted = divisor.shl(shift);
        let mut i = shift as isize;
        while i >= 0 {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient_limbs[(i as usize) / 64] |= 1u64 << ((i as usize) % 64);
            }
            shifted = shifted.shr(1);
            i -= 1;
        }
        let mut q = BigUint {
            limbs: quotient_limbs,
        };
        q.normalize();
        (q, remainder)
    }

    fn div_rem_u64(&self, d: u64) -> (BigUint, BigUint) {
        let mut rem = 0u128;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        (quotient, BigUint::from_u64(rem as u64))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular addition `(self + other) mod m`; inputs must already be `< m`.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// Modular subtraction `(self - other) mod m`; inputs must already be `< m`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// Modular exponentiation `self^exp mod m` using a Barrett context.
    pub fn modexp(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        let ctx = BarrettContext::new(m.clone());
        ctx.modexp(self, exp)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        write!(f, "{}", crate::hex_encode(&self.to_bytes_be()))
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

/// Barrett reduction context (HAC algorithm 14.42) for a fixed modulus.
///
/// Precomputes `mu = floor(b^(2k) / m)` once, after which each reduction of a
/// value `x < m^2` costs two multiplications and a few subtractions — the
/// workhorse behind [`BarrettContext::modexp`].
#[derive(Debug, Clone)]
pub struct BarrettContext {
    modulus: BigUint,
    mu: BigUint,
    k: usize,
}

impl BarrettContext {
    /// Builds a reduction context for `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus > BigUint::one(), "modulus must be > 1");
        let k = modulus.limbs.len();
        // b^(2k) where b = 2^64.
        let b2k = BigUint::one().shl(64 * 2 * k);
        let (mu, _) = b2k.div_rem(&modulus);
        BarrettContext { modulus, mu, k }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Reduces `x` (which must be `< m^2 * b`) modulo `m`.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.modulus {
            return x.clone();
        }
        let k = self.k;
        // q1 = floor(x / b^(k-1)); q2 = q1*mu; q3 = floor(q2 / b^(k+1)).
        let q1 = x.shr_limbs(k - 1);
        let q2 = q1.mul(&self.mu);
        let q3 = q2.shr_limbs(k + 1);
        // r1 = x mod b^(k+1); r2 = (q3*m) mod b^(k+1).
        let r1 = x.truncate_limbs(k + 1);
        let r2 = q3.mul(&self.modulus).truncate_limbs(k + 1);
        let mut r = if r1 >= r2 {
            r1.sub(&r2)
        } else {
            // r1 - r2 + b^(k+1)
            r1.add(&BigUint::one().shl(64 * (k + 1))).sub(&r2)
        };
        while r >= self.modulus {
            r = r.sub(&self.modulus);
        }
        r
    }

    /// Modular multiplication `(a * b) mod m`.
    pub fn modmul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(&a.mul(b))
    }

    /// Modular exponentiation `base^exp mod m` with a 4-bit window.
    pub fn modexp(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let base = self.reduce(base);
        // Precompute base^0..=15.
        let mut table = Vec::with_capacity(16);
        table.push(BigUint::one());
        table.push(base.clone());
        for i in 2..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(self.modmul(prev, &base));
        }
        let nbits = exp.bits();
        let nwindows = nbits.div_ceil(4);
        let mut result = BigUint::one();
        for w in (0..nwindows).rev() {
            if result > BigUint::one() {
                for _ in 0..4 {
                    result = self.modmul(&result, &result);
                }
            }
            let mut window = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                window <<= 1;
                if exp.bit(bit_idx) {
                    window |= 1;
                }
            }
            if window != 0 {
                result = self.modmul(&result, &table[window]);
            }
        }
        result
    }
}

/// Generates a uniformly random value in `[1, upper)`.
///
/// # Panics
///
/// Panics if `upper <= 1`.
pub fn random_below<R: rand::RngCore>(upper: &BigUint, rng: &mut R) -> BigUint {
    assert!(upper > &BigUint::one(), "upper bound must exceed 1");
    let byte_len = upper.bits().div_ceil(8);
    loop {
        let mut bytes = vec![0u8; byte_len];
        rng.fill_bytes(&mut bytes);
        // Mask the top byte so the rejection rate stays below 50%.
        let excess_bits = byte_len * 8 - upper.bits();
        bytes[0] &= 0xffu8 >> excess_bits;
        let candidate = BigUint::from_bytes_be(&bytes);
        if !candidate.is_zero() && &candidate < upper {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = big("0123456789abcdef0123456789abcdef01");
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn from_bytes_leading_zeros() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        BigUint::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_with_carry() {
        let a = big("ffffffffffffffff");
        let b = BigUint::one();
        assert_eq!(a.add(&b), big("010000000000000000"));
    }

    #[test]
    fn sub_with_borrow() {
        let a = big("010000000000000000");
        let b = BigUint::one();
        assert_eq!(a.sub(&b), big("ffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_cross_limb() {
        let a = big("ffffffffffffffff");
        assert_eq!(a.mul(&a), big("fffffffffffffffe0000000000000001"));
    }

    #[test]
    fn shifts() {
        let v = BigUint::from_u64(1);
        assert_eq!(v.shl(64), big("010000000000000000"));
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(3), BigUint::from_u64(8));
        assert_eq!(BigUint::from_u64(8).shr(3), BigUint::from_u64(1));
        assert_eq!(BigUint::from_u64(8).shr(4), BigUint::zero());
    }

    #[test]
    fn div_rem_simple() {
        let (q, r) = BigUint::from_u64(100).div_rem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn div_rem_large() {
        let a = big("ffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = big("fedcba9876543210");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn modexp_small() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        let r = BigUint::from_u64(3).modexp(&BigUint::from_u64(7), &BigUint::from_u64(10));
        assert_eq!(r, BigUint::from_u64(7));
    }

    #[test]
    fn modexp_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let r = a.modexp(&p.sub(&BigUint::one()), &p);
        assert_eq!(r, BigUint::one());
    }

    #[test]
    fn modexp_zero_exponent() {
        let m = BigUint::from_u64(97);
        assert_eq!(
            BigUint::from_u64(5).modexp(&BigUint::zero(), &m),
            BigUint::one()
        );
    }

    #[test]
    fn barrett_reduce_matches_div_rem() {
        let m = big("c90fdaa22168c234c4c6628b80dc1cd1");
        let ctx = BarrettContext::new(m.clone());
        let x = big("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
        assert_eq!(ctx.reduce(&x), x.rem(&m));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::thread_rng();
        let upper = big("ff00000000000001");
        for _ in 0..50 {
            let v = random_below(&upper, &mut rng);
            assert!(!v.is_zero());
            assert!(v < upper);
        }
    }

    #[test]
    fn ordering() {
        assert!(big("0100000000000000ff") > big("ff"));
        assert!(big("fe") < big("ff"));
        assert_eq!(big("00ff"), big("ff"));
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..40),
                                  b in proptest::collection::vec(any::<u8>(), 0..40)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            let sum = a.add(&b);
            prop_assert_eq!(sum.sub(&b), a);
        }

        #[test]
        fn prop_div_rem_invariant(a in proptest::collection::vec(any::<u8>(), 0..48),
                                  b in proptest::collection::vec(any::<u8>(), 1..24)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
            prop_assert!(r < b);
        }

        #[test]
        fn prop_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                                b in proptest::collection::vec(any::<u8>(), 0..32)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn prop_bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&a);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn prop_barrett_matches_rem(x in proptest::collection::vec(any::<u8>(), 0..64),
                                    m in proptest::collection::vec(any::<u8>(), 2..32)) {
            let x = BigUint::from_bytes_be(&x);
            let m = BigUint::from_bytes_be(&m);
            prop_assume!(m > BigUint::one());
            // Barrett precondition: x < m^2 * b. Reduce x first if it is too big.
            let x = x.rem(&m.mul(&m));
            let ctx = BarrettContext::new(m.clone());
            prop_assert_eq!(ctx.reduce(&x), x.rem(&m));
        }

        #[test]
        fn prop_shift_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..32),
                                n in 0usize..200) {
            let v = BigUint::from_bytes_be(&a);
            prop_assert_eq!(v.shl(n).shr(n), v);
        }
    }
}
