//! Arbitrary-precision unsigned integers.
//!
//! Implements exactly the operations needed by the Schnorr/ElGamal layer:
//! comparison, addition, subtraction, schoolbook multiplication, binary long
//! division, Barrett reduction (HAC 14.42) for one-shot reductions, and
//! Montgomery (CIOS) multiplication behind a [`MontgomeryCtx`] for the
//! modular-exponentiation hot loop. Limbs are `u64`, stored little-endian.

use crate::error::CryptoError;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use tdt_crypto::bigint::BigUint;
///
/// let a = BigUint::from_u64(10);
/// let b = BigUint::from_u64(4);
/// assert_eq!(a.mul(&b), BigUint::from_u64(40));
/// let (q, r) = a.div_rem(&b);
/// assert_eq!((q, r), (BigUint::from_u64(2), BigUint::from_u64(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (normalized).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let lo = chunk_start.saturating_sub(8);
            let mut limb = 0u64;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Parses a hex string (whitespace tolerated).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Encoding`] on non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let padded = if cleaned.len() % 2 == 1 {
            format!("0{cleaned}")
        } else {
            cleaned
        };
        let bytes = crate::hex_decode(&padded)?;
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to big-endian bytes left-padded to exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Drops the limbs above index `k` (i.e. `self mod 2^(64k)`).
    fn truncate_limbs(&self, k: usize) -> BigUint {
        let mut limbs = self.limbs.clone();
        limbs.truncate(k);
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Shifts right by whole limbs (i.e. `self / 2^(64k)`).
    fn shr_limbs(&self, k: usize) -> BigUint {
        if k >= self.limbs.len() {
            return BigUint::zero();
        }
        BigUint {
            limbs: self.limbs[k..].to_vec(),
        }
    }

    /// Binary long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_u64(divisor.limbs[0]);
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient_limbs = vec![0u64; shift / 64 + 1];
        let mut shifted = divisor.shl(shift);
        let mut i = shift as isize;
        while i >= 0 {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient_limbs[(i as usize) / 64] |= 1u64 << ((i as usize) % 64);
            }
            shifted = shifted.shr(1);
            i -= 1;
        }
        let mut q = BigUint {
            limbs: quotient_limbs,
        };
        q.normalize();
        (q, remainder)
    }

    fn div_rem_u64(&self, d: u64) -> (BigUint, BigUint) {
        let mut rem = 0u128;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        (quotient, BigUint::from_u64(rem as u64))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular addition `(self + other) mod m`; inputs must already be `< m`.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// Modular subtraction `(self - other) mod m`; inputs must already be `< m`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// Modular exponentiation `self^exp mod m` using a Barrett context.
    pub fn modexp(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        let ctx = BarrettContext::new(m.clone());
        ctx.modexp(self, exp)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        write!(f, "{}", crate::hex_encode(&self.to_bytes_be()))
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

/// Barrett reduction context (HAC algorithm 14.42) for a fixed modulus.
///
/// Precomputes `mu = floor(b^(2k) / m)` once, after which each reduction of a
/// value `x < m^2` costs two multiplications and a few subtractions — the
/// workhorse behind [`BarrettContext::modexp`].
#[derive(Debug, Clone)]
pub struct BarrettContext {
    modulus: BigUint,
    mu: BigUint,
    k: usize,
}

impl BarrettContext {
    /// Builds a reduction context for `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus > BigUint::one(), "modulus must be > 1");
        let k = modulus.limbs.len();
        // b^(2k) where b = 2^64.
        let b2k = BigUint::one().shl(64 * 2 * k);
        let (mu, _) = b2k.div_rem(&modulus);
        BarrettContext { modulus, mu, k }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Reduces `x` modulo `m`.
    ///
    /// The Barrett fast path requires `x < b^(2k)` (HAC 14.42); callers
    /// used to be on the hook for that precondition, and feeding a wider
    /// value (e.g. a 64-byte hash against a narrow subgroup order) made
    /// the correction loop below effectively unbounded. Oversized inputs
    /// now take a guarded [`BigUint::div_rem`] fallback instead.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.modulus {
            return x.clone();
        }
        if x.limbs.len() > 2 * self.k {
            // Barrett precondition violated: fall back to long division.
            return x.rem(&self.modulus);
        }
        let k = self.k;
        // q1 = floor(x / b^(k-1)); q2 = q1*mu; q3 = floor(q2 / b^(k+1)).
        let q1 = x.shr_limbs(k - 1);
        let q2 = q1.mul(&self.mu);
        let q3 = q2.shr_limbs(k + 1);
        // r1 = x mod b^(k+1); r2 = (q3*m) mod b^(k+1).
        let r1 = x.truncate_limbs(k + 1);
        let r2 = q3.mul(&self.modulus).truncate_limbs(k + 1);
        let mut r = if r1 >= r2 {
            r1.sub(&r2)
        } else {
            // r1 - r2 + b^(k+1)
            r1.add(&BigUint::one().shl(64 * (k + 1))).sub(&r2)
        };
        while r >= self.modulus {
            r = r.sub(&self.modulus);
        }
        r
    }

    /// Modular multiplication `(a * b) mod m`.
    pub fn modmul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(&a.mul(b))
    }

    /// Modular exponentiation `base^exp mod m` with a 4-bit window.
    pub fn modexp(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let base = self.reduce(base);
        // Precompute base^0..=15.
        let mut table = Vec::with_capacity(16);
        table.push(BigUint::one());
        table.push(base.clone());
        for i in 2..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(self.modmul(prev, &base));
        }
        let nbits = exp.bits();
        let nwindows = nbits.div_ceil(4);
        let mut result = BigUint::one();
        for w in (0..nwindows).rev() {
            if result > BigUint::one() {
                for _ in 0..4 {
                    result = self.modmul(&result, &result);
                }
            }
            let mut window = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                window <<= 1;
                if exp.bit(bit_idx) {
                    window |= 1;
                }
            }
            if window != 0 {
                // lint:allow(ct: "Barrett modexp serves one-shot public-exponent reductions (subgroup checks, scalar reduction); secret exponents go through MontgomeryCtx — see DESIGN.md crypto hot path")
                result = self.modmul(&result, &table[window]);
            }
        }
        result
    }
}

/// An element in Montgomery form: `x·R mod m` where `R = b^k`, stored as
/// exactly `k` little-endian limbs (fixed width, never normalized).
///
/// Only meaningful together with the [`MontgomeryCtx`] that produced it;
/// mixing elements across contexts yields garbage values (but no UB).
#[derive(Clone, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

impl MontElem {
    /// Number of limbs — fixed at the owning context's width `k`.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }
}

impl fmt::Debug for MontElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MontElem({} limbs)", self.limbs.len())
    }
}

/// Reusable CIOS scratch buffers so the modexp hot loop allocates nothing
/// per multiplication. Obtain via [`MontgomeryCtx::scratch`].
#[derive(Debug)]
pub struct MontScratch {
    out: Vec<u64>,
    tl: Vec<u64>,
}

/// Montgomery multiplication context (CIOS, Koç et al.) for a fixed odd
/// modulus.
///
/// Replaces Barrett reduction on the modular-exponentiation hot loop: a
/// CIOS `mont_mul` fuses the multiplication with the reduction in a single
/// `O(k^2)` pass over fixed-width limb buffers — no intermediate `2k`-limb
/// product, no per-operation allocations beyond the output, and no
/// normalization. Barrett ([`BarrettContext`]) remains the right tool for
/// one-shot reductions where the conversion into and out of Montgomery
/// form (two extra multiplications) would dominate.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    modulus: BigUint,
    /// Modulus limbs, fixed width `k`.
    m: Vec<u64>,
    k: usize,
    /// `-m^(-1) mod b` (b = 2^64).
    n0_inv: u64,
    /// `R^2 mod m`, Montgomery form of `R` — converts into the domain.
    r2: MontElem,
    /// `R mod m`, Montgomery form of `1`.
    one: MontElem,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] when the modulus is even or ≤ 1
    /// (Montgomery reduction needs `gcd(m, b) = 1`).
    pub fn new(modulus: BigUint) -> Result<Self, CryptoError> {
        if modulus <= BigUint::one() || !modulus.is_odd() {
            return Err(CryptoError::InvalidKey(
                "Montgomery modulus must be odd and > 1".into(),
            ));
        }
        let k = modulus.limbs.len();
        let mut m = modulus.limbs.clone();
        m.resize(k, 0);
        // n0_inv = -m[0]^(-1) mod 2^64 via Newton iteration (m[0] is odd).
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod m with R = b^k, via long division (setup cost only).
        let r2_value = BigUint::one().shl(64 * 2 * k).rem(&modulus);
        let one_value = BigUint::one().shl(64 * k).rem(&modulus);
        let r2 = MontElem {
            limbs: Self::fixed_width(&r2_value, k),
        };
        let one = MontElem {
            limbs: Self::fixed_width(&one_value, k),
        };
        Ok(MontgomeryCtx {
            modulus,
            m,
            k,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Limb width `k` of elements in this context.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Montgomery form of `1` (`R mod m`).
    pub fn one(&self) -> MontElem {
        self.one.clone()
    }

    fn fixed_width(x: &BigUint, k: usize) -> Vec<u64> {
        let mut limbs = x.limbs.clone();
        limbs.resize(k, 0);
        limbs
    }

    /// Converts `x` into Montgomery form (`x` is reduced mod `m` first).
    pub fn to_mont(&self, x: &BigUint) -> MontElem {
        let reduced = if x < &self.modulus {
            x.clone()
        } else {
            x.rem(&self.modulus)
        };
        let limbs = Self::fixed_width(&reduced, self.k);
        let mut scratch = self.scratch();
        let mut out = vec![0u64; self.k];
        self.cios(&limbs, &self.r2.limbs, &mut out, &mut scratch.tl);
        MontElem { limbs: out }
    }

    /// Converts back out of Montgomery form.
    pub fn from_mont(&self, x: &MontElem) -> BigUint {
        let one_limbs = {
            let mut v = vec![0u64; self.k];
            v[0] = 1;
            v
        };
        let mut scratch = self.scratch();
        let mut out = vec![0u64; self.k];
        self.cios(&x.limbs, &one_limbs, &mut out, &mut scratch.tl);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Allocates reusable scratch space for the in-place hot-loop variants.
    pub fn scratch(&self) -> MontScratch {
        MontScratch {
            out: vec![0u64; self.k],
            tl: vec![0u64; self.k + 2],
        }
    }

    /// Montgomery product `a·b·R^(-1) mod m`.
    pub fn mont_mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut scratch = self.scratch();
        let mut out = vec![0u64; self.k];
        self.cios(&a.limbs, &b.limbs, &mut out, &mut scratch.tl);
        MontElem { limbs: out }
    }

    /// Montgomery square.
    pub fn mont_sqr(&self, a: &MontElem) -> MontElem {
        self.mont_mul(a, a)
    }

    /// `acc <- acc · b` reusing `scratch` buffers (no allocation).
    pub fn mont_mul_assign(&self, acc: &mut MontElem, b: &MontElem, scratch: &mut MontScratch) {
        self.cios(&acc.limbs, &b.limbs, &mut scratch.out, &mut scratch.tl);
        std::mem::swap(&mut acc.limbs, &mut scratch.out);
    }

    /// `acc <- acc²` reusing `scratch` buffers (no allocation).
    pub fn mont_sqr_assign(&self, acc: &mut MontElem, scratch: &mut MontScratch) {
        self.cios(&acc.limbs, &acc.limbs, &mut scratch.out, &mut scratch.tl);
        std::mem::swap(&mut acc.limbs, &mut scratch.out);
    }

    /// CIOS (coarsely integrated operand scanning) Montgomery
    /// multiplication: interleaves the multiply and the reduction limb by
    /// limb. Loop bounds depend only on the (public) limb count `k`; the
    /// final modulus subtraction is selected branchlessly by mask.
    fn cios(&self, a: &[u64], b: &[u64], out: &mut [u64], tl: &mut Vec<u64>) {
        let k = self.k;
        debug_assert!(a.len() == k && b.len() == k && out.len() == k);
        // t has k+2 limbs: t[k+1] never exceeds 1.
        tl.clear();
        tl.resize(k + 2, 0);
        for &bi in b.iter() {
            // t += a * bi
            let mut carry = 0u128;
            for j in 0..k {
                let cur = tl[j] as u128 + a[j] as u128 * bi as u128 + carry;
                tl[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = tl[k] as u128 + carry;
            tl[k] = cur as u64;
            tl[k + 1] += (cur >> 64) as u64;
            // m_val makes t divisible by b: t = (t + m_val*m) / b
            let m_val = tl[0].wrapping_mul(self.n0_inv);
            let mut carry = (tl[0] as u128 + m_val as u128 * self.m[0] as u128) >> 64;
            for j in 1..k {
                let cur = tl[j] as u128 + m_val as u128 * self.m[j] as u128 + carry;
                tl[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = tl[k] as u128 + carry;
            tl[k - 1] = cur as u64;
            tl[k] = tl[k + 1] + (cur >> 64) as u64;
            tl[k + 1] = 0;
        }
        // Conditional subtraction: result = tl - m if tl >= m (including
        // the overflow limb), selected by mask rather than branch.
        let mut borrow = 0u64;
        for j in 0..k {
            let (d1, b1) = tl[j].overflowing_sub(self.m[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) | (b2 as u64);
        }
        // Need the subtraction iff the overflow limb is set (value has a
        // 2^(64k) component, always >= m) or tl >= m (no borrow).
        let need = (tl[k] != 0) as u64 | (borrow == 0) as u64;
        let mask = need.wrapping_neg();
        for j in 0..k {
            out[j] = (out[j] & mask) | (tl[j] & !mask);
        }
    }

    /// Modular exponentiation `base^exp mod m` with a fixed 4-bit window
    /// in Montgomery form.
    ///
    /// Every window performs four squarings and one multiplication — zero
    /// windows multiply by the Montgomery `1` instead of branching — so
    /// the work depends only on the exponent's bit length.
    pub fn modexp(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let acc = self.modexp_mont(&self.to_mont(base), exp);
        self.from_mont(&acc)
    }

    /// Montgomery-domain exponentiation: `base^exp` with `base` already in
    /// Montgomery form; returns the result in Montgomery form.
    pub fn modexp_mont(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        tdt_obs::profile_scope!("crypto.modexp_mont");
        // Precompute base^0..=15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one.clone());
        table.push(base.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], base));
        }
        let nbits = exp.bits().max(1);
        let nwindows = nbits.div_ceil(4);
        let mut acc = self.one.clone();
        let mut scratch = self.scratch();
        for w in (0..nwindows).rev() {
            if w + 1 != nwindows {
                for _ in 0..4 {
                    self.mont_sqr_assign(&mut acc, &mut scratch);
                }
            }
            let mut window = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                window <<= 1;
                if exp.bit(bit_idx) {
                    window |= 1;
                }
            }
            // lint:allow(ct: "window digit derives from the exponent; exponents here are public signature scalars (verify) or DRBG nonces whose table-lookup cache footprint we accept — see DESIGN.md crypto hot path")
            self.mont_mul_assign(&mut acc, &table[window], &mut scratch);
        }
        acc
    }
}

/// Generates a uniformly random value in `[1, upper)`.
///
/// # Panics
///
/// Panics if `upper <= 1`.
pub fn random_below<R: rand::RngCore>(upper: &BigUint, rng: &mut R) -> BigUint {
    assert!(upper > &BigUint::one(), "upper bound must exceed 1");
    let byte_len = upper.bits().div_ceil(8);
    loop {
        let mut bytes = vec![0u8; byte_len];
        rng.fill_bytes(&mut bytes);
        // Mask the top byte so the rejection rate stays below 50%.
        let excess_bits = byte_len * 8 - upper.bits();
        bytes[0] &= 0xffu8 >> excess_bits;
        let candidate = BigUint::from_bytes_be(&bytes);
        if !candidate.is_zero() && &candidate < upper {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = big("0123456789abcdef0123456789abcdef01");
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn from_bytes_leading_zeros() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        BigUint::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_with_carry() {
        let a = big("ffffffffffffffff");
        let b = BigUint::one();
        assert_eq!(a.add(&b), big("010000000000000000"));
    }

    #[test]
    fn sub_with_borrow() {
        let a = big("010000000000000000");
        let b = BigUint::one();
        assert_eq!(a.sub(&b), big("ffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_cross_limb() {
        let a = big("ffffffffffffffff");
        assert_eq!(a.mul(&a), big("fffffffffffffffe0000000000000001"));
    }

    #[test]
    fn shifts() {
        let v = BigUint::from_u64(1);
        assert_eq!(v.shl(64), big("010000000000000000"));
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(3), BigUint::from_u64(8));
        assert_eq!(BigUint::from_u64(8).shr(3), BigUint::from_u64(1));
        assert_eq!(BigUint::from_u64(8).shr(4), BigUint::zero());
    }

    #[test]
    fn div_rem_simple() {
        let (q, r) = BigUint::from_u64(100).div_rem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn div_rem_large() {
        let a = big("ffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = big("fedcba9876543210");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn modexp_small() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        let r = BigUint::from_u64(3).modexp(&BigUint::from_u64(7), &BigUint::from_u64(10));
        assert_eq!(r, BigUint::from_u64(7));
    }

    #[test]
    fn modexp_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let r = a.modexp(&p.sub(&BigUint::one()), &p);
        assert_eq!(r, BigUint::one());
    }

    #[test]
    fn modexp_zero_exponent() {
        let m = BigUint::from_u64(97);
        assert_eq!(
            BigUint::from_u64(5).modexp(&BigUint::zero(), &m),
            BigUint::one()
        );
    }

    #[test]
    fn barrett_reduce_matches_div_rem() {
        let m = big("c90fdaa22168c234c4c6628b80dc1cd1");
        let ctx = BarrettContext::new(m.clone());
        let x = big("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
        assert_eq!(ctx.reduce(&x), x.rem(&m));
    }

    #[test]
    fn barrett_reduce_oversized_input() {
        // A narrow modulus (k = 1 limb) fed an input far beyond b^(2k):
        // the Barrett precondition is violated, the guarded div_rem
        // fallback must keep the result correct. This is exactly the
        // shape `Group::reduce_scalar` produces: a 64-byte wide hash
        // reduced by a small subgroup order.
        let m = big("f1fd5bcc8f50c141");
        let ctx = BarrettContext::new(m.clone());
        let x = BigUint::from_bytes_be(&[0xabu8; 64]);
        assert!(x.limbs.len() > 2); // 2·k with k = 1 limb
        assert_eq!(ctx.reduce(&x), x.rem(&m));
    }

    #[test]
    fn montgomery_rejects_even_or_trivial_modulus() {
        assert!(MontgomeryCtx::new(BigUint::from_u64(100)).is_err());
        assert!(MontgomeryCtx::new(BigUint::one()).is_err());
        assert!(MontgomeryCtx::new(BigUint::zero()).is_err());
        assert!(MontgomeryCtx::new(BigUint::from_u64(97)).is_ok());
    }

    #[test]
    fn montgomery_roundtrip() {
        let m = big("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b23");
        let ctx = MontgomeryCtx::new(m.clone()).unwrap();
        let x = big("0123456789abcdef0123456789abcdef");
        assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        // Values >= m are reduced on the way in.
        let y = x.add(&m);
        assert_eq!(ctx.from_mont(&ctx.to_mont(&y)), x);
        assert_eq!(ctx.from_mont(&ctx.one()), BigUint::one());
    }

    #[test]
    fn montgomery_mul_matches_schoolbook() {
        let m = big("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b23");
        let ctx = MontgomeryCtx::new(m.clone()).unwrap();
        let a = big("0123456789abcdef0123456789abcdef0123456789abcdef");
        let b = big("fedcba9876543210fedcba9876543210");
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        assert_eq!(got, a.mul(&b).rem(&m));
    }

    #[test]
    fn montgomery_modexp_matches_barrett() {
        let m = big("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b23");
        let mont = MontgomeryCtx::new(m.clone()).unwrap();
        let barrett = BarrettContext::new(m.clone());
        let base = big("0123456789abcdef0123456789abcdef");
        let exp = big("deadbeefcafebabe0000000000000001ffffffffffffffff");
        assert_eq!(mont.modexp(&base, &exp), barrett.modexp(&base, &exp));
        assert_eq!(
            mont.modexp(&base, &BigUint::zero()),
            barrett.modexp(&base, &BigUint::zero())
        );
        assert_eq!(mont.modexp(&BigUint::zero(), &exp), BigUint::zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::thread_rng();
        let upper = big("ff00000000000001");
        for _ in 0..50 {
            let v = random_below(&upper, &mut rng);
            assert!(!v.is_zero());
            assert!(v < upper);
        }
    }

    #[test]
    fn ordering() {
        assert!(big("0100000000000000ff") > big("ff"));
        assert!(big("fe") < big("ff"));
        assert_eq!(big("00ff"), big("ff"));
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..40),
                                  b in proptest::collection::vec(any::<u8>(), 0..40)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            let sum = a.add(&b);
            prop_assert_eq!(sum.sub(&b), a);
        }

        #[test]
        fn prop_div_rem_invariant(a in proptest::collection::vec(any::<u8>(), 0..48),
                                  b in proptest::collection::vec(any::<u8>(), 1..24)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
            prop_assert!(r < b);
        }

        #[test]
        fn prop_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                                b in proptest::collection::vec(any::<u8>(), 0..32)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn prop_bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&a);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn prop_barrett_matches_rem(x in proptest::collection::vec(any::<u8>(), 0..64),
                                    m in proptest::collection::vec(any::<u8>(), 2..32)) {
            let x = BigUint::from_bytes_be(&x);
            let m = BigUint::from_bytes_be(&m);
            prop_assume!(m > BigUint::one());
            // Barrett precondition: x < m^2 * b. Reduce x first if it is too big.
            let x = x.rem(&m.mul(&m));
            let ctx = BarrettContext::new(m.clone());
            prop_assert_eq!(ctx.reduce(&x), x.rem(&m));
        }

        #[test]
        fn prop_shift_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..32),
                                n in 0usize..200) {
            let v = BigUint::from_bytes_be(&a);
            prop_assert_eq!(v.shl(n).shr(n), v);
        }

        // Satellite: Barrett `reduce` vs long division on inputs up to
        // 4·k limbs — far past the b^(2k) precondition, exercising the
        // guarded fallback (narrow moduli, x up to 4k limbs in bytes).
        #[test]
        fn prop_barrett_oversized_matches_rem(
            x in proptest::collection::vec(any::<u8>(), 0..128),
            m in proptest::collection::vec(any::<u8>(), 2..16),
        ) {
            let x = BigUint::from_bytes_be(&x);
            let m = BigUint::from_bytes_be(&m);
            prop_assume!(m > BigUint::one());
            let ctx = BarrettContext::new(m.clone());
            prop_assert_eq!(ctx.reduce(&x), x.rem(&m));
        }

        #[test]
        fn prop_montgomery_modexp_matches_barrett(
            base in proptest::collection::vec(any::<u8>(), 0..32),
            exp in proptest::collection::vec(any::<u8>(), 0..24),
            m in proptest::collection::vec(any::<u8>(), 2..24),
        ) {
            let base = BigUint::from_bytes_be(&base);
            let exp = BigUint::from_bytes_be(&exp);
            let mut m = BigUint::from_bytes_be(&m);
            prop_assume!(m > BigUint::one());
            if !m.is_odd() {
                m = m.add(&BigUint::one());
            }
            let mont = MontgomeryCtx::new(m.clone()).unwrap();
            let barrett = BarrettContext::new(m);
            prop_assert_eq!(mont.modexp(&base, &exp), barrett.modexp(&base, &exp));
        }

        #[test]
        fn prop_montgomery_mul_matches_mul_rem(
            a in proptest::collection::vec(any::<u8>(), 0..32),
            b in proptest::collection::vec(any::<u8>(), 0..32),
            m in proptest::collection::vec(any::<u8>(), 2..24),
        ) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            let mut m = BigUint::from_bytes_be(&m);
            prop_assume!(m > BigUint::one());
            if !m.is_odd() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryCtx::new(m.clone()).unwrap();
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            prop_assert_eq!(got, a.mul(&b).rem(&m));
        }
    }
}
