//! Error type shared by all cryptographic primitives in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification.
    InvalidSignature,
    /// A MAC tag failed verification (ciphertext integrity violation).
    InvalidMac,
    /// A ciphertext was malformed (truncated, wrong group element, ...).
    Malformed(String),
    /// A certificate failed validation (bad signature, untrusted issuer,
    /// expired, revoked, or subject mismatch).
    CertificateInvalid(String),
    /// Key material was invalid for the requested operation.
    InvalidKey(String),
    /// An encoding/decoding problem (hex, byte layout).
    Encoding(String),
    /// A group element was outside the expected subgroup or range.
    InvalidGroupElement,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidMac => write!(f, "message authentication tag mismatch"),
            CryptoError::Malformed(msg) => write!(f, "malformed cryptographic input: {msg}"),
            CryptoError::CertificateInvalid(msg) => write!(f, "certificate invalid: {msg}"),
            CryptoError::InvalidKey(msg) => write!(f, "invalid key material: {msg}"),
            CryptoError::Encoding(msg) => write!(f, "encoding error: {msg}"),
            CryptoError::InvalidGroupElement => write!(f, "value is not a valid group element"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants = [
            CryptoError::InvalidSignature,
            CryptoError::InvalidMac,
            CryptoError::Malformed("x".into()),
            CryptoError::CertificateInvalid("y".into()),
            CryptoError::InvalidKey("z".into()),
            CryptoError::Encoding("w".into()),
            CryptoError::InvalidGroupElement,
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
