//! ElGamal KEM + stream-cipher hybrid public-key encryption.
//!
//! This is the mechanism behind the paper's end-to-end confidentiality
//! (§4.3): the source network's peers encrypt both the query *result* and
//! the endorsement *metadata* with the requesting client's public key, so a
//! malicious relay can neither read the data nor exfiltrate a verifiable
//! proof.
//!
//! Construction (group `G` of order `q`, generator `g`, recipient key
//! `y = g^x`):
//!
//! * encrypt(m): ephemeral `k ← [1, q)`, `c1 = g^k`, `shared = y^k`,
//!   `K = SHA256("kem" ‖ c1 ‖ shared)`, `ct = Stream_K(m)`,
//!   `tag = HMAC_K("tag" ‖ c1 ‖ ct)` — encrypt-then-MAC.
//! * decrypt: `shared = c1^x`, recompute `K`, check tag, XOR back.

use crate::bigint::{random_below, BigUint};
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::group::Group;
use crate::hmac::{ct_eq, hmac_sha256};
use crate::sha256::sha256_concat;
use crate::stream::xor_keystream;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ElGamal-KEM hybrid ciphertext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// Ephemeral group element `g^k`, fixed-width big-endian.
    c1: Vec<u8>,
    /// Stream-ciphered payload.
    body: Vec<u8>,
    /// HMAC-SHA256 tag over `c1 ‖ body`.
    tag: [u8; 32],
}

impl Ciphertext {
    /// Total serialized size in bytes.
    pub fn len(&self) -> usize {
        self.c1.len() + self.body.len() + self.tag.len()
    }

    /// True if the encrypted payload is empty (headers still present).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Serializes as `len(c1) ‖ c1 ‖ tag ‖ body`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.len());
        out.extend_from_slice(&(self.c1.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.c1);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses the [`Ciphertext::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < 4 {
            return Err(CryptoError::Malformed("ciphertext too short".into()));
        }
        let c1_len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + c1_len + 32 {
            return Err(CryptoError::Malformed("ciphertext truncated".into()));
        }
        let c1 = bytes[4..4 + c1_len].to_vec();
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&bytes[4 + c1_len..4 + c1_len + 32]);
        let body = bytes[4 + c1_len + 32..].to_vec();
        Ok(Ciphertext { c1, body, tag })
    }
}

/// An ElGamal decryption (secret) key.
#[derive(Clone)]
pub struct DecryptionKey {
    group: Group,
    x: BigUint,
    y: BigUint,
}

impl fmt::Debug for DecryptionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecryptionKey")
            .field("group", &self.group.name())
            .finish()
    }
}

impl DecryptionKey {
    /// Generates a fresh random key pair.
    pub fn generate<R: rand::RngCore>(group: Group, rng: &mut R) -> Self {
        let x = random_below(group.q(), rng);
        let y = group.pow_g(&x);
        DecryptionKey { group, x, y }
    }

    /// Derives a key pair deterministically from seed material.
    pub fn from_seed(group: Group, seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-encryption-key", seed]);
        let x = random_below(group.q(), &mut drbg);
        let y = group.pow_g(&x);
        DecryptionKey { group, x, y }
    }

    /// The corresponding public encryption key.
    pub fn encryption_key(&self) -> EncryptionKey {
        EncryptionKey {
            group: self.group.clone(),
            y: self.y.clone(),
        }
    }

    /// Decrypts and authenticates a ciphertext.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::InvalidGroupElement`] if `c1` is not a subgroup element.
    /// * [`CryptoError::InvalidMac`] if the tag does not verify (tampering).
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
        let c1 = BigUint::from_bytes_be(&ct.c1);
        if !self.group.is_element(&c1) {
            return Err(CryptoError::InvalidGroupElement);
        }
        let shared = self.group.pow(&c1, &self.x);
        let key = derive_key(&self.group, &ct.c1, &shared);
        let expected = hmac_sha256(&key, &tag_input(&ct.c1, &ct.body));
        if !ct_eq(&expected, &ct.tag) {
            return Err(CryptoError::InvalidMac);
        }
        Ok(xor_keystream(&key, &ct.c1, &ct.body))
    }
}

/// An ElGamal encryption (public) key.
#[derive(Clone, PartialEq, Eq)]
pub struct EncryptionKey {
    group: Group,
    y: BigUint,
}

impl fmt::Debug for EncryptionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EncryptionKey")
            .field("group", &self.group.name())
            .field("y", &format!("{:.16}", self.y.to_string()))
            .finish()
    }
}

impl EncryptionKey {
    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Serializes as fixed-width big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.group.element_to_bytes(&self.y)
    }

    /// Parses a public key; checks subgroup membership.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidGroupElement`] for out-of-subgroup input.
    pub fn from_bytes(group: Group, bytes: &[u8]) -> Result<Self, CryptoError> {
        let y = BigUint::from_bytes_be(bytes);
        if !group.is_element(&y) {
            return Err(CryptoError::InvalidGroupElement);
        }
        Ok(EncryptionKey { group, y })
    }

    /// Encrypts `plaintext` with a fresh ephemeral key from `rng`.
    pub fn encrypt<R: rand::RngCore>(&self, plaintext: &[u8], rng: &mut R) -> Ciphertext {
        let k = random_below(self.group.q(), rng);
        self.encrypt_with_ephemeral(plaintext, &k)
    }

    /// Encrypts with an ephemeral scalar derived deterministically from seed
    /// material (reproducible fixtures).
    pub fn encrypt_deterministic(&self, plaintext: &[u8], seed: &[u8]) -> Ciphertext {
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-elgamal-eph", seed, plaintext]);
        let k = random_below(self.group.q(), &mut drbg);
        self.encrypt_with_ephemeral(plaintext, &k)
    }

    fn encrypt_with_ephemeral(&self, plaintext: &[u8], k: &BigUint) -> Ciphertext {
        let c1_elem = self.group.pow_g(k);
        let shared = self.group.pow(&self.y, k);
        let c1 = self.group.element_to_bytes(&c1_elem);
        let key = derive_key(&self.group, &c1, &shared);
        let body = xor_keystream(&key, &c1, plaintext);
        let tag = hmac_sha256(&key, &tag_input(&c1, &body));
        Ciphertext { c1, body, tag }
    }
}

fn derive_key(group: &Group, c1: &[u8], shared: &BigUint) -> [u8; 32] {
    sha256_concat(&[b"tdt-kem", c1, &group.element_to_bytes(shared)])
}

fn tag_input(c1: &[u8], body: &[u8]) -> Vec<u8> {
    let mut input = Vec::with_capacity(4 + c1.len() + body.len());
    input.extend_from_slice(b"tag:");
    input.extend_from_slice(c1);
    input.extend_from_slice(body);
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> DecryptionKey {
        DecryptionKey::from_seed(Group::test_group(), b"unit-test-enc")
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let dk = keypair();
        let mut rng = rand::thread_rng();
        let ct = dk.encryption_key().encrypt(b"bill of lading", &mut rng);
        assert_eq!(dk.decrypt(&ct).unwrap(), b"bill of lading");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let dk = keypair();
        let ct = dk
            .encryption_key()
            .encrypt_deterministic(b"secret data", b"seed");
        assert_ne!(ct.body.as_slice(), b"secret data".as_slice());
    }

    #[test]
    fn tampered_body_rejected() {
        let dk = keypair();
        let mut ct = dk
            .encryption_key()
            .encrypt_deterministic(b"payload", b"seed");
        ct.body[0] ^= 0xff;
        assert_eq!(dk.decrypt(&ct), Err(CryptoError::InvalidMac));
    }

    #[test]
    fn tampered_tag_rejected() {
        let dk = keypair();
        let mut ct = dk
            .encryption_key()
            .encrypt_deterministic(b"payload", b"seed");
        ct.tag[5] ^= 1;
        assert_eq!(dk.decrypt(&ct), Err(CryptoError::InvalidMac));
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let dk = keypair();
        let other = DecryptionKey::from_seed(Group::test_group(), b"other");
        let ct = dk.encryption_key().encrypt_deterministic(b"data", b"s");
        assert!(other.decrypt(&ct).is_err());
    }

    #[test]
    fn empty_plaintext() {
        let dk = keypair();
        let ct = dk.encryption_key().encrypt_deterministic(b"", b"seed");
        assert!(ct.is_empty());
        assert_eq!(dk.decrypt(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_plaintext() {
        let dk = keypair();
        let data = vec![0xabu8; 10_000];
        let ct = dk.encryption_key().encrypt_deterministic(&data, b"seed");
        assert_eq!(dk.decrypt(&ct).unwrap(), data);
    }

    #[test]
    fn bytes_roundtrip() {
        let dk = keypair();
        let ct = dk.encryption_key().encrypt_deterministic(b"wire", b"seed");
        let parsed = Ciphertext::from_bytes(&ct.to_bytes()).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(dk.decrypt(&parsed).unwrap(), b"wire");
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        assert!(Ciphertext::from_bytes(&[1, 2]).is_err());
        let dk = keypair();
        let full = dk
            .encryption_key()
            .encrypt_deterministic(b"x", b"s")
            .to_bytes();
        assert!(Ciphertext::from_bytes(&full[..20]).is_err());
    }

    #[test]
    fn invalid_c1_rejected() {
        let dk = keypair();
        let mut ct = dk.encryption_key().encrypt_deterministic(b"x", b"s");
        // Replace c1 with a non-subgroup element: p-1, a quadratic
        // non-residue since p ≡ 3 (mod 4).
        let group = Group::test_group();
        let bad = group.p().sub(&BigUint::one());
        ct.c1 = group.element_to_bytes(&bad);
        assert_eq!(dk.decrypt(&ct), Err(CryptoError::InvalidGroupElement));
    }

    #[test]
    fn fresh_randomness_gives_distinct_ciphertexts() {
        let dk = keypair();
        let mut rng = rand::thread_rng();
        let a = dk.encryption_key().encrypt(b"same", &mut rng);
        let b = dk.encryption_key().encrypt(b"same", &mut rng);
        assert_ne!(a, b);
        assert_eq!(dk.decrypt(&a).unwrap(), dk.decrypt(&b).unwrap());
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let dk = keypair();
        let ek = dk.encryption_key();
        let parsed = EncryptionKey::from_bytes(Group::test_group(), &ek.to_bytes()).unwrap();
        assert_eq!(parsed, ek);
    }

    #[test]
    fn public_key_rejects_garbage() {
        let group = Group::test_group();
        let bad = group.p().sub(&BigUint::one()).to_bytes_be();
        assert!(EncryptionKey::from_bytes(group, &bad).is_err());
        assert!(EncryptionKey::from_bytes(Group::test_group(), &[0]).is_err());
    }
}
