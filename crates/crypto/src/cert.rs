//! Minimal X.509-like certificates and certificate authorities.
//!
//! Fabric-style Membership Service Providers (MSPs) root every identity in
//! an organization CA. This module provides just enough of that machinery:
//! a [`Certificate`] binds a subject (name, organization, network, role) to
//! a Schnorr verification key and optionally an ElGamal encryption key, and
//! is signed by a [`CertificateAuthority`]. Destination networks validate
//! proofs by authenticating signer certificates against the source network's
//! recorded root certificates (paper §4.3).

use crate::error::CryptoError;
use crate::group::Group;
use crate::schnorr::{Signature, SigningKey, VerifyingKey};
use serde::{Deserialize, Serialize};

/// The role a certificate subject plays in its network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertRole {
    /// An organization's root certificate authority.
    RootCa,
    /// A ledger-maintaining peer node.
    Peer,
    /// An ordering-service node.
    Orderer,
    /// A client application (e.g. the SWT Seller Client).
    Client,
}

impl CertRole {
    /// Stable single-byte encoding used in the canonical form.
    pub fn code(self) -> u8 {
        match self {
            CertRole::RootCa => 0,
            CertRole::Peer => 1,
            CertRole::Orderer => 2,
            CertRole::Client => 3,
        }
    }

    /// Decodes [`CertRole::code`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on unknown codes.
    pub fn from_code(code: u8) -> Result<Self, CryptoError> {
        match code {
            0 => Ok(CertRole::RootCa),
            1 => Ok(CertRole::Peer),
            2 => Ok(CertRole::Orderer),
            3 => Ok(CertRole::Client),
            _ => Err(CryptoError::Malformed(format!("unknown cert role {code}"))),
        }
    }
}

/// The identity a certificate attests to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subject {
    /// Human-readable unique name within the organization, e.g. `peer0`.
    pub common_name: String,
    /// Organization (MSP) the subject belongs to, e.g. `seller-org`.
    pub organization: String,
    /// Network the organization belongs to, e.g. `simplified-tradelens`.
    pub network: String,
    /// Role of the subject.
    pub role: CertRole,
}

impl Subject {
    /// Convenience constructor.
    pub fn new(
        common_name: impl Into<String>,
        organization: impl Into<String>,
        network: impl Into<String>,
        role: CertRole,
    ) -> Self {
        Subject {
            common_name: common_name.into(),
            organization: organization.into(),
            network: network.into(),
            role,
        }
    }

    /// Fully-qualified name `network/organization/common_name`.
    pub fn qualified_name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.network, self.organization, self.common_name
        )
    }
}

/// A signed certificate binding a [`Subject`] to its public keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    subject: Subject,
    serial: u64,
    group_name: String,
    /// Schnorr verification key bytes.
    sign_key: Vec<u8>,
    /// Optional ElGamal encryption key bytes (clients that receive
    /// confidential query responses carry one).
    enc_key: Option<Vec<u8>>,
    issuer: Subject,
    signature: Option<Signature>,
}

impl Certificate {
    /// The certified subject.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The issuing CA's subject.
    pub fn issuer(&self) -> &Subject {
        &self.issuer
    }

    /// Monotonic serial number assigned by the issuer.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Name of the group the keys live in.
    pub fn group_name(&self) -> &str {
        &self.group_name
    }

    /// The subject's Schnorr verification key.
    ///
    /// # Errors
    ///
    /// Returns an error if the stored bytes are not a valid group element
    /// or the group name is unknown.
    pub fn verifying_key(&self) -> Result<VerifyingKey, CryptoError> {
        let group = Group::by_name(&self.group_name).ok_or_else(|| {
            CryptoError::InvalidKey(format!("unknown group {:?}", self.group_name))
        })?;
        VerifyingKey::from_bytes(group, &self.sign_key)
    }

    /// The subject's ElGamal encryption key, if present.
    ///
    /// # Errors
    ///
    /// Returns an error if the stored bytes are invalid or the group name is
    /// unknown.
    pub fn encryption_key(&self) -> Result<Option<crate::elgamal::EncryptionKey>, CryptoError> {
        let Some(bytes) = &self.enc_key else {
            return Ok(None);
        };
        let group = Group::by_name(&self.group_name).ok_or_else(|| {
            CryptoError::InvalidKey(format!("unknown group {:?}", self.group_name))
        })?;
        Ok(Some(crate::elgamal::EncryptionKey::from_bytes(
            group, bytes,
        )?))
    }

    /// Canonical byte form covered by the CA signature.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        fn push_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
        out.extend_from_slice(b"tdt-cert-v1");
        push_str(&mut out, &self.subject.common_name);
        push_str(&mut out, &self.subject.organization);
        push_str(&mut out, &self.subject.network);
        out.push(self.subject.role.code());
        out.extend_from_slice(&self.serial.to_be_bytes());
        push_str(&mut out, &self.group_name);
        push_bytes(&mut out, &self.sign_key);
        match &self.enc_key {
            Some(k) => {
                out.push(1);
                push_bytes(&mut out, k);
            }
            None => out.push(0),
        }
        push_str(&mut out, &self.issuer.common_name);
        push_str(&mut out, &self.issuer.organization);
        push_str(&mut out, &self.issuer.network);
        out.push(self.issuer.role.code());
        out
    }

    /// Stable fingerprint: SHA-256 of the canonical bytes, hex encoded.
    pub fn fingerprint(&self) -> String {
        crate::hex_encode(&crate::sha256(&self.canonical_bytes()))
    }

    /// Validates this certificate against an issuing root certificate.
    ///
    /// Checks that (1) the issuer subject matches the root's subject, (2)
    /// the root is actually a CA certificate for the same network, and (3)
    /// the signature over the canonical bytes verifies under the root's key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::CertificateInvalid`] describing the failure.
    pub fn verify(&self, root: &Certificate) -> Result<(), CryptoError> {
        if root.subject.role != CertRole::RootCa {
            return Err(CryptoError::CertificateInvalid(
                "issuer certificate is not a root CA".into(),
            ));
        }
        if self.issuer != root.subject {
            return Err(CryptoError::CertificateInvalid(format!(
                "issuer {:?} does not match root subject {:?}",
                self.issuer.qualified_name(),
                root.subject.qualified_name()
            )));
        }
        if self.subject.network != root.subject.network {
            return Err(CryptoError::CertificateInvalid(
                "subject network differs from issuer network".into(),
            ));
        }
        let signature = self
            .signature
            .as_ref()
            .ok_or_else(|| CryptoError::CertificateInvalid("certificate is unsigned".into()))?;
        let root_key = root.verifying_key()?;
        root_key
            .verify(&self.canonical_bytes(), signature)
            .map_err(|_| CryptoError::CertificateInvalid("bad CA signature".into()))
    }

    /// Validates a self-signed root certificate.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::CertificateInvalid`] if the certificate is not
    /// a self-signed root CA or the self-signature fails.
    pub fn verify_self_signed(&self) -> Result<(), CryptoError> {
        if self.subject.role != CertRole::RootCa || self.issuer != self.subject {
            return Err(CryptoError::CertificateInvalid(
                "not a self-signed root certificate".into(),
            ));
        }
        let signature = self
            .signature
            .as_ref()
            .ok_or_else(|| CryptoError::CertificateInvalid("certificate is unsigned".into()))?;
        let key = self.verifying_key()?;
        key.verify(&self.canonical_bytes(), signature)
            .map_err(|_| CryptoError::CertificateInvalid("bad self-signature".into()))
    }

    /// Raw Schnorr key bytes (for wire encoding).
    pub fn sign_key_bytes(&self) -> &[u8] {
        &self.sign_key
    }

    /// Raw ElGamal key bytes, if present.
    pub fn enc_key_bytes(&self) -> Option<&[u8]> {
        self.enc_key.as_deref()
    }

    /// The CA signature, if the certificate has been signed.
    pub fn signature(&self) -> Option<&Signature> {
        self.signature.as_ref()
    }

    /// Internal constructor used by [`CertificateAuthority`] and tests that
    /// need to craft malformed certificates.
    pub fn assemble(
        subject: Subject,
        serial: u64,
        group_name: String,
        sign_key: Vec<u8>,
        enc_key: Option<Vec<u8>>,
        issuer: Subject,
        signature: Option<Signature>,
    ) -> Self {
        Certificate {
            subject,
            serial,
            group_name,
            sign_key,
            enc_key,
            issuer,
            signature,
        }
    }
}

/// A certificate authority: a self-signed root certificate plus its key.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    cert: Certificate,
    key: SigningKey,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a new root CA for `organization` in `network`, deriving the
    /// key deterministically from the qualified name and `seed`.
    pub fn new(
        network: impl Into<String>,
        organization: impl Into<String>,
        group: Group,
        seed: &[u8],
    ) -> Self {
        let network = network.into();
        let organization = organization.into();
        let subject = Subject::new("ca", organization, network, CertRole::RootCa);
        let mut seed_material = subject.qualified_name().into_bytes();
        seed_material.extend_from_slice(seed);
        let key = SigningKey::from_seed(group.clone(), &seed_material);
        let mut cert = Certificate {
            subject: subject.clone(),
            serial: 0,
            group_name: group.name().to_string(),
            sign_key: key.verifying_key().to_bytes(),
            enc_key: None,
            issuer: subject,
            signature: None,
        };
        cert.signature = Some(key.sign(&cert.canonical_bytes()));
        CertificateAuthority {
            cert,
            key,
            next_serial: 1,
        }
    }

    /// The self-signed root certificate.
    pub fn root_certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Issues a certificate over the given subject and keys.
    ///
    /// The subject's organization and network are forced to match the CA's.
    pub fn issue(
        &mut self,
        common_name: impl Into<String>,
        role: CertRole,
        verifying_key: &VerifyingKey,
        encryption_key: Option<&crate::elgamal::EncryptionKey>,
    ) -> Certificate {
        let subject = Subject::new(
            common_name,
            self.cert.subject.organization.clone(),
            self.cert.subject.network.clone(),
            role,
        );
        let serial = self.next_serial;
        self.next_serial += 1;
        let mut cert = Certificate {
            subject,
            serial,
            group_name: self.cert.group_name.clone(),
            sign_key: verifying_key.to_bytes(),
            enc_key: encryption_key.map(|k| k.to_bytes()),
            issuer: self.cert.subject.clone(),
            signature: None,
        };
        cert.signature = Some(self.key.sign(&cert.canonical_bytes()));
        cert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::DecryptionKey;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new("stl", "seller-org", Group::test_group(), b"seed")
    }

    fn member_key(seed: &[u8]) -> SigningKey {
        SigningKey::from_seed(Group::test_group(), seed)
    }

    #[test]
    fn root_is_self_signed() {
        let ca = ca();
        assert!(ca.root_certificate().verify_self_signed().is_ok());
    }

    #[test]
    fn issued_cert_verifies_against_root() {
        let mut ca = ca();
        let key = member_key(b"peer0");
        let cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        assert!(cert.verify(ca.root_certificate()).is_ok());
        assert_eq!(cert.subject().organization, "seller-org");
        assert_eq!(cert.subject().network, "stl");
    }

    #[test]
    fn cert_with_encryption_key_roundtrips() {
        let mut ca = ca();
        let sk = member_key(b"client");
        let dk = DecryptionKey::from_seed(Group::test_group(), b"client-enc");
        let cert = ca.issue(
            "swt-sc",
            CertRole::Client,
            &sk.verifying_key(),
            Some(&dk.encryption_key()),
        );
        let ek = cert.encryption_key().unwrap().unwrap();
        let ct = ek.encrypt_deterministic(b"data", b"s");
        assert_eq!(dk.decrypt(&ct).unwrap(), b"data");
    }

    #[test]
    fn wrong_root_rejected() {
        let mut ca1 = ca();
        let ca2 = CertificateAuthority::new("stl", "carrier-org", Group::test_group(), b"seed2");
        let key = member_key(b"peer0");
        let cert = ca1.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        assert!(cert.verify(ca2.root_certificate()).is_err());
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut ca = ca();
        let key = member_key(b"peer0");
        let cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let tampered = Certificate::assemble(
            Subject::new("evil-peer", "seller-org", "stl", CertRole::Peer),
            cert.serial(),
            cert.group_name().to_string(),
            cert.sign_key_bytes().to_vec(),
            None,
            cert.issuer().clone(),
            cert.signature().cloned(),
        );
        assert!(tampered.verify(ca.root_certificate()).is_err());
    }

    #[test]
    fn swapped_key_rejected() {
        let mut ca = ca();
        let key = member_key(b"peer0");
        let evil_key = member_key(b"evil");
        let cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let tampered = Certificate::assemble(
            cert.subject().clone(),
            cert.serial(),
            cert.group_name().to_string(),
            evil_key.verifying_key().to_bytes(),
            None,
            cert.issuer().clone(),
            cert.signature().cloned(),
        );
        assert!(tampered.verify(ca.root_certificate()).is_err());
    }

    #[test]
    fn unsigned_cert_rejected() {
        let mut ca = ca();
        let key = member_key(b"peer0");
        let cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let unsigned = Certificate::assemble(
            cert.subject().clone(),
            cert.serial(),
            cert.group_name().to_string(),
            cert.sign_key_bytes().to_vec(),
            None,
            cert.issuer().clone(),
            None,
        );
        assert!(matches!(
            unsigned.verify(ca.root_certificate()),
            Err(CryptoError::CertificateInvalid(_))
        ));
    }

    #[test]
    fn non_ca_cannot_act_as_root() {
        let mut ca = ca();
        let key = member_key(b"peer0");
        let peer_cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let victim = ca.issue("peer1", CertRole::Peer, &key.verifying_key(), None);
        assert!(victim.verify(&peer_cert).is_err());
    }

    #[test]
    fn serials_increment() {
        let mut ca = ca();
        let key = member_key(b"k");
        let c1 = ca.issue("a", CertRole::Peer, &key.verifying_key(), None);
        let c2 = ca.issue("b", CertRole::Peer, &key.verifying_key(), None);
        assert!(c2.serial() > c1.serial());
    }

    #[test]
    fn fingerprint_is_stable_and_unique() {
        let mut ca = ca();
        let key = member_key(b"k");
        let c1 = ca.issue("a", CertRole::Peer, &key.verifying_key(), None);
        let c2 = ca.issue("b", CertRole::Peer, &key.verifying_key(), None);
        assert_eq!(c1.fingerprint(), c1.fingerprint());
        assert_ne!(c1.fingerprint(), c2.fingerprint());
        assert_eq!(c1.fingerprint().len(), 64);
    }

    #[test]
    fn qualified_name_format() {
        let s = Subject::new("peer0", "org", "net", CertRole::Peer);
        assert_eq!(s.qualified_name(), "net/org/peer0");
    }

    #[test]
    fn role_codes_roundtrip() {
        for role in [
            CertRole::RootCa,
            CertRole::Peer,
            CertRole::Orderer,
            CertRole::Client,
        ] {
            assert_eq!(CertRole::from_code(role.code()).unwrap(), role);
        }
        assert!(CertRole::from_code(99).is_err());
    }
}
