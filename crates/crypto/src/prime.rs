//! Miller-Rabin probabilistic primality testing.
//!
//! Used to validate the built-in safe-prime group parameters (a
//! transcription error in a hardcoded prime would silently weaken every
//! signature), and available to applications that import their own group
//! parameters from configuration.

use crate::bigint::{BarrettContext, BigUint};
use crate::drbg::HmacDrbg;

/// Number of Miller-Rabin rounds used by [`is_probable_prime`]. Each round
/// has at most a 1/4 false-positive rate, so 32 rounds leave < 2⁻⁶⁴.
pub const DEFAULT_ROUNDS: u32 = 32;

/// Miller-Rabin with deterministically derived bases (HMAC-DRBG seeded from
/// the candidate), so results are reproducible.
///
/// Returns `true` when `n` is prime with overwhelming probability, `false`
/// when `n` is definitely composite.
pub fn is_probable_prime(n: &BigUint, rounds: u32) -> bool {
    // Small cases.
    if n < &BigUint::from_u64(2) {
        return false;
    }
    for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let p = BigUint::from_u64(small);
        if n == &p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0u32;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    let ctx = BarrettContext::new(n.clone());
    let mut drbg = HmacDrbg::from_parts(&[b"tdt-miller-rabin", &n.to_bytes_be()]);
    'witness: for _ in 0..rounds {
        // Base a in [2, n-2].
        let a = loop {
            let candidate = crate::bigint::random_below(&n_minus_1, &mut drbg);
            if candidate >= two {
                break candidate;
            }
        };
        let mut x = ctx.modexp(&a, &d);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.modmul(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false; // a is a witness of compositeness
    }
    true
}

/// Checks that `p` is a *safe prime*: both `p` and `(p-1)/2` are prime.
pub fn is_safe_prime(p: &BigUint, rounds: u32) -> bool {
    if !p.is_odd() {
        return false;
    }
    let q = p.sub(&BigUint::one()).shr(1);
    is_probable_prime(p, rounds) && is_probable_prime(&q, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_primes_accepted() {
        for p in [2u64, 3, 5, 7, 11, 13, 101, 7919, 1_000_000_007] {
            assert!(is_probable_prime(&n(p), 16), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [0u64, 1, 4, 6, 9, 15, 100, 7917, 1_000_000_008] {
            assert!(!is_probable_prime(&n(c), 16), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that fool a^(n-1) ≡ 1 tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(!is_probable_prime(&n(c), 16), "{c} is Carmichael");
        }
    }

    #[test]
    fn safe_primes_detected() {
        // 23 = 2*11+1, 47 = 2*23+1, 59, 83, 107 are safe primes.
        for p in [23u64, 47, 59, 83, 107, 179, 227] {
            assert!(is_safe_prime(&n(p), 16), "{p} is a safe prime");
        }
        // 13 is prime but (13-1)/2 = 6 is not.
        assert!(!is_safe_prime(&n(13), 16));
        assert!(!is_safe_prime(&n(22), 16));
    }

    #[test]
    fn builtin_group_primes_are_safe() {
        // The transcription guard for the hardcoded MODP constants. A few
        // rounds suffice here; the generator-order tests in `group` provide
        // an independent algebraic check.
        use crate::group::Group;
        for group in [Group::modp_768(), Group::modp_1024()] {
            assert!(
                is_safe_prime(group.p(), 4),
                "{} prime failed the safe-prime check",
                group.name()
            );
        }
    }

    #[test]
    fn builtin_2048_prime_is_safe() {
        // Separate test: the 2048-bit check is the slowest.
        use crate::group::Group;
        let group = Group::modp_2048();
        assert!(is_safe_prime(group.p(), 2));
    }

    #[test]
    fn large_composite_rejected() {
        // Product of two 64-bit-ish primes.
        let p = n(1_000_000_007).mul(&n(1_000_000_009));
        assert!(!is_probable_prime(&p, 8));
    }
}
