//! Schnorr signatures over a MODP subgroup of prime order.
//!
//! This is the signature scheme used by peers to endorse transactions and
//! attest query results (the paper's proofs are arrays of peer signatures
//! over result metadata). Nonces are derived deterministically from the
//! secret key and message via HMAC-DRBG, RFC 6979 style, so signing never
//! needs an entropy source and cannot leak the key through nonce reuse.
//!
//! Scheme (group `G` of order `q`, generator `g`):
//!
//! * keygen: `x ← [1, q)`, `y = g^x`
//! * sign(m): `k = DRBG(x, m)`, `r = g^k`, `e = H(r ‖ y ‖ m) mod q`,
//!   `s = k + e·x mod q`; signature is `(e, s)`
//! * verify: `r' = g^s · y^{-e}`, accept iff `e == H(r' ‖ y ‖ m) mod q`

use crate::bigint::{random_below, BigUint};
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::group::Group;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    e: Vec<u8>,
    s: Vec<u8>,
}

impl Signature {
    /// The challenge scalar `e`, big-endian.
    pub fn e_bytes(&self) -> &[u8] {
        &self.e
    }

    /// The response scalar `s`, big-endian.
    pub fn s_bytes(&self) -> &[u8] {
        &self.s
    }

    /// Reconstructs a signature from its two scalar components.
    pub fn from_scalars(e: Vec<u8>, s: Vec<u8>) -> Self {
        Signature { e, s }
    }

    /// Serializes as `len(e) ‖ e ‖ s` for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.e.len() + self.s.len());
        out.extend_from_slice(&(self.e.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.e);
        out.extend_from_slice(&self.s);
        out
    }

    /// Parses the [`Signature::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < 4 {
            return Err(CryptoError::Malformed("signature too short".into()));
        }
        let e_len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + e_len {
            return Err(CryptoError::Malformed("signature e truncated".into()));
        }
        Ok(Signature {
            e: bytes[4..4 + e_len].to_vec(),
            s: bytes[4 + e_len..].to_vec(),
        })
    }
}

/// A Schnorr signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    group: Group,
    x: BigUint,
    y: BigUint,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("SigningKey")
            .field("group", &self.group.name())
            .field(
                "public",
                &crate::hex_encode(&self.y.to_bytes_be()[..8.min(self.y.to_bytes_be().len())]),
            )
            .finish()
    }
}

impl SigningKey {
    /// Generates a fresh random key pair.
    pub fn generate<R: rand::RngCore>(group: Group, rng: &mut R) -> Self {
        let x = random_below(group.q(), rng);
        let y = group.pow_g(&x);
        SigningKey { group, x, y }
    }

    /// Derives a key pair deterministically from seed material (useful for
    /// reproducible test networks).
    pub fn from_seed(group: Group, seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-signing-key", seed]);
        let x = random_below(group.q(), &mut drbg);
        let y = group.pow_g(&x);
        SigningKey { group, x, y }
    }

    /// The corresponding verification (public) key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            group: self.group.clone(),
            y: self.y.clone(),
        }
    }

    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let x_bytes = self.x.to_bytes_be();
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-schnorr-nonce", &x_bytes, message]);
        let k = random_below(self.group.q(), &mut drbg);
        let r = self.group.pow_g(&k);
        let e = self.challenge(&r, message);
        // s = k + e*x mod q
        let ex = self.group.scalar_mul(&e).by(&self.x);
        let s = self.group.scalar_add(&k, &ex);
        Signature {
            e: e.to_bytes_be(),
            s: s.to_bytes_be(),
        }
    }

    fn challenge(&self, r: &BigUint, message: &[u8]) -> BigUint {
        self.group.hash_to_scalar(&[
            b"tdt-schnorr",
            &self.group.element_to_bytes(r),
            &self.group.element_to_bytes(&self.y),
            message,
        ])
    }

    /// Exports the secret scalar (big-endian). Handle with care.
    pub fn secret_bytes(&self) -> Vec<u8> {
        self.x.to_bytes_be()
    }

    /// Reconstructs a signing key from an exported secret scalar.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the scalar is zero or ≥ q.
    pub fn from_secret_bytes(group: Group, bytes: &[u8]) -> Result<Self, CryptoError> {
        let x = BigUint::from_bytes_be(bytes);
        if x.is_zero() || &x >= group.q() {
            return Err(CryptoError::InvalidKey("scalar out of range".into()));
        }
        let y = group.pow_g(&x);
        Ok(SigningKey { group, x, y })
    }
}

/// A Schnorr verification (public) key.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    group: Group,
    y: BigUint,
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyingKey")
            .field("group", &self.group.name())
            .field("y", &format!("{:.16}", self.y.to_string()))
            .finish()
    }
}

impl VerifyingKey {
    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The public group element `y = g^x`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// Serializes as fixed-width big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.group.element_to_bytes(&self.y)
    }

    /// Parses a public key; checks subgroup membership.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidGroupElement`] if the element is not in
    /// the prime-order subgroup.
    pub fn from_bytes(group: Group, bytes: &[u8]) -> Result<Self, CryptoError> {
        let y = BigUint::from_bytes_be(bytes);
        if !group.is_element(&y) {
            return Err(CryptoError::InvalidGroupElement);
        }
        Ok(VerifyingKey { group, y })
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when verification fails.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let e = BigUint::from_bytes_be(&signature.e);
        let s = BigUint::from_bytes_be(&signature.s);
        if e.is_zero() || &e >= self.group.q() || &s >= self.group.q() {
            return Err(CryptoError::InvalidSignature);
        }
        // r' = g^s * y^(q - e)  (y has order q, so y^(q-e) = y^(-e))
        let gs = self.group.pow_g(&s);
        let y_neg_e = self.group.pow(&self.y, &self.group.q().sub(&e));
        let r_prime = self.group.mul(&gs, &y_neg_e);
        let e_prime = self.group.hash_to_scalar(&[
            b"tdt-schnorr",
            &self.group.element_to_bytes(&r_prime),
            &self.group.element_to_bytes(&self.y),
            message,
        ]);
        // Compare big-endian encodings with ct_eq so rejection timing does
        // not leak how many bytes of the recomputed challenge match.
        if crate::hmac::ct_eq(&e_prime.to_bytes_be(), &e.to_bytes_be()) {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }

    /// Stable short identifier for this key (first 16 hex chars of the
    /// SHA-256 of the encoded element).
    pub fn key_id(&self) -> String {
        let digest = crate::sha256(&self.to_bytes());
        crate::hex_encode(&digest[..8])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SigningKey {
        SigningKey::from_seed(Group::test_group(), b"unit-test-key")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert!(sk.verifying_key().verify(b"message", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert_eq!(
            sk.verifying_key().verify(b"other", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sk = key();
        let other = SigningKey::from_seed(Group::test_group(), b"other-key");
        let sig = sk.sign(b"message");
        assert!(other.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let sk = key();
        let sig = sk.sign(b"message");
        let mut s = sig.s_bytes().to_vec();
        s[0] ^= 1;
        let forged = Signature::from_scalars(sig.e_bytes().to_vec(), s);
        assert!(sk.verifying_key().verify(b"message", &forged).is_err());
    }

    #[test]
    fn deterministic_signatures() {
        let sk = key();
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m1"), sk.sign(b"m2"));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = key().sign(b"roundtrip");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn signature_from_bytes_rejects_truncated() {
        assert!(Signature::from_bytes(&[0, 0]).is_err());
        assert!(Signature::from_bytes(&[0, 0, 0, 99, 1]).is_err());
    }

    #[test]
    fn public_key_roundtrip() {
        let vk = key().verifying_key();
        let parsed = VerifyingKey::from_bytes(Group::test_group(), &vk.to_bytes()).unwrap();
        assert_eq!(parsed, vk);
        // Parsed key still verifies.
        let sig = key().sign(b"x");
        assert!(parsed.verify(b"x", &sig).is_ok());
    }

    #[test]
    fn public_key_rejects_non_element() {
        // p-1 is a quadratic non-residue (p ≡ 3 mod 4), outside the subgroup.
        let group = Group::test_group();
        let bad = group.p().sub(&crate::bigint::BigUint::one()).to_bytes_be();
        let err = VerifyingKey::from_bytes(group, &bad).unwrap_err();
        assert_eq!(err, CryptoError::InvalidGroupElement);
    }

    #[test]
    fn secret_bytes_roundtrip() {
        let sk = key();
        let restored =
            SigningKey::from_secret_bytes(Group::test_group(), &sk.secret_bytes()).unwrap();
        let sig = restored.sign(b"m");
        assert!(sk.verifying_key().verify(b"m", &sig).is_ok());
    }

    #[test]
    fn from_secret_rejects_zero() {
        assert!(SigningKey::from_secret_bytes(Group::test_group(), &[]).is_err());
    }

    #[test]
    fn key_ids_are_distinct() {
        let a = SigningKey::from_seed(Group::test_group(), b"a");
        let b = SigningKey::from_seed(Group::test_group(), b"b");
        assert_ne!(a.verifying_key().key_id(), b.verifying_key().key_id());
        assert_eq!(a.verifying_key().key_id().len(), 16);
    }

    #[test]
    fn generate_with_rng() {
        let mut rng = rand::thread_rng();
        let sk = SigningKey::generate(Group::test_group(), &mut rng);
        let sig = sk.sign(b"fresh");
        assert!(sk.verifying_key().verify(b"fresh", &sig).is_ok());
    }

    #[test]
    fn empty_message_signs() {
        let sk = key();
        let sig = sk.sign(b"");
        assert!(sk.verifying_key().verify(b"", &sig).is_ok());
    }
}
