//! Schnorr signatures over a MODP subgroup of prime order.
//!
//! This is the signature scheme used by peers to endorse transactions and
//! attest query results (the paper's proofs are arrays of peer signatures
//! over result metadata). Nonces are derived deterministically from the
//! secret key and message via HMAC-DRBG, RFC 6979 style, so signing never
//! needs an entropy source and cannot leak the key through nonce reuse.
//!
//! Scheme (group `G` of order `q`, generator `g`):
//!
//! * keygen: `x ← [1, q)`, `y = g^x`
//! * sign(m): `k = DRBG(x, m)`, `r = g^k`, `e = H(r ‖ y ‖ m) mod q`,
//!   `s = k + e·x mod q`; signature is `(e, s)`
//! * verify: `r' = g^s · y^{-e}`, accept iff `e == H(r' ‖ y ‖ m) mod q`

use crate::bigint::{random_below, BigUint};
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::group::{FixedBaseTable, Group};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    e: Vec<u8>,
    s: Vec<u8>,
}

impl Signature {
    /// The challenge scalar `e`, big-endian.
    pub fn e_bytes(&self) -> &[u8] {
        &self.e
    }

    /// The response scalar `s`, big-endian.
    pub fn s_bytes(&self) -> &[u8] {
        &self.s
    }

    /// Reconstructs a signature from its two scalar components.
    pub fn from_scalars(e: Vec<u8>, s: Vec<u8>) -> Self {
        Signature { e, s }
    }

    /// Serializes as `len(e) ‖ e ‖ s` for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.e.len() + self.s.len());
        out.extend_from_slice(&(self.e.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.e);
        out.extend_from_slice(&self.s);
        out
    }

    /// Parses the [`Signature::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < 4 {
            return Err(CryptoError::Malformed("signature too short".into()));
        }
        let e_len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + e_len {
            return Err(CryptoError::Malformed("signature e truncated".into()));
        }
        Ok(Signature {
            e: bytes[4..4 + e_len].to_vec(),
            s: bytes[4 + e_len..].to_vec(),
        })
    }

    /// Decodes both scalars canonically: the single place that defines what
    /// an acceptable wire encoding is, for `e` and `s` symmetrically.
    ///
    /// Canonical means exactly what [`SigningKey::sign`] emits — minimal
    /// big-endian (no leading zero bytes), nonzero, and `< q`. Without the
    /// leading-zero rule the same scalar has many encodings and a signature
    /// becomes malleable on the wire; without the `s != 0` rule rejection
    /// is asymmetric with the `e != 0` check.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] for any non-canonical
    /// component.
    pub fn scalars(&self, group: &Group) -> Result<(BigUint, BigUint), CryptoError> {
        let decode = |bytes: &[u8]| -> Result<BigUint, CryptoError> {
            if bytes.is_empty() || bytes.len() > group.scalar_len() || bytes[0] == 0 {
                return Err(CryptoError::InvalidSignature);
            }
            let v = BigUint::from_bytes_be(bytes);
            if v.is_zero() || &v >= group.q() {
                return Err(CryptoError::InvalidSignature);
            }
            Ok(v)
        };
        Ok((decode(&self.e)?, decode(&self.s)?))
    }
}

/// A Schnorr signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    group: Group,
    x: BigUint,
    y: BigUint,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("SigningKey")
            .field("group", &self.group.name())
            .field(
                "public",
                &crate::hex_encode(&self.y.to_bytes_be()[..8.min(self.y.to_bytes_be().len())]),
            )
            .finish()
    }
}

impl SigningKey {
    /// Generates a fresh random key pair.
    pub fn generate<R: rand::RngCore>(group: Group, rng: &mut R) -> Self {
        let x = random_below(group.q(), rng);
        let y = group.pow_g(&x);
        SigningKey { group, x, y }
    }

    /// Derives a key pair deterministically from seed material (useful for
    /// reproducible test networks).
    pub fn from_seed(group: Group, seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-signing-key", seed]);
        let x = random_below(group.q(), &mut drbg);
        let y = group.pow_g(&x);
        SigningKey { group, x, y }
    }

    /// The corresponding verification (public) key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            group: self.group.clone(),
            y: self.y.clone(),
        }
    }

    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let x_bytes = self.x.to_bytes_be();
        let mut drbg = HmacDrbg::from_parts(&[b"tdt-schnorr-nonce", &x_bytes, message]);
        let k = random_below(self.group.q(), &mut drbg);
        let r = self.group.pow_g(&k);
        let e = self.challenge(&r, message);
        // s = k + e*x mod q
        let ex = self.group.scalar_mul(&e).by(&self.x);
        let s = self.group.scalar_add(&k, &ex);
        Signature {
            e: e.to_bytes_be(),
            s: s.to_bytes_be(),
        }
    }

    fn challenge(&self, r: &BigUint, message: &[u8]) -> BigUint {
        self.group.hash_to_scalar(&[
            b"tdt-schnorr",
            &self.group.element_to_bytes(r),
            &self.group.element_to_bytes(&self.y),
            message,
        ])
    }

    /// Exports the secret scalar (big-endian). Handle with care.
    pub fn secret_bytes(&self) -> Vec<u8> {
        self.x.to_bytes_be()
    }

    /// Reconstructs a signing key from an exported secret scalar.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the scalar is zero or ≥ q.
    pub fn from_secret_bytes(group: Group, bytes: &[u8]) -> Result<Self, CryptoError> {
        let x = BigUint::from_bytes_be(bytes);
        if x.is_zero() || &x >= group.q() {
            return Err(CryptoError::InvalidKey("scalar out of range".into()));
        }
        let y = group.pow_g(&x);
        Ok(SigningKey { group, x, y })
    }
}

/// A Schnorr verification (public) key.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    group: Group,
    y: BigUint,
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyingKey")
            .field("group", &self.group.name())
            .field("y", &format!("{:.16}", self.y.to_string()))
            .finish()
    }
}

impl VerifyingKey {
    /// The group this key lives in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The public group element `y = g^x`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// Serializes as fixed-width big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.group.element_to_bytes(&self.y)
    }

    /// Parses a public key; checks subgroup membership.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidGroupElement`] if the element is not in
    /// the prime-order subgroup.
    pub fn from_bytes(group: Group, bytes: &[u8]) -> Result<Self, CryptoError> {
        let y = BigUint::from_bytes_be(bytes);
        if !group.is_element(&y) {
            return Err(CryptoError::InvalidGroupElement);
        }
        Ok(VerifyingKey { group, y })
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when verification fails.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        self.verify_inner(message, signature, None)
    }

    /// Like [`Self::verify`] but uses a cached fixed-base table for this
    /// key's element `y` (see [`Self::precompute_table`]), turning the
    /// `y^(q-e)` half of the verify equation into one multiplication per
    /// exponent window.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when verification fails.
    pub fn verify_with_table(
        &self,
        message: &[u8],
        signature: &Signature,
        table: &FixedBaseTable,
    ) -> Result<(), CryptoError> {
        self.verify_inner(message, signature, Some(table))
    }

    /// Builds the fixed-base window table for this key's element, for use
    /// with [`Self::verify_with_table`] / [`batch_verify`]. Costs a few
    /// plain verifications to build; callers cache it (see
    /// `certcache::CertChainCache::key_table`).
    pub fn precompute_table(&self) -> FixedBaseTable {
        self.group.precompute_table(&self.y)
    }

    fn verify_inner(
        &self,
        message: &[u8],
        signature: &Signature,
        table: Option<&FixedBaseTable>,
    ) -> Result<(), CryptoError> {
        tdt_obs::profile_scope!("crypto.schnorr_verify");
        let (e, s) = signature.scalars(&self.group)?;
        // r' = g^s * y^(q - e)  (y has order q, so y^(q-e) = y^(-e)),
        // fused into a single fixed-base + windowed multi-exponentiation.
        let r_prime = self
            .group
            .mul_exp_g(&s, &self.y, &self.group.q().sub(&e), table);
        let e_prime = self.challenge(&r_prime, message);
        // Compare *fixed-width* encodings with ct_eq: `to_bytes_be` strips
        // leading zeros, and a length mismatch takes ct_eq's early exit —
        // which would leak the leading-zero structure of the challenge.
        let width = self.group.scalar_len();
        if crate::hmac::ct_eq(
            &e_prime.to_bytes_be_padded(width),
            &e.to_bytes_be_padded(width),
        ) {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }

    fn challenge(&self, r: &BigUint, message: &[u8]) -> BigUint {
        self.group.hash_to_scalar(&[
            b"tdt-schnorr",
            &self.group.element_to_bytes(r),
            &self.group.element_to_bytes(&self.y),
            message,
        ])
    }

    /// Stable short identifier for this key (first 16 hex chars of the
    /// SHA-256 of the encoded element).
    pub fn key_id(&self) -> String {
        let digest = crate::sha256(&self.to_bytes());
        crate::hex_encode(&digest[..8])
    }
}

/// One signature in a [`batch_verify`] call.
#[derive(Debug, Clone)]
pub struct BatchItem<'a> {
    /// Key to verify against.
    pub key: &'a VerifyingKey,
    /// Message the signature covers.
    pub message: &'a [u8],
    /// The signature itself.
    pub signature: &'a Signature,
    /// Optional cached fixed-base table for `key`'s element (see
    /// `certcache::CertChainCache::key_table`).
    pub table: Option<Arc<FixedBaseTable>>,
}

/// Failure modes of [`batch_verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchVerifyError {
    /// An empty batch is a caller bug, not a vacuous success.
    Empty,
    /// Item `index` is keyed in a different group than item 0.
    GroupMismatch {
        /// Index of the mismatched item.
        index: usize,
    },
    /// The batch does not verify; `index` names an offending signature
    /// (pinpointed by bisection — with several bad signatures, one of them).
    Invalid {
        /// Index of an offending item.
        index: usize,
    },
}

impl fmt::Display for BatchVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchVerifyError::Empty => write!(f, "empty signature batch"),
            BatchVerifyError::GroupMismatch { index } => {
                write!(f, "batch item {index} uses a different group")
            }
            BatchVerifyError::Invalid { index } => {
                write!(f, "batch item {index} signature invalid")
            }
        }
    }
}

impl std::error::Error for BatchVerifyError {}

/// Verifies a batch of Schnorr signatures with one randomized aggregate
/// check, pinpointing the offender by bisection on failure.
///
/// For `(e, s)`-form Schnorr the commitment `r'_i = g^{s_i}·y_i^{q-e_i}`
/// must be recomputed per signature (each feeds its own challenge hash),
/// so that part runs as fused multi-exponentiations in parallel across
/// available cores. What *is* aggregated is the challenge comparison: with
/// random 128-bit `z_i`, accept iff `Σ z_i·e'_i ≡ Σ z_i·e_i (mod q)` —
/// a forged item survives only if the attacker predicts `z` (probability
/// ≈ 2⁻¹²⁸). The `z_i` are drawn from an HMAC-DRBG seeded over the whole
/// batch transcript (keys, message digests, signatures), Fiat–Shamir
/// style, so they are fixed only after every item is committed; a counter
/// or other predictable sequence would let an attacker craft offsetting
/// forgeries (Wagner-style) that cancel in the sum.
///
/// # Errors
///
/// [`BatchVerifyError::Empty`] for an empty batch,
/// [`BatchVerifyError::GroupMismatch`] if items span groups, and
/// [`BatchVerifyError::Invalid`] naming an offending index otherwise.
pub fn batch_verify(items: &[BatchItem<'_>]) -> Result<(), BatchVerifyError> {
    tdt_obs::profile_scope!("crypto.batch_verify");
    if items.is_empty() {
        return Err(BatchVerifyError::Empty);
    }
    let group = items[0].key.group();
    for (index, it) in items.iter().enumerate() {
        if it.key.group() != group {
            return Err(BatchVerifyError::GroupMismatch { index });
        }
    }
    // Canonical decode up front; a malformed encoding names its index
    // immediately without costing a group operation.
    let mut scalars = Vec::with_capacity(items.len());
    for (index, it) in items.iter().enumerate() {
        match it.signature.scalars(group) {
            Ok(pair) => scalars.push(pair),
            Err(_) => return Err(BatchVerifyError::Invalid { index }),
        }
    }
    let e_primes = compute_challenges(group, items, &scalars);

    // Randomizers from the batch transcript: reseeding over every key,
    // message and signature means no z_i is known before the whole batch
    // is fixed.
    let mut seed_parts: Vec<Vec<u8>> = vec![b"tdt-batch-verify".to_vec()];
    for it in items {
        seed_parts.push(it.key.to_bytes());
        seed_parts.push(crate::sha256(it.message).to_vec());
        seed_parts.push(it.signature.e_bytes().to_vec());
        seed_parts.push(it.signature.s_bytes().to_vec());
    }
    let part_refs: Vec<&[u8]> = seed_parts.iter().map(Vec::as_slice).collect();
    let mut drbg = HmacDrbg::from_parts(&part_refs);
    let z: Vec<BigUint> = (0..items.len())
        .map(|_| BigUint::from_bytes_be(&drbg.generate_nonzero(16)))
        .collect();

    let width = group.scalar_len();
    if aggregates_match(group, &z, &e_primes, &scalars, 0, items.len(), width) {
        return Ok(());
    }
    let index = bisect(group, &z, &e_primes, &scalars, 0, items.len(), width);
    Err(BatchVerifyError::Invalid { index })
}

/// Recomputes `e'_i = H(g^{s_i}·y_i^{q-e_i} ‖ y_i ‖ m_i)` for every item,
/// striping the multi-exponentiations across available cores.
fn compute_challenges(
    group: &Group,
    items: &[BatchItem<'_>],
    scalars: &[(BigUint, BigUint)],
) -> Vec<BigUint> {
    let n = items.len();
    let challenge_of = |i: usize| -> BigUint {
        let it = &items[i];
        let (e, s) = &scalars[i];
        let r_prime = group.mul_exp_g(s, it.key.element(), &group.q().sub(e), it.table.as_deref());
        it.key.challenge(&r_prime, it.message)
    };
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return (0..n).map(challenge_of).collect();
    }
    let mut slots: Vec<Option<BigUint>> = vec![None; n];
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let challenge_of = &challenge_of;
            scope.spawn(move || {
                for (j, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(challenge_of(ci * chunk + j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("batch challenge worker completed"))
        .collect()
}

/// `Σ z_i·e'_i ≟ Σ z_i·e_i (mod q)` over `lo..hi`, compared on fixed-width
/// encodings.
fn aggregates_match(
    group: &Group,
    z: &[BigUint],
    e_primes: &[BigUint],
    scalars: &[(BigUint, BigUint)],
    lo: usize,
    hi: usize,
    width: usize,
) -> bool {
    let mut lhs = BigUint::zero();
    let mut rhs = BigUint::zero();
    for i in lo..hi {
        lhs = group.scalar_add(&lhs, &group.scalar_mul(&z[i]).by(&e_primes[i]));
        rhs = group.scalar_add(&rhs, &group.scalar_mul(&z[i]).by(&scalars[i].0));
    }
    crate::hmac::ct_eq(
        &lhs.to_bytes_be_padded(width),
        &rhs.to_bytes_be_padded(width),
    )
}

/// Pinpoints an offending index inside a mismatching range: the range sum
/// splits as `left + right (mod q)`, so if the left half matches, the right
/// half must carry a mismatch. Only scalar arithmetic — the expensive
/// exponentiations are already done.
fn bisect(
    group: &Group,
    z: &[BigUint],
    e_primes: &[BigUint],
    scalars: &[(BigUint, BigUint)],
    lo: usize,
    hi: usize,
    width: usize,
) -> usize {
    if hi - lo == 1 {
        return lo;
    }
    let mid = lo + (hi - lo) / 2;
    if !aggregates_match(group, z, e_primes, scalars, lo, mid, width) {
        bisect(group, z, e_primes, scalars, lo, mid, width)
    } else {
        bisect(group, z, e_primes, scalars, mid, hi, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SigningKey {
        SigningKey::from_seed(Group::test_group(), b"unit-test-key")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert!(sk.verifying_key().verify(b"message", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let sk = key();
        let sig = sk.sign(b"message");
        assert_eq!(
            sk.verifying_key().verify(b"other", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sk = key();
        let other = SigningKey::from_seed(Group::test_group(), b"other-key");
        let sig = sk.sign(b"message");
        assert!(other.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let sk = key();
        let sig = sk.sign(b"message");
        let mut s = sig.s_bytes().to_vec();
        s[0] ^= 1;
        let forged = Signature::from_scalars(sig.e_bytes().to_vec(), s);
        assert!(sk.verifying_key().verify(b"message", &forged).is_err());
    }

    #[test]
    fn deterministic_signatures() {
        let sk = key();
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m1"), sk.sign(b"m2"));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = key().sign(b"roundtrip");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn signature_from_bytes_rejects_truncated() {
        assert!(Signature::from_bytes(&[0, 0]).is_err());
        assert!(Signature::from_bytes(&[0, 0, 0, 99, 1]).is_err());
    }

    #[test]
    fn public_key_roundtrip() {
        let vk = key().verifying_key();
        let parsed = VerifyingKey::from_bytes(Group::test_group(), &vk.to_bytes()).unwrap();
        assert_eq!(parsed, vk);
        // Parsed key still verifies.
        let sig = key().sign(b"x");
        assert!(parsed.verify(b"x", &sig).is_ok());
    }

    #[test]
    fn public_key_rejects_non_element() {
        // p-1 is a quadratic non-residue (p ≡ 3 mod 4), outside the subgroup.
        let group = Group::test_group();
        let bad = group.p().sub(&crate::bigint::BigUint::one()).to_bytes_be();
        let err = VerifyingKey::from_bytes(group, &bad).unwrap_err();
        assert_eq!(err, CryptoError::InvalidGroupElement);
    }

    #[test]
    fn secret_bytes_roundtrip() {
        let sk = key();
        let restored =
            SigningKey::from_secret_bytes(Group::test_group(), &sk.secret_bytes()).unwrap();
        let sig = restored.sign(b"m");
        assert!(sk.verifying_key().verify(b"m", &sig).is_ok());
    }

    #[test]
    fn from_secret_rejects_zero() {
        assert!(SigningKey::from_secret_bytes(Group::test_group(), &[]).is_err());
    }

    #[test]
    fn key_ids_are_distinct() {
        let a = SigningKey::from_seed(Group::test_group(), b"a");
        let b = SigningKey::from_seed(Group::test_group(), b"b");
        assert_ne!(a.verifying_key().key_id(), b.verifying_key().key_id());
        assert_eq!(a.verifying_key().key_id().len(), 16);
    }

    #[test]
    fn generate_with_rng() {
        let mut rng = rand::thread_rng();
        let sk = SigningKey::generate(Group::test_group(), &mut rng);
        let sig = sk.sign(b"fresh");
        assert!(sk.verifying_key().verify(b"fresh", &sig).is_ok());
    }

    #[test]
    fn empty_message_signs() {
        let sk = key();
        let sig = sk.sign(b"");
        assert!(sk.verifying_key().verify(b"", &sig).is_ok());
    }

    /// Regression: a challenge whose top byte is zero encodes *shorter*
    /// than `scalar_len` on the wire. The old comparison fed the stripped
    /// encodings to `ct_eq`, whose length check rejected... nothing here —
    /// both sides strip — but leaked the length; the fixed-width compare
    /// must keep such signatures verifying.
    #[test]
    fn verify_accepts_challenge_with_leading_zero_bytes() {
        let sk = key();
        let vk = sk.verifying_key();
        let scalar_len = vk.group().scalar_len();
        let mut found = false;
        for i in 0u32..4096 {
            let msg = format!("leading-zero-search-{i}").into_bytes();
            let sig = sk.sign(&msg);
            if sig.e_bytes().len() < scalar_len {
                assert!(
                    vk.verify(&msg, &sig).is_ok(),
                    "short-challenge signature must verify"
                );
                found = true;
                break;
            }
        }
        assert!(found, "no challenge with leading zero byte in 4096 tries");
    }

    #[test]
    fn verify_rejects_zero_s() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"m");
        for zero_s in [vec![], vec![0u8]] {
            let forged = Signature::from_scalars(sig.e_bytes().to_vec(), zero_s);
            assert_eq!(vk.verify(b"m", &forged), Err(CryptoError::InvalidSignature));
        }
    }

    #[test]
    fn verify_rejects_zero_e() {
        let sk = key();
        let sig = sk.sign(b"m");
        let forged = Signature::from_scalars(vec![0u8], sig.s_bytes().to_vec());
        assert_eq!(
            sk.verifying_key().verify(b"m", &forged),
            Err(CryptoError::InvalidSignature)
        );
    }

    /// A valid signature re-encoded with a leading zero byte (same scalar
    /// value, different bytes) must be rejected: one scalar, one encoding.
    #[test]
    fn verify_rejects_non_canonical_encodings() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"m");

        let mut padded_e = vec![0u8];
        padded_e.extend_from_slice(sig.e_bytes());
        let forged = Signature::from_scalars(padded_e, sig.s_bytes().to_vec());
        assert_eq!(vk.verify(b"m", &forged), Err(CryptoError::InvalidSignature));

        let mut padded_s = vec![0u8];
        padded_s.extend_from_slice(sig.s_bytes());
        let forged = Signature::from_scalars(sig.e_bytes().to_vec(), padded_s);
        assert_eq!(vk.verify(b"m", &forged), Err(CryptoError::InvalidSignature));

        // Oversized: wider than a scalar can canonically be.
        let oversized = vec![1u8; vk.group().scalar_len() + 1];
        let forged = Signature::from_scalars(oversized, sig.s_bytes().to_vec());
        assert_eq!(vk.verify(b"m", &forged), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn verify_with_table_matches_verify() {
        let sk = key();
        let vk = sk.verifying_key();
        let table = vk.precompute_table();
        let sig = sk.sign(b"tabled");
        assert!(vk.verify_with_table(b"tabled", &sig, &table).is_ok());
        let mut s = sig.s_bytes().to_vec();
        s[1] ^= 1;
        let forged = Signature::from_scalars(sig.e_bytes().to_vec(), s);
        assert!(vk.verify_with_table(b"tabled", &forged, &table).is_err());
    }

    fn batch_fixture(n: usize) -> Vec<(VerifyingKey, Vec<u8>, Signature)> {
        (0..n)
            .map(|i| {
                let sk =
                    SigningKey::from_seed(Group::test_group(), format!("batch-key-{i}").as_bytes());
                let msg = format!("batch-message-{i}").into_bytes();
                let sig = sk.sign(&msg);
                (sk.verifying_key(), msg, sig)
            })
            .collect()
    }

    fn as_items(fixture: &[(VerifyingKey, Vec<u8>, Signature)]) -> Vec<BatchItem<'_>> {
        fixture
            .iter()
            .map(|(vk, msg, sig)| BatchItem {
                key: vk,
                message: msg,
                signature: sig,
                table: None,
            })
            .collect()
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let fixture = batch_fixture(5);
        assert_eq!(batch_verify(&as_items(&fixture)), Ok(()));
    }

    #[test]
    fn batch_verify_empty_batch_is_error() {
        assert_eq!(batch_verify(&[]), Err(BatchVerifyError::Empty));
    }

    #[test]
    fn batch_verify_accepts_duplicate_signatures() {
        let sk = key();
        let vk = sk.verifying_key();
        let sig = sk.sign(b"dup");
        let items: Vec<BatchItem<'_>> = (0..3)
            .map(|_| BatchItem {
                key: &vk,
                message: b"dup",
                signature: &sig,
                table: None,
            })
            .collect();
        assert_eq!(batch_verify(&items), Ok(()));
    }

    #[test]
    fn batch_verify_single_item() {
        let fixture = batch_fixture(1);
        assert_eq!(batch_verify(&as_items(&fixture)), Ok(()));
    }

    #[test]
    fn batch_verify_names_forged_index() {
        for forged_at in [0usize, 2, 4] {
            let mut fixture = batch_fixture(5);
            let mut s = fixture[forged_at].2.s_bytes().to_vec();
            s[3] ^= 0x40;
            fixture[forged_at].2 =
                Signature::from_scalars(fixture[forged_at].2.e_bytes().to_vec(), s);
            assert_eq!(
                batch_verify(&as_items(&fixture)),
                Err(BatchVerifyError::Invalid { index: forged_at })
            );
        }
    }

    #[test]
    fn batch_verify_rejects_group_mismatch() {
        let fixture_768 = batch_fixture(1);
        let sk_1024 = SigningKey::from_seed(Group::modp_1024(), b"other-group");
        let vk_1024 = sk_1024.verifying_key();
        let msg = b"cross-group".to_vec();
        let sig_1024 = sk_1024.sign(&msg);
        let mut items = as_items(&fixture_768);
        items.push(BatchItem {
            key: &vk_1024,
            message: &msg,
            signature: &sig_1024,
            table: None,
        });
        assert_eq!(
            batch_verify(&items),
            Err(BatchVerifyError::GroupMismatch { index: 1 })
        );
    }

    #[test]
    fn batch_verify_with_tables() {
        let fixture = batch_fixture(3);
        let items: Vec<BatchItem<'_>> = fixture
            .iter()
            .map(|(vk, msg, sig)| BatchItem {
                key: vk,
                message: msg,
                signature: sig,
                table: Some(Arc::new(vk.precompute_table())),
            })
            .collect();
        assert_eq!(batch_verify(&items), Ok(()));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        // Soundness: a batch with exactly one mutated signature is
        // rejected, and bisection names precisely that index.
        #[test]
        fn prop_batch_rejects_single_forgery(
            n in 2usize..6,
            forged in 0usize..6,
            byte in 1usize..64,
            bit in 0u8..7,
        ) {
            let forged = forged % n;
            let mut fixture = batch_fixture(n);
            let mut s = fixture[forged].2.s_bytes().to_vec();
            let byte = byte % s.len();
            s[byte] ^= 1 << bit;
            let mutated = Signature::from_scalars(fixture[forged].2.e_bytes().to_vec(), s);
            proptest::prop_assume!(mutated != fixture[forged].2);
            fixture[forged].2 = mutated;
            proptest::prop_assert_eq!(
                batch_verify(&as_items(&fixture)),
                Err(BatchVerifyError::Invalid { index: forged })
            );
        }
    }
}
