//! Named multiplicative groups modulo safe primes.
//!
//! A [`Group`] is the quadratic-residue subgroup of `Z_p^*` for a safe prime
//! `p = 2q + 1`. The subgroup has prime order `q = (p-1)/2` and is generated
//! by `g = 4` (the square of 2, guaranteed to be a quadratic residue). All
//! Schnorr and ElGamal operations in this crate run in such a group.
//!
//! Three well-known safe primes are bundled:
//!
//! * [`Group::modp_768`] — Oakley Group 1 (RFC 2409), fast, for tests.
//! * [`Group::modp_1024`] — Oakley Group 2 (RFC 2409), the default.
//! * [`Group::modp_2048`] — RFC 3526 Group 14, for production-equivalent runs.
//!
//! The unit tests verify the subgroup structure (`g^q == 1 mod p`), which
//! guards against transcription errors in the constants.

use crate::bigint::{BarrettContext, BigUint, MontElem, MontgomeryCtx};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Oakley Group 1 prime (768-bit safe prime, RFC 2409 §6.1).
const MODP_768_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

/// Oakley Group 2 prime (1024-bit safe prime, RFC 2409 §6.2).
const MODP_1024_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

/// RFC 3526 Group 14 prime (2048-bit safe prime).
const MODP_2048_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
     020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
     4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
     EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
     98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
     9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
     E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
     3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// A multiplicative group of prime order `q` inside `Z_p^*`.
///
/// Cheap to clone (internally reference-counted): the Barrett contexts for
/// `p` and `q` are shared.
#[derive(Clone)]
pub struct Group {
    inner: Arc<GroupInner>,
}

struct GroupInner {
    name: &'static str,
    p_ctx: BarrettContext,
    q_ctx: BarrettContext,
    p_mont: MontgomeryCtx,
    generator: BigUint,
    element_len: usize,
    scalar_len: usize,
    /// Lazily-bound fixed-base table for the generator, shared process-wide
    /// per prime via [`GENERATOR_TABLES`].
    gen_table: OnceLock<Arc<FixedBaseTable>>,
}

/// One registry slot: (prime bytes, that prime's generator table).
type TableSlot = (Vec<u8>, Arc<FixedBaseTable>);

/// Process-wide registry of generator tables, keyed by the prime's bytes.
/// Groups are rebuilt freely (`Group::by_name` allocates a fresh inner), so
/// the expensive table must outlive any single `Group` instance. Only the
/// three builtin primes ever land here.
static GENERATOR_TABLES: OnceLock<Mutex<Vec<TableSlot>>> = OnceLock::new();

impl fmt::Debug for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Group")
            .field("name", &self.inner.name)
            .field("bits", &self.p().bits())
            .finish()
    }
}

impl PartialEq for Group {
    fn eq(&self, other: &Self) -> bool {
        self.inner.name == other.inner.name && self.p() == other.p()
    }
}

impl Eq for Group {}

impl Group {
    fn from_prime(name: &'static str, p_hex: &str) -> Self {
        let p = BigUint::from_hex(p_hex).expect("builtin prime constant is valid hex");
        let q = p.sub(&BigUint::one()).shr(1);
        let element_len = p.bits().div_ceil(8);
        let scalar_len = q.bits().div_ceil(8);
        let p_mont = MontgomeryCtx::new(p.clone()).expect("builtin prime is odd and > 1");
        Group {
            inner: Arc::new(GroupInner {
                name,
                p_ctx: BarrettContext::new(p),
                q_ctx: BarrettContext::new(q),
                p_mont,
                generator: BigUint::from_u64(4),
                element_len,
                scalar_len,
                gen_table: OnceLock::new(),
            }),
        }
    }

    /// Oakley Group 1 (768-bit). Fast; suitable for tests and benches.
    pub fn modp_768() -> Self {
        Self::from_prime("modp768", MODP_768_HEX)
    }

    /// Oakley Group 2 (1024-bit). The default group.
    pub fn modp_1024() -> Self {
        Self::from_prime("modp1024", MODP_1024_HEX)
    }

    /// RFC 3526 Group 14 (2048-bit). Production-equivalent parameter size.
    pub fn modp_2048() -> Self {
        Self::from_prime("modp2048", MODP_2048_HEX)
    }

    /// The group used throughout the test-suites: the 768-bit Oakley group.
    pub fn test_group() -> Self {
        Self::modp_768()
    }

    /// Looks a group up by its short name (`modp768`, `modp1024`, `modp2048`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "modp768" => Some(Self::modp_768()),
            "modp1024" => Some(Self::modp_1024()),
            "modp2048" => Some(Self::modp_2048()),
            _ => None,
        }
    }

    /// Short identifier of the group.
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// The safe prime `p`.
    pub fn p(&self) -> &BigUint {
        self.inner.p_ctx.modulus()
    }

    /// The subgroup order `q = (p-1)/2`.
    pub fn q(&self) -> &BigUint {
        self.inner.q_ctx.modulus()
    }

    /// The subgroup generator (`4`).
    pub fn generator(&self) -> &BigUint {
        &self.inner.generator
    }

    /// Byte length of a serialized group element.
    pub fn element_len(&self) -> usize {
        self.inner.element_len
    }

    /// Byte length of a canonically-encoded scalar mod `q`.
    pub fn scalar_len(&self) -> usize {
        self.inner.scalar_len
    }

    /// `base^exp mod p` (Montgomery-form exponentiation).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.inner.p_mont.modexp(base, exp)
    }

    /// `g^exp mod p` via the cached fixed-base generator table: one
    /// Montgomery multiplication per 4-bit window of the exponent, no
    /// squarings at all.
    pub fn pow_g(&self, exp: &BigUint) -> BigUint {
        let ctx = &self.inner.p_mont;
        match self.generator_table().pow_mont(ctx, exp) {
            Some(acc) => ctx.from_mont(&acc),
            None => ctx.modexp(&self.inner.generator, exp),
        }
    }

    /// The process-shared fixed-base table for this group's generator,
    /// built on first use and reused by every `Group` handle over the same
    /// prime.
    pub fn generator_table(&self) -> Arc<FixedBaseTable> {
        self.inner
            .gen_table
            .get_or_init(|| {
                let key = self.p().to_bytes_be();
                let registry = GENERATOR_TABLES.get_or_init(|| Mutex::new(Vec::new()));
                {
                    let guard = registry.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Some((_, t)) = guard.iter().find(|(k, _)| *k == key) {
                        return t.clone();
                    }
                }
                // Build outside the lock (seconds at modp2048); a racing
                // builder's duplicate is dropped below.
                let built = Arc::new(self.precompute_table(&self.inner.generator));
                let mut guard = registry.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some((_, t)) = guard.iter().find(|(k, _)| *k == key) {
                    t.clone()
                } else {
                    guard.push((key, built.clone()));
                    built
                }
            })
            .clone()
    }

    /// Builds a fixed-base window table for `base`, sized for exponents up
    /// to the subgroup order `q`. Cost ≈ 15 Montgomery multiplications per
    /// 4-bit window — a few plain modexps — amortized over every later
    /// [`Self::mul_exp_g`] call that uses it.
    pub fn precompute_table(&self, base: &BigUint) -> FixedBaseTable {
        FixedBaseTable::build(&self.inner.p_mont, base, self.q().bits())
    }

    /// Simultaneous multi-exponentiation `Π base_i^exp_i mod p`
    /// (Straus/Shamir, 4-bit windows): the squarings of the accumulator are
    /// shared across all bases instead of being paid once per base.
    ///
    /// Exponents here are public values (signature scalars being verified,
    /// protocol constants), so zero windows may be skipped.
    pub fn multi_exp(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let ctx = &self.inner.p_mont;
        if pairs.is_empty() {
            return BigUint::one();
        }
        let mut scratch = ctx.scratch();
        // Per-base tables of base^0..=15 in Montgomery form.
        let tables: Vec<Vec<MontElem>> = pairs
            .iter()
            .map(|(base, _)| {
                let mut t = Vec::with_capacity(16);
                t.push(ctx.one());
                let base_m = ctx.to_mont(base);
                t.push(base_m.clone());
                for i in 2..16 {
                    t.push(ctx.mont_mul(&t[i - 1], &base_m));
                }
                t
            })
            .collect();
        let nbits = pairs
            .iter()
            .map(|(_, e)| e.bits())
            .max()
            .unwrap_or(0)
            .max(1);
        let nwindows = nbits.div_ceil(4);
        let mut acc = ctx.one();
        for w in (0..nwindows).rev() {
            if w + 1 != nwindows {
                for _ in 0..4 {
                    ctx.mont_sqr_assign(&mut acc, &mut scratch);
                }
            }
            for (i, (_, e)) in pairs.iter().enumerate() {
                let mut digit = 0usize;
                for b in 0..4 {
                    if e.bit(w * 4 + b) {
                        digit |= 1 << b;
                    }
                }
                if digit != 0 {
                    // lint:allow(ct: "multi_exp exponents are public signature scalars; window digits do not carry secrets — see DESIGN.md crypto hot path")
                    ctx.mont_mul_assign(&mut acc, &tables[i][digit], &mut scratch);
                }
            }
        }
        ctx.from_mont(&acc)
    }

    /// The Schnorr verify equation's heavy step: `g^s · y^e mod p`.
    ///
    /// The generator contribution always uses the shared fixed-base table;
    /// the `y` contribution uses `y_table` when the caller has one cached
    /// (per-verifying-key tables live in `certcache`), else a plain
    /// Montgomery exponentiation — the single `mont_mul` joining the halves
    /// replaces a full extra exponentiation.
    pub fn mul_exp_g(
        &self,
        s: &BigUint,
        y: &BigUint,
        e: &BigUint,
        y_table: Option<&FixedBaseTable>,
    ) -> BigUint {
        let ctx = &self.inner.p_mont;
        let g_part = match self.generator_table().pow_mont(ctx, s) {
            Some(v) => v,
            None => ctx.modexp_mont(&ctx.to_mont(&self.inner.generator), s),
        };
        let y_part = match y_table.and_then(|t| t.pow_mont(ctx, e)) {
            Some(v) => v,
            None => ctx.modexp_mont(&ctx.to_mont(y), e),
        };
        ctx.from_mont(&ctx.mont_mul(&g_part, &y_part))
    }

    /// `(a * b) mod p`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.inner.p_ctx.modmul(a, b)
    }

    /// Inverse of a subgroup element: `a^(q-1) mod p` (valid because the
    /// subgroup has prime order `q`).
    pub fn invert(&self, a: &BigUint) -> BigUint {
        let exp = self.q().sub(&BigUint::one());
        self.pow(a, &exp)
    }

    /// Reduces an arbitrary integer modulo the subgroup order `q`.
    pub fn reduce_scalar(&self, x: &BigUint) -> BigUint {
        self.inner.q_ctx.reduce(x)
    }

    /// Scalar arithmetic mod `q`: `(a + b) mod q`.
    pub fn scalar_add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mod_add(b, self.q())
    }

    /// Scalar arithmetic mod `q`: `(a * b) mod q`.
    pub fn scalar_mul<'a>(&'a self, a: &'a BigUint) -> ScalarMul<'a> {
        ScalarMul { group: self, a }
    }

    /// Hashes arbitrary bytes to a nonzero scalar mod `q`.
    pub fn hash_to_scalar(&self, parts: &[&[u8]]) -> BigUint {
        // Expand to 2x the scalar width to keep the mod-q bias negligible,
        // by hashing with two domain-separated counters.
        let mut wide = Vec::with_capacity(64);
        let mut h0 = crate::sha256::Sha256::new();
        h0.update(b"tdt-h2s-0");
        for p in parts {
            h0.update(&(p.len() as u64).to_be_bytes());
            h0.update(p);
        }
        wide.extend_from_slice(&h0.finalize());
        let mut h1 = crate::sha256::Sha256::new();
        h1.update(b"tdt-h2s-1");
        for p in parts {
            h1.update(&(p.len() as u64).to_be_bytes());
            h1.update(p);
        }
        wide.extend_from_slice(&h1.finalize());
        let scalar = self.reduce_scalar(&BigUint::from_bytes_be(&wide));
        if scalar.is_zero() {
            BigUint::one()
        } else {
            scalar
        }
    }

    /// Validates the group parameters: `p` must be a safe prime and the
    /// generator must have order exactly `q`. Expensive (Miller-Rabin over
    /// `p` and `q`); intended for one-time validation of *imported*
    /// parameters — the built-ins are checked by the test-suite.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKey`] describing what failed.
    pub fn validate(&self, rounds: u32) -> Result<(), crate::CryptoError> {
        if !crate::prime::is_safe_prime(self.p(), rounds) {
            return Err(crate::CryptoError::InvalidKey(
                "group modulus is not a safe prime".into(),
            ));
        }
        if self.pow_g(self.q()) != BigUint::one() {
            return Err(crate::CryptoError::InvalidKey(
                "generator does not have order q".into(),
            ));
        }
        Ok(())
    }

    /// Checks that `x` is a valid element of the order-`q` subgroup.
    pub fn is_element(&self, x: &BigUint) -> bool {
        if x.is_zero() || x >= self.p() {
            return false;
        }
        // Subgroup membership: x^q == 1 mod p.
        self.pow(x, self.q()) == BigUint::one()
    }

    /// Serializes a group element as fixed-width big-endian bytes.
    pub fn element_to_bytes(&self, x: &BigUint) -> Vec<u8> {
        x.to_bytes_be_padded(self.inner.element_len)
    }
}

/// Borrowed helper returned by [`Group::scalar_mul`], letting callers finish
/// the multiplication with a second operand.
#[derive(Debug)]
pub struct ScalarMul<'a> {
    group: &'a Group,
    a: &'a BigUint,
}

impl ScalarMul<'_> {
    /// Completes the product `(a * b) mod q`.
    pub fn by(self, b: &BigUint) -> BigUint {
        self.group.inner.q_ctx.reduce(&self.a.mul(b))
    }
}

/// Fixed-base windowed precomputation: `table[w][d] = base^(d·16^w)` in
/// Montgomery form for every 4-bit window `w` of the exponent range and
/// digit `d ∈ 0..16`.
///
/// A fixed-base exponentiation then costs one Montgomery multiplication per
/// window — no squarings — versus four squarings plus a multiplication per
/// window for a plain windowed modexp. Entry `d = 0` stores the Montgomery
/// `1`, so the multiply loop does uniform work for every digit.
///
/// A table is bound to the [`MontgomeryCtx`] (i.e. the prime) it was built
/// with; `pow_mont` is only called through the owning [`Group`].
#[derive(Debug)]
pub struct FixedBaseTable {
    /// Flat `windows × 16` entry array, `table[w * 16 + d]`.
    table: Vec<MontElem>,
    windows: usize,
}

impl FixedBaseTable {
    /// Precomputes the table for exponents of up to `exp_bits` bits.
    pub fn build(ctx: &MontgomeryCtx, base: &BigUint, exp_bits: usize) -> Self {
        let windows = exp_bits.max(1).div_ceil(4);
        let mut table = Vec::with_capacity(windows * 16);
        let mut scratch = ctx.scratch();
        // base_w = base^(16^w); after pushing d = 1..15 the accumulator has
        // been multiplied 15 times and sits at base_w^16 = base^(16^(w+1)),
        // which seeds the next window for free.
        let mut base_w = ctx.to_mont(base);
        for _w in 0..windows {
            table.push(ctx.one());
            let mut acc = base_w.clone();
            for _d in 1..=15 {
                table.push(acc.clone());
                ctx.mont_mul_assign(&mut acc, &base_w, &mut scratch);
            }
            base_w = acc;
        }
        FixedBaseTable { table, windows }
    }

    /// Largest exponent bit-length this table covers.
    pub fn capacity_bits(&self) -> usize {
        self.windows * 4
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.table.len() * self.table.first().map_or(0, |e| e.limb_count() * 8)
    }

    /// `base^exp` in Montgomery form, or `None` when `exp` exceeds the
    /// precomputed range (callers fall back to a plain modexp).
    pub fn pow_mont(&self, ctx: &MontgomeryCtx, exp: &BigUint) -> Option<MontElem> {
        if exp.bits() > self.capacity_bits() {
            return None;
        }
        let mut acc = ctx.one();
        let mut scratch = ctx.scratch();
        for w in 0..self.windows {
            let mut digit = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + b) {
                    digit |= 1 << b;
                }
            }
            // lint:allow(ct: "fixed-base exponents are public verify-side scalars; digit-indexed lookups here do not touch signing secrets — see DESIGN.md crypto hot path")
            ctx.mont_mul_assign(&mut acc, &self.table[w * 16 + digit], &mut scratch);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::random_below;

    /// Transcription guard: the generator must have order exactly q. If a
    /// prime constant were mistyped this would fail with overwhelming
    /// probability.
    #[test]
    fn generator_order_768() {
        let g = Group::modp_768();
        assert_eq!(g.pow_g(g.q()), BigUint::one());
        assert_ne!(g.pow_g(&BigUint::one()), BigUint::one());
    }

    #[test]
    fn generator_order_1024() {
        let g = Group::modp_1024();
        assert_eq!(g.pow_g(g.q()), BigUint::one());
    }

    #[test]
    fn generator_order_2048() {
        let g = Group::modp_2048();
        assert_eq!(g.pow_g(g.q()), BigUint::one());
    }

    #[test]
    fn p_is_odd_and_q_half() {
        for g in [Group::modp_768(), Group::modp_1024(), Group::modp_2048()] {
            assert!(g.p().is_odd());
            assert_eq!(&g.q().shl(1).add(&BigUint::one()), g.p());
        }
    }

    #[test]
    fn invert_is_inverse() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        let x = random_below(g.q(), &mut rng);
        let elem = g.pow_g(&x);
        let inv = g.invert(&elem);
        assert_eq!(g.mul(&elem, &inv), BigUint::one());
    }

    #[test]
    fn elements_are_in_subgroup() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        let x = random_below(g.q(), &mut rng);
        let elem = g.pow_g(&x);
        assert!(g.is_element(&elem));
    }

    #[test]
    fn non_elements_rejected() {
        let g = Group::test_group();
        assert!(!g.is_element(&BigUint::zero()));
        assert!(!g.is_element(g.p()));
        // p ≡ 3 (mod 4), so -1 ≡ p-1 is a quadratic non-residue and hence
        // outside the order-q subgroup.
        assert!(!g.is_element(&g.p().sub(&BigUint::one())));
    }

    #[test]
    fn hash_to_scalar_deterministic_and_domain_separated() {
        let g = Group::test_group();
        let a = g.hash_to_scalar(&[b"hello", b"world"]);
        let b = g.hash_to_scalar(&[b"hello", b"world"]);
        let c = g.hash_to_scalar(&[b"helloworld"]);
        assert_eq!(a, b);
        // Length prefixes must prevent concatenation ambiguity.
        assert_ne!(a, c);
        assert!(&a < g.q());
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(Group::by_name("modp768"), Some(Group::modp_768()));
        assert_eq!(Group::by_name("modp1024"), Some(Group::modp_1024()));
        assert!(Group::by_name("nope").is_none());
    }

    #[test]
    fn element_bytes_fixed_width() {
        let g = Group::modp_768();
        let bytes = g.element_to_bytes(&BigUint::one());
        assert_eq!(bytes.len(), g.element_len());
        assert_eq!(g.element_len(), 96);
    }

    #[test]
    fn validate_accepts_builtin_group() {
        assert!(Group::modp_768().validate(4).is_ok());
    }

    #[test]
    fn scalar_mul_matches_naive() {
        let g = Group::test_group();
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(u64::MAX - 1);
        assert_eq!(g.scalar_mul(&a).by(&b), a.mul(&b).rem(g.q()));
    }

    #[test]
    fn scalar_len_matches_q_width() {
        let g = Group::modp_768();
        assert_eq!(g.scalar_len(), g.q().bits().div_ceil(8));
        assert_eq!(g.scalar_len(), 96);
    }

    #[test]
    fn pow_g_matches_pow_of_generator() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        for _ in 0..8 {
            let e = random_below(g.q(), &mut rng);
            assert_eq!(g.pow_g(&e), g.pow(g.generator(), &e));
        }
        assert_eq!(g.pow_g(&BigUint::zero()), BigUint::one());
        // Full-width exponent (q itself) stays inside the table range.
        assert_eq!(g.pow_g(g.q()), BigUint::one());
    }

    #[test]
    fn fixed_base_table_matches_pow() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        let base = g.pow_g(&random_below(g.q(), &mut rng));
        let table = g.precompute_table(&base);
        assert!(table.capacity_bits() >= g.q().bits());
        assert!(table.approx_bytes() > 0);
        for _ in 0..4 {
            let e = random_below(g.q(), &mut rng);
            let got = g.mul_exp_g(&BigUint::zero(), &base, &e, Some(&table));
            assert_eq!(got, g.pow(&base, &e));
        }
    }

    #[test]
    fn multi_exp_matches_naive() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        let b1 = g.pow_g(&random_below(g.q(), &mut rng));
        let b2 = g.pow_g(&random_below(g.q(), &mut rng));
        let e1 = random_below(g.q(), &mut rng);
        let e2 = random_below(g.q(), &mut rng);
        let got = g.multi_exp(&[(&b1, &e1), (&b2, &e2)]);
        let want = g.mul(&g.pow(&b1, &e1), &g.pow(&b2, &e2));
        assert_eq!(got, want);
        assert_eq!(g.multi_exp(&[]), BigUint::one());
    }

    #[test]
    fn mul_exp_g_matches_naive_with_and_without_table() {
        let g = Group::test_group();
        let mut rng = rand::thread_rng();
        let y = g.pow_g(&random_below(g.q(), &mut rng));
        let s = random_below(g.q(), &mut rng);
        let e = random_below(g.q(), &mut rng);
        let want = g.mul(&g.pow_g(&s), &g.pow(&y, &e));
        assert_eq!(g.mul_exp_g(&s, &y, &e, None), want);
        let table = g.precompute_table(&y);
        assert_eq!(g.mul_exp_g(&s, &y, &e, Some(&table)), want);
    }

    #[test]
    fn generator_table_is_shared_across_group_handles() {
        let a = Group::modp_768().generator_table();
        let b = Group::modp_768().generator_table();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
