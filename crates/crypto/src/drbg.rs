//! Deterministic random bit generator based on HMAC-SHA-256.
//!
//! Follows the HMAC_DRBG construction of NIST SP 800-90A (without the
//! personalization/reseed-counter machinery, which this codebase does not
//! need). Used for deterministic Schnorr nonces (RFC 6979 flavoured) and as
//! a reproducible entropy source in simulations.

use crate::hmac::hmac_sha256;

/// HMAC-DRBG over SHA-256.
///
/// # Example
///
/// ```
/// use tdt_crypto::drbg::HmacDrbg;
///
/// let mut a = HmacDrbg::new(b"seed material");
/// let mut b = HmacDrbg::new(b"seed material");
/// assert_eq!(a.generate(16), b.generate(16)); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiates from several seed components, length-prefixed so that
    /// `(["ab","c"])` and `(["a","bc"])` seed differently.
    pub fn from_parts(parts: &[&[u8]]) -> Self {
        let mut seed = Vec::new();
        for p in parts {
            seed.extend_from_slice(&(p.len() as u64).to_be_bytes());
            seed.extend_from_slice(p);
        }
        Self::new(&seed)
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut material = Vec::with_capacity(33 + provided.map_or(0, <[u8]>::len));
        material.extend_from_slice(&self.value);
        material.push(0x00);
        if let Some(p) = provided {
            material.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &material);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(p) = provided {
            let mut material = Vec::with_capacity(33 + p.len());
            material.extend_from_slice(&self.value);
            material.push(0x01);
            material.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &material);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Produces `len` pseudorandom bytes.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (len - out.len()).min(32);
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        out
    }

    /// Produces `len` pseudorandom bytes that are not all zero, drawing
    /// again until they aren't. Used for batch-verification randomizers,
    /// where a zero coefficient would drop its item from the aggregate
    /// check entirely.
    pub fn generate_nonzero(&mut self, len: usize) -> Vec<u8> {
        assert!(len > 0, "cannot generate a nonzero empty string");
        loop {
            let out = self.generate(len);
            if out.iter().any(|&b| b != 0) {
                return out;
            }
        }
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let bytes = self.generate(buf.len());
        buf.copy_from_slice(&bytes);
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
    }
}

impl rand::RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill(&mut buf);
        u32::from_be_bytes(buf)
    }

    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill(&mut buf);
        u64::from_be_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.generate(7), b.generate(7));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a");
        let mut b = HmacDrbg::new(b"seed-b");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn consecutive_outputs_differ() {
        let mut d = HmacDrbg::new(b"seed");
        let first = d.generate(32);
        let second = d.generate(32);
        assert_ne!(first, second);
    }

    #[test]
    fn from_parts_length_prefixed() {
        let mut a = HmacDrbg::from_parts(&[b"ab", b"c"]);
        let mut b = HmacDrbg::from_parts(&[b"a", b"bc"]);
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        b.reseed(b"extra entropy");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn rngcore_impl_works() {
        let mut d = HmacDrbg::new(b"rng");
        let x = d.next_u64();
        let y = d.next_u64();
        assert_ne!(x, y);
        let mut buf = [0u8; 16];
        d.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 16]);
    }

    #[test]
    fn generate_nonzero_is_nonzero_and_deterministic() {
        let mut a = HmacDrbg::new(b"nz");
        let mut b = HmacDrbg::new(b"nz");
        let x = a.generate_nonzero(16);
        assert!(x.iter().any(|&v| v != 0));
        assert_eq!(x, b.generate_nonzero(16));
    }

    #[test]
    fn generate_spanning_multiple_blocks() {
        let mut d = HmacDrbg::new(b"blocks");
        let out = d.generate(100);
        assert_eq!(out.len(), 100);
        // The three 32-byte blocks must all differ.
        assert_ne!(out[0..32], out[32..64]);
        assert_ne!(out[32..64], out[64..96]);
    }
}
