//! SHA-256 counter-mode stream cipher.
//!
//! The keystream block `i` is `SHA256(key || nonce || i_be64)`. Combined with
//! the encrypt-then-MAC wrapper in [`crate::elgamal`], this provides the
//! symmetric half of the hybrid encryption used for end-to-end
//! confidentiality of query results (paper §4.3).

use crate::sha256::sha256_concat;

/// XORs `data` with the keystream derived from `(key, nonce)`.
///
/// The operation is an involution: applying it twice with the same key and
/// nonce recovers the plaintext.
///
/// # Example
///
/// ```
/// use tdt_crypto::stream::xor_keystream;
///
/// let ct = xor_keystream(&[7u8; 32], b"nonce", b"secret payload");
/// let pt = xor_keystream(&[7u8; 32], b"nonce", &ct);
/// assert_eq!(pt, b"secret payload");
/// ```
pub fn xor_keystream(key: &[u8; 32], nonce: &[u8], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (block_idx, chunk) in data.chunks(32).enumerate() {
        let counter = (block_idx as u64).to_be_bytes();
        let block = sha256_concat(&[b"tdt-stream", key, nonce, &counter]);
        for (i, &b) in chunk.iter().enumerate() {
            out.push(b ^ block[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let key = [0x42u8; 32];
        let data = b"the quick brown fox";
        let ct = xor_keystream(&key, b"n1", data);
        assert_ne!(ct.as_slice(), data.as_slice());
        assert_eq!(xor_keystream(&key, b"n1", &ct), data);
    }

    #[test]
    fn different_nonce_different_ciphertext() {
        let key = [1u8; 32];
        let a = xor_keystream(&key, b"n1", b"hello");
        let b = xor_keystream(&key, b"n2", b"hello");
        assert_ne!(a, b);
    }

    #[test]
    fn different_key_different_ciphertext() {
        let a = xor_keystream(&[1u8; 32], b"n", b"hello");
        let b = xor_keystream(&[2u8; 32], b"n", b"hello");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input() {
        assert!(xor_keystream(&[0u8; 32], b"n", b"").is_empty());
    }

    #[test]
    fn multi_block_inputs() {
        let key = [9u8; 32];
        let data = vec![0xa5u8; 100];
        let ct = xor_keystream(&key, b"nonce", &data);
        assert_eq!(ct.len(), 100);
        assert_eq!(xor_keystream(&key, b"nonce", &ct), data);
        // Keystream blocks must not repeat across the message.
        assert_ne!(ct[0..32], ct[32..64]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(key in any::<[u8; 32]>(),
                          nonce in proptest::collection::vec(any::<u8>(), 0..16),
                          data in proptest::collection::vec(any::<u8>(), 0..300)) {
            let ct = xor_keystream(&key, &nonce, &data);
            prop_assert_eq!(xor_keystream(&key, &nonce, &ct), data);
        }
    }
}
