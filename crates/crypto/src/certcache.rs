//! Thread-safe cache of verified certificate chains.
//!
//! Proof verification authenticates every attestation's signer
//! certificate against the source network's recorded root (paper §4.3).
//! The same few endorser certificates recur across proofs, so the full
//! Schnorr chain validation — two modular exponentiations per check —
//! is wasted work after the first success. A [`CertChainCache`] keyed by
//! the digest of (certificate, signature, root) remembers successful
//! validations until the next configuration epoch.
//!
//! Only *successful* validations are cached: a failure is cheap to
//! reproduce and callers want the real error, not a cached stand-in.
//! The cache key covers the certificate's canonical bytes, its CA
//! signature, and the root's canonical bytes, so a forged signature over
//! the same certificate body can never hit a legitimate entry.

use crate::cert::Certificate;
use crate::error::CryptoError;
use crate::group::FixedBaseTable;
use crate::schnorr::VerifyingKey;
use crate::sha256::sha256;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Maximum number of per-verifying-key fixed-base tables kept alive. A
/// table at modp2048 is ~2 MiB (512 windows × 16 entries × 256 bytes), so
/// the cache is bounded to the handful of endorser keys that recur across
/// proofs; older entries are evicted in insertion order.
const KEY_TABLE_CAP: usize = 8;

/// Shared cache of certificate chains that have already validated.
///
/// Cheap to share via `Arc`; hit/miss counters make the cache's effect
/// observable through monitoring endpoints (e.g. `RelayStats`).
///
/// Alongside the verified-chain set it keeps a small cache of fixed-base
/// window tables for recurring endorser verifying keys ([`Self::key_table`]):
/// both stores answer "have I seen this signer before", so they share the
/// same epoch invalidation — a configuration change drops chains *and*
/// tables together.
#[derive(Debug, Default)]
pub struct CertChainCache {
    verified: Mutex<HashSet<[u8; 32]>>,
    /// Insertion-ordered `(key-element digest, table)` pairs, capped at
    /// [`KEY_TABLE_CAP`].
    key_tables: Mutex<Vec<([u8; 32], Arc<FixedBaseTable>)>>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    table_hits: AtomicU64,
    table_misses: AtomicU64,
}

impl CertChainCache {
    /// Creates an empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(cert: &Certificate, root: &Certificate) -> [u8; 32] {
        let mut material = cert.canonical_bytes();
        match cert.signature() {
            Some(sig) => {
                material.push(1);
                material.extend_from_slice(&sig.to_bytes());
            }
            None => material.push(0),
        }
        material.extend_from_slice(&root.canonical_bytes());
        sha256(&material)
    }

    /// Validates `cert` against `root`, consulting the cache first.
    ///
    /// On a miss the full [`Certificate::verify`] chain validation runs
    /// and, on success, the chain is remembered for the current epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::CertificateInvalid`] from the
    /// underlying validation; failures are never cached.
    pub fn verify_chain(&self, cert: &Certificate, root: &Certificate) -> Result<(), CryptoError> {
        let key = Self::key(cert, root);
        // Capture the epoch before validating. Chain validation runs
        // outside any lock (it is two modular exponentiations), so a
        // configuration change can land mid-validation: without the
        // epoch re-check below, a chain validated under the *old* root
        // set could be inserted *after* `bump_epoch` cleared the table,
        // poisoning the new epoch with a stale trust decision. Acquire
        // pairs with the AcqRel bump so an unchanged epoch also means we
        // observed the matching table state.
        let epoch_at_start = self.epoch.load(Ordering::Acquire);
        {
            let verified = self.verified.lock().unwrap_or_else(PoisonError::into_inner);
            if verified.contains(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cert.verify(root)?;
        let mut verified = self.verified.lock().unwrap_or_else(PoisonError::into_inner);
        if self.epoch.load(Ordering::Acquire) == epoch_at_start {
            verified.insert(key);
        }
        Ok(())
    }

    /// Returns the cached fixed-base table for `vk`'s element, building
    /// and caching it on a miss (outside the lock — a build is seconds of
    /// work at modp2048 and must not stall concurrent lookups).
    ///
    /// The returned `Arc` stays valid across an epoch bump or eviction;
    /// only the cache's reference is dropped.
    pub fn key_table(&self, vk: &VerifyingKey) -> Arc<FixedBaseTable> {
        // Cache id over the *public* key element; nothing secret compares
        // here.
        let table_id = sha256(&vk.to_bytes());
        {
            let tables = self
                .key_tables
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((_, t)) = tables.iter().find(|(id, _)| *id == table_id) {
                self.table_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(t);
            }
        }
        self.table_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(vk.precompute_table());
        let mut tables = self
            .key_tables
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((_, t)) = tables.iter().find(|(id, _)| *id == table_id) {
            // A racing builder won; use its table and drop ours.
            return Arc::clone(t);
        }
        if tables.len() >= KEY_TABLE_CAP {
            tables.remove(0);
        }
        tables.push((table_id, Arc::clone(&built)));
        built
    }

    /// Number of key-table lookups answered from the cache.
    pub fn table_hits(&self) -> u64 {
        self.table_hits.load(Ordering::Relaxed)
    }

    /// Number of key-table lookups that had to build a table.
    pub fn table_misses(&self) -> u64 {
        self.table_misses.load(Ordering::Relaxed)
    }

    /// Number of per-key tables currently cached.
    pub fn table_len(&self) -> usize {
        self.key_tables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Invalidates every cached chain and per-key table, and advances the
    /// epoch. Called when a foreign network configuration is
    /// (re)recorded: a new root set must not honor chains validated — or
    /// reuse signer tables precomputed — under the old one.
    pub fn bump_epoch(&self) -> u64 {
        // Advance the epoch *before* clearing: any validation that began
        // under the old epoch then fails its insert-time re-check in
        // `verify_chain`, so a stale chain can never land after the
        // clear. The reverse order (clear, then bump) leaves a window
        // where old-root validations repopulate the fresh table. An
        // insert under the *new* epoch that slips in before the clear is
        // wiped along with the old entries — a lost cache hit, not a
        // trust violation.
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.verified
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.key_tables
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        epoch
    }

    /// The current configuration epoch (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (full validations) since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of chains currently cached.
    pub fn len(&self) -> usize {
        self.verified
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no chains are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertRole, CertificateAuthority};
    use crate::group::Group;
    use crate::schnorr::SigningKey;
    use std::sync::Arc;

    fn ca(seed: &[u8]) -> CertificateAuthority {
        CertificateAuthority::new("stl", "seller-org", Group::test_group(), seed)
    }

    fn issue(authority: &mut CertificateAuthority, name: &str) -> Certificate {
        let key = SigningKey::from_seed(Group::test_group(), name.as_bytes());
        authority.issue(name, CertRole::Peer, &key.verifying_key(), None)
    }

    #[test]
    fn second_validation_hits() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_not_cached() {
        let mut good = ca(b"a");
        let other = ca(b"b");
        let root = good.root_certificate().clone();
        let wrong_root = other.root_certificate().clone();
        let cert = issue(&mut good, "peer0");
        let cache = CertChainCache::new();
        assert!(cache.verify_chain(&cert, &wrong_root).is_err());
        assert!(cache.verify_chain(&cert, &wrong_root).is_err());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
        // The genuine chain still validates and caches normally.
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn forged_signature_misses_despite_cached_body() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        // Same body, different (stripped) signature: distinct key, and
        // the full validation rejects it.
        let forged = Certificate::assemble(
            cert.subject().clone(),
            cert.serial(),
            cert.group_name().to_string(),
            cert.sign_key_bytes().to_vec(),
            cert.enc_key_bytes().map(<[u8]>::to_vec),
            cert.issuer().clone(),
            None,
        );
        assert!(cache.verify_chain(&forged, &root).is_err());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn epoch_bump_clears() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.bump_epoch(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 1);
        // Next lookup re-validates.
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_lookups_consistent() {
        let mut authority = ca(b"a");
        let root = Arc::new(authority.root_certificate().clone());
        let certs: Vec<_> = (0..4)
            .map(|i| Arc::new(issue(&mut authority, &format!("peer{i}"))))
            .collect();
        let cache = Arc::new(CertChainCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let root = Arc::clone(&root);
                let certs = certs.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        for cert in &certs {
                            cache.verify_chain(cert, &root).unwrap();
                        }
                    }
                });
            }
        });
        // 4 threads x 8 rounds x 4 certs = 128 lookups, >= 4 misses.
        assert_eq!(cache.hits() + cache.misses(), 128);
        assert!(cache.misses() >= 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn key_table_cached_and_reused() {
        let sk = SigningKey::from_seed(Group::test_group(), b"table-key");
        let vk = sk.verifying_key();
        let cache = CertChainCache::new();
        let a = cache.key_table(&vk);
        let b = cache.key_table(&vk);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.table_hits(), cache.table_misses()), (1, 1));
        assert_eq!(cache.table_len(), 1);
        // The cached table actually verifies signatures for this key.
        let sig = sk.sign(b"tabled");
        assert!(vk.verify_with_table(b"tabled", &sig, &a).is_ok());
    }

    #[test]
    fn key_table_epoch_bump_clears() {
        let vk = SigningKey::from_seed(Group::test_group(), b"epoch-key").verifying_key();
        let cache = CertChainCache::new();
        let before = cache.key_table(&vk);
        cache.bump_epoch();
        assert_eq!(cache.table_len(), 0);
        let after = cache.key_table(&vk);
        // Rebuilt, not resurrected — and the old Arc stays usable.
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(cache.table_misses(), 2);
    }

    #[test]
    fn key_table_evicts_in_insertion_order() {
        let cache = CertChainCache::new();
        let keys: Vec<_> = (0..KEY_TABLE_CAP + 1)
            .map(|i| {
                SigningKey::from_seed(Group::test_group(), format!("evict-{i}").as_bytes())
                    .verifying_key()
            })
            .collect();
        for vk in &keys {
            cache.key_table(vk);
        }
        assert_eq!(cache.table_len(), KEY_TABLE_CAP);
        // The first-inserted key was evicted: fetching it misses again.
        let misses_before = cache.table_misses();
        cache.key_table(&keys[0]);
        assert_eq!(cache.table_misses(), misses_before + 1);
        // The most recent key is still cached.
        let hits_before = cache.table_hits();
        cache.key_table(&keys[KEY_TABLE_CAP]);
        assert_eq!(cache.table_hits(), hits_before + 1);
    }
}
