//! Thread-safe cache of verified certificate chains.
//!
//! Proof verification authenticates every attestation's signer
//! certificate against the source network's recorded root (paper §4.3).
//! The same few endorser certificates recur across proofs, so the full
//! Schnorr chain validation — two modular exponentiations per check —
//! is wasted work after the first success. A [`CertChainCache`] keyed by
//! the digest of (certificate, signature, root) remembers successful
//! validations until the next configuration epoch.
//!
//! Only *successful* validations are cached: a failure is cheap to
//! reproduce and callers want the real error, not a cached stand-in.
//! The cache key covers the certificate's canonical bytes, its CA
//! signature, and the root's canonical bytes, so a forged signature over
//! the same certificate body can never hit a legitimate entry.

use crate::cert::Certificate;
use crate::error::CryptoError;
use crate::sha256::sha256;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Shared cache of certificate chains that have already validated.
///
/// Cheap to share via `Arc`; hit/miss counters make the cache's effect
/// observable through monitoring endpoints (e.g. `RelayStats`).
#[derive(Debug, Default)]
pub struct CertChainCache {
    verified: Mutex<HashSet<[u8; 32]>>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CertChainCache {
    /// Creates an empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(cert: &Certificate, root: &Certificate) -> [u8; 32] {
        let mut material = cert.canonical_bytes();
        match cert.signature() {
            Some(sig) => {
                material.push(1);
                material.extend_from_slice(&sig.to_bytes());
            }
            None => material.push(0),
        }
        material.extend_from_slice(&root.canonical_bytes());
        sha256(&material)
    }

    /// Validates `cert` against `root`, consulting the cache first.
    ///
    /// On a miss the full [`Certificate::verify`] chain validation runs
    /// and, on success, the chain is remembered for the current epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::CertificateInvalid`] from the
    /// underlying validation; failures are never cached.
    pub fn verify_chain(&self, cert: &Certificate, root: &Certificate) -> Result<(), CryptoError> {
        let key = Self::key(cert, root);
        {
            let verified = self.verified.lock().unwrap_or_else(PoisonError::into_inner);
            if verified.contains(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cert.verify(root)?;
        self.verified
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key);
        Ok(())
    }

    /// Invalidates every cached chain and advances the epoch. Called
    /// when a foreign network configuration is (re)recorded: a new root
    /// set must not honor chains validated under the old one.
    pub fn bump_epoch(&self) -> u64 {
        self.verified
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current configuration epoch (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Number of cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (full validations) since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of chains currently cached.
    pub fn len(&self) -> usize {
        self.verified
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no chains are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertRole, CertificateAuthority};
    use crate::group::Group;
    use crate::schnorr::SigningKey;
    use std::sync::Arc;

    fn ca(seed: &[u8]) -> CertificateAuthority {
        CertificateAuthority::new("stl", "seller-org", Group::test_group(), seed)
    }

    fn issue(authority: &mut CertificateAuthority, name: &str) -> Certificate {
        let key = SigningKey::from_seed(Group::test_group(), name.as_bytes());
        authority.issue(name, CertRole::Peer, &key.verifying_key(), None)
    }

    #[test]
    fn second_validation_hits() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_not_cached() {
        let mut good = ca(b"a");
        let other = ca(b"b");
        let root = good.root_certificate().clone();
        let wrong_root = other.root_certificate().clone();
        let cert = issue(&mut good, "peer0");
        let cache = CertChainCache::new();
        assert!(cache.verify_chain(&cert, &wrong_root).is_err());
        assert!(cache.verify_chain(&cert, &wrong_root).is_err());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
        // The genuine chain still validates and caches normally.
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn forged_signature_misses_despite_cached_body() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        // Same body, different (stripped) signature: distinct key, and
        // the full validation rejects it.
        let forged = Certificate::assemble(
            cert.subject().clone(),
            cert.serial(),
            cert.group_name().to_string(),
            cert.sign_key_bytes().to_vec(),
            cert.enc_key_bytes().map(<[u8]>::to_vec),
            cert.issuer().clone(),
            None,
        );
        assert!(cache.verify_chain(&forged, &root).is_err());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn epoch_bump_clears() {
        let mut authority = ca(b"a");
        let root = authority.root_certificate().clone();
        let cert = issue(&mut authority, "peer0");
        let cache = CertChainCache::new();
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.bump_epoch(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 1);
        // Next lookup re-validates.
        cache.verify_chain(&cert, &root).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_lookups_consistent() {
        let mut authority = ca(b"a");
        let root = Arc::new(authority.root_certificate().clone());
        let certs: Vec<_> = (0..4)
            .map(|i| Arc::new(issue(&mut authority, &format!("peer{i}"))))
            .collect();
        let cache = Arc::new(CertChainCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let root = Arc::clone(&root);
                let certs = certs.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        for cert in &certs {
                            cache.verify_chain(cert, &root).unwrap();
                        }
                    }
                });
            }
        });
        // 4 threads x 8 rounds x 4 certs = 128 lookups, >= 4 misses.
        assert_eq!(cache.hits() + cache.misses(), 128);
        assert!(cache.misses() >= 4);
        assert_eq!(cache.len(), 4);
    }
}
