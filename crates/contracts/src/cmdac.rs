//! The Configuration Management & Data Acceptance Chaincode (CMDAC).
//!
//! Per the paper (§4.3), Configuration Management and Data Acceptance are
//! combined into one chaincode "for runtime efficiency, as proof
//! verification depends on foreign networks' configurations". The CMDAC:
//!
//! * records foreign network configurations (org root certificates and peer
//!   certificates) on the local ledger,
//! * records verification policies per foreign network/contract/function,
//! * validates proofs: authenticates each attestation's signer against the
//!   recorded foreign configuration, verifies the signature over the
//!   metadata, cross-checks metadata consistency (address, result hash,
//!   nonce), and evaluates the verification policy over the signing orgs,
//! * tracks consumed nonces on the ledger to block replay attacks.
//!
//! # Functions
//!
//! | function | args | returns |
//! |---|---|---|
//! | `RecordForeignConfig` | `[config]` (wire [`NetworkConfig`]) | `""` |
//! | `GetForeignConfig` | `[network_id]` | wire [`NetworkConfig`] |
//! | `ValidateForeignCert` | `[network_id, cert]` | `"ok"` |
//! | `SetVerificationPolicy` | `[network_id, contract, function, policy]` | `""` |
//! | `GetVerificationPolicy` | `[network_id, contract, function]` | wire [`VerificationPolicy`] |
//! | `ValidateProof` | `[network_id, expected_address, proof]` (wire [`Proof`]) | `"ok"` |

use std::sync::Arc;
use tdt_crypto::cert::{CertRole, Certificate};
use tdt_crypto::certcache::CertChainCache;
use tdt_crypto::sha256::sha256;
use tdt_fabric::chaincode::{Chaincode, TxContext};
use tdt_fabric::error::ChaincodeError;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    decode_certificate, NetworkConfig, Proof, ResultMetadata, VerificationPolicy,
};

/// The CMDAC system contract.
///
/// Chain validation of attestation signer certificates goes through a
/// [`CertChainCache`]: the same few endorser certificates recur across
/// proofs, and re-running the Schnorr chain check on every attestation
/// dominates `ValidateProof`. The cache is invalidated (epoch bump)
/// whenever `RecordForeignConfig` changes the trusted root set.
#[derive(Debug, Clone, Default)]
pub struct Cmdac {
    cert_cache: Arc<CertChainCache>,
}

impl Cmdac {
    /// Creates the contract with a private certificate-chain cache.
    pub fn new() -> Self {
        Cmdac::default()
    }

    /// Creates the contract sharing `cert_cache` with other components
    /// (e.g. a relay exposing the hit rate through its stats).
    pub fn with_cert_cache(cert_cache: Arc<CertChainCache>) -> Self {
        Cmdac { cert_cache }
    }

    /// The certificate-chain cache used by proof validation.
    pub fn cert_cache(&self) -> &Arc<CertChainCache> {
        &self.cert_cache
    }

    fn config_key(network_id: &str) -> String {
        format!("config:{network_id}")
    }

    fn policy_key(network_id: &str, contract: &str, function: &str) -> String {
        format!("vpolicy:{network_id}:{contract}:{function}")
    }

    fn nonce_key(network_id: &str, nonce: &[u8]) -> String {
        format!("nonce:{network_id}:{}", tdt_crypto::hex_encode(nonce))
    }

    fn load_config(
        ctx: &mut TxContext<'_>,
        network_id: &str,
    ) -> Result<NetworkConfig, ChaincodeError> {
        let bytes = ctx
            .get_state(&Self::config_key(network_id))
            .ok_or_else(|| {
                ChaincodeError::NotFound(format!(
                    "no configuration recorded for network {network_id:?}"
                ))
            })?;
        NetworkConfig::decode_from_slice(&bytes)
            .map_err(|e| ChaincodeError::Internal(format!("stored config corrupt: {e}")))
    }

    /// Validates `cert` against the recorded configuration of `network_id`:
    /// the claimed organization must exist there and the certificate must
    /// chain to that organization's recorded root. Successful chain
    /// validations are served from the cache within a config epoch.
    fn validate_cert_against_config(
        &self,
        config: &NetworkConfig,
        cert: &Certificate,
    ) -> Result<(), ChaincodeError> {
        if cert.subject().network != config.network_id {
            return Err(ChaincodeError::AccessDenied(format!(
                "certificate network {:?} does not match config network {:?}",
                cert.subject().network,
                config.network_id
            )));
        }
        let org = config
            .orgs
            .iter()
            .find(|o| o.org_id == cert.subject().organization)
            .ok_or_else(|| {
                ChaincodeError::AccessDenied(format!(
                    "organization {:?} not in recorded configuration of {:?}",
                    cert.subject().organization,
                    config.network_id
                ))
            })?;
        let root = decode_certificate(&org.root_cert)
            .map_err(|e| ChaincodeError::Internal(format!("stored root cert corrupt: {e}")))?;
        self.cert_cache
            .verify_chain(cert, &root)
            .map_err(|e| ChaincodeError::AccessDenied(format!("certificate invalid: {e}")))
    }

    fn validate_proof(
        &self,
        ctx: &mut TxContext<'_>,
        network_id: &str,
        expected_address: &str,
        proof: &Proof,
    ) -> Result<(), ChaincodeError> {
        let config = Self::load_config(ctx, network_id)?;
        // Look up the verification policy for the queried address
        // (network:ledger:contract:function — policy is keyed on the last two).
        let mut parts = expected_address.split(':');
        let (_net, _ledger, contract, function) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let policy_bytes = ctx
            .get_state(&Self::policy_key(network_id, contract, function))
            .ok_or_else(|| {
                ChaincodeError::NotFound(format!(
                    "no verification policy recorded for {network_id}:{contract}:{function}"
                ))
            })?;
        let policy = VerificationPolicy::decode_from_slice(&policy_bytes)
            .map_err(|e| ChaincodeError::Internal(format!("stored policy corrupt: {e}")))?;

        if proof.address != expected_address {
            return Err(ChaincodeError::BadRequest(format!(
                "proof address {:?} does not match expected {:?}",
                proof.address, expected_address
            )));
        }
        if proof.attestations.is_empty() {
            return Err(ChaincodeError::BadRequest(
                "proof has no attestations".into(),
            ));
        }

        let result_hash = sha256(&proof.result);
        let mut endorsing_orgs: Vec<String> = Vec::new();
        let mut seen_peers: Vec<String> = Vec::new();
        // Signature checks are deferred into one batch verification after
        // the structural pass; each key rides with its cached fixed-base
        // table (same epoch lifetime as the cert-chain cache).
        let mut batch_keys = Vec::with_capacity(proof.attestations.len());
        let mut batch_sigs = Vec::with_capacity(proof.attestations.len());
        for (i, att) in proof.attestations.iter().enumerate() {
            if att.metadata_encrypted {
                return Err(ChaincodeError::BadRequest(format!(
                    "attestation {i} metadata still encrypted; decrypt before submission"
                )));
            }
            let cert = decode_certificate(&att.signer_cert).map_err(|e| {
                ChaincodeError::BadRequest(format!("attestation {i} certificate malformed: {e}"))
            })?;
            // Authenticate the signer against the recorded source config.
            self.validate_cert_against_config(&config, &cert)?;
            if cert.subject().role != CertRole::Peer {
                return Err(ChaincodeError::AccessDenied(format!(
                    "attestation {i} signer {:?} is not a peer",
                    cert.subject().qualified_name()
                )));
            }
            // Decode the signer key and signature; verification happens in
            // the batch below.
            let vk = cert.verifying_key().map_err(|e| {
                ChaincodeError::BadRequest(format!("attestation {i} key invalid: {e}"))
            })?;
            let signature =
                tdt_crypto::schnorr::Signature::from_bytes(&att.signature).map_err(|e| {
                    ChaincodeError::BadRequest(format!("attestation {i} signature malformed: {e}"))
                })?;
            let table = self.cert_cache.key_table(&vk);
            batch_keys.push((vk, table));
            batch_sigs.push(signature);
            // Check metadata consistency with the proof envelope.
            let metadata = ResultMetadata::decode_from_slice(&att.metadata).map_err(|e| {
                ChaincodeError::BadRequest(format!("attestation {i} metadata malformed: {e}"))
            })?;
            if metadata.request_id != proof.request_id {
                return Err(ChaincodeError::BadRequest(format!(
                    "attestation {i} request id mismatch"
                )));
            }
            if metadata.address != expected_address {
                return Err(ChaincodeError::BadRequest(format!(
                    "attestation {i} address {:?} does not match {:?}",
                    metadata.address, expected_address
                )));
            }
            if metadata.nonce != proof.nonce {
                return Err(ChaincodeError::BadRequest(format!(
                    "attestation {i} nonce mismatch"
                )));
            }
            if metadata.result_hash != result_hash {
                return Err(ChaincodeError::AccessDenied(format!(
                    "attestation {i} result hash does not match the submitted result"
                )));
            }
            if metadata.org_id != cert.subject().organization {
                return Err(ChaincodeError::BadRequest(format!(
                    "attestation {i} org id does not match signer certificate"
                )));
            }
            let peer_name = cert.subject().qualified_name();
            if seen_peers.contains(&peer_name) {
                return Err(ChaincodeError::BadRequest(format!(
                    "duplicate attestation from peer {peer_name:?}"
                )));
            }
            seen_peers.push(peer_name);
            if !endorsing_orgs.contains(&metadata.org_id) {
                endorsing_orgs.push(metadata.org_id);
            }
        }
        // One randomized batch verification over every attestation
        // signature; on failure, bisection names the offending index.
        let items: Vec<tdt_crypto::schnorr::BatchItem<'_>> = batch_keys
            .iter()
            .zip(&batch_sigs)
            .zip(&proof.attestations)
            .map(|(((vk, table), sig), att)| tdt_crypto::schnorr::BatchItem {
                key: vk,
                message: &att.metadata,
                signature: sig,
                table: Some(Arc::clone(table)),
            })
            .collect();
        match tdt_crypto::schnorr::batch_verify(&items) {
            Ok(()) => {}
            Err(tdt_crypto::schnorr::BatchVerifyError::Invalid { index }) => {
                return Err(ChaincodeError::AccessDenied(format!(
                    "attestation {index} signature invalid"
                )))
            }
            Err(tdt_crypto::schnorr::BatchVerifyError::GroupMismatch { index }) => {
                return Err(ChaincodeError::AccessDenied(format!(
                    "attestation {index} signer key uses a mismatched group"
                )))
            }
            Err(tdt_crypto::schnorr::BatchVerifyError::Empty) => {
                return Err(ChaincodeError::BadRequest(
                    "proof has no attestations".into(),
                ))
            }
        }
        if !policy.expression.is_satisfied(&endorsing_orgs) {
            return Err(ChaincodeError::AccessDenied(format!(
                "verification policy not satisfied by orgs {endorsing_orgs:?}"
            )));
        }
        // Replay protection: the nonce must be fresh, and consuming it is
        // part of this transaction's write set (paper §4.3).
        let nonce_key = Self::nonce_key(network_id, &proof.nonce);
        if ctx.get_state(&nonce_key).is_some() {
            return Err(ChaincodeError::AccessDenied(
                "replay detected: nonce already consumed".into(),
            ));
        }
        ctx.put_state(&nonce_key, proof.request_id.clone().into_bytes());
        Ok(())
    }
}

impl Chaincode for Cmdac {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "RecordForeignConfig" => {
                let [config_bytes] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "RecordForeignConfig expects [config]".into(),
                    ));
                };
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify configuration".into(),
                    ));
                }
                let config = NetworkConfig::decode_from_slice(config_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("config malformed: {e}")))?;
                if config.network_id.is_empty() {
                    return Err(ChaincodeError::BadRequest(
                        "config missing network id".into(),
                    ));
                }
                ctx.put_state(&Self::config_key(&config.network_id), config_bytes.clone());
                // New trusted root set: chains validated under the old
                // configuration must not be honored.
                self.cert_cache.bump_epoch();
                Ok(Vec::new())
            }
            "GetForeignConfig" => {
                let [network_id] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "GetForeignConfig expects [network_id]".into(),
                    ));
                };
                let network_id = String::from_utf8_lossy(network_id).into_owned();
                ctx.get_state(&Self::config_key(&network_id))
                    .ok_or_else(|| {
                        ChaincodeError::NotFound(format!("no configuration for {network_id:?}"))
                    })
            }
            "ValidateForeignCert" => {
                let [network_id, cert_bytes] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "ValidateForeignCert expects [network_id, cert]".into(),
                    ));
                };
                let network_id = String::from_utf8_lossy(network_id).into_owned();
                let config = Self::load_config(ctx, &network_id)?;
                let cert = decode_certificate(cert_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("cert malformed: {e}")))?;
                self.validate_cert_against_config(&config, &cert)?;
                Ok(b"ok".to_vec())
            }
            "SetVerificationPolicy" => {
                let [network_id, contract, func, policy_bytes] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "SetVerificationPolicy expects [network_id, contract, function, policy]"
                            .into(),
                    ));
                };
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify policies".into(),
                    ));
                }
                // Validate the policy parses before recording it.
                VerificationPolicy::decode_from_slice(policy_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("policy malformed: {e}")))?;
                let key = Self::policy_key(
                    &String::from_utf8_lossy(network_id),
                    &String::from_utf8_lossy(contract),
                    &String::from_utf8_lossy(func),
                );
                ctx.put_state(&key, policy_bytes.clone());
                Ok(Vec::new())
            }
            "GetVerificationPolicy" => {
                let [network_id, contract, func] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "GetVerificationPolicy expects [network_id, contract, function]".into(),
                    ));
                };
                let key = Self::policy_key(
                    &String::from_utf8_lossy(network_id),
                    &String::from_utf8_lossy(contract),
                    &String::from_utf8_lossy(func),
                );
                ctx.get_state(&key)
                    .ok_or_else(|| ChaincodeError::NotFound("no verification policy".into()))
            }
            "ValidateProof" => {
                let [network_id, expected_address, proof_bytes] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "ValidateProof expects [network_id, expected_address, proof]".into(),
                    ));
                };
                let network_id = String::from_utf8_lossy(network_id).into_owned();
                let expected_address = String::from_utf8_lossy(expected_address).into_owned();
                let proof = Proof::decode_from_slice(proof_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("proof malformed: {e}")))?;
                self.validate_proof(ctx, &network_id, &expected_address, &proof)?;
                Ok(b"ok".to_vec())
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::Arc;
    use tdt_fabric::chaincode::{ChaincodeRegistry, PeerInfo, Proposal};
    use tdt_fabric::msp::{Identity, Msp};

    use tdt_ledger::state::WorldState;
    use tdt_wire::messages::{encode_certificate, Attestation, OrgConfig};

    struct Fixture {
        state: WorldState,
        registry: ChaincodeRegistry,
        client: Identity,
        /// Source-network peer identities: (org, identity).
        source_peers: Vec<(String, Identity)>,
        source_config: NetworkConfig,
    }

    fn fixture() -> Fixture {
        // Local (destination) network identity for invoking the CMDAC.
        let mut local_msp = Msp::new(
            "swt",
            "seller-bank-org",
            tdt_crypto::group::Group::test_group(),
            b"local",
        );
        let client = local_msp.enroll("swt-sc", tdt_crypto::cert::CertRole::Client, true);
        // Source network: two orgs, one peer each.
        let mut seller_msp = Msp::new(
            "stl",
            "seller-org",
            tdt_crypto::group::Group::test_group(),
            b"s1",
        );
        let mut carrier_msp = Msp::new(
            "stl",
            "carrier-org",
            tdt_crypto::group::Group::test_group(),
            b"s2",
        );
        let p1 = seller_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        let p2 = carrier_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        let source_config = NetworkConfig {
            network_id: "stl".into(),
            group_name: "modp768".into(),
            orgs: vec![
                OrgConfig {
                    org_id: "seller-org".into(),
                    root_cert: encode_certificate(seller_msp.root_certificate()),
                    peer_certs: vec![encode_certificate(p1.certificate())],
                },
                OrgConfig {
                    org_id: "carrier-org".into(),
                    root_cert: encode_certificate(carrier_msp.root_certificate()),
                    peer_certs: vec![encode_certificate(p2.certificate())],
                },
            ],
        };
        let mut registry = ChaincodeRegistry::new();
        registry.deploy("CMDAC", Arc::new(Cmdac::new()));
        Fixture {
            state: WorldState::new(),
            registry,
            client,
            source_peers: vec![
                ("seller-org".to_string(), p1),
                ("carrier-org".to_string(), p2),
            ],
            source_config,
        }
    }

    fn invoke(
        f: &mut Fixture,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, ChaincodeError> {
        let proposal = Proposal::new(
            "tx",
            "ch",
            "CMDAC",
            function,
            args.clone(),
            f.client.certificate().clone(),
        );
        let peer = PeerInfo {
            peer_id: "swt/seller-bank-org/peer0".into(),
            org_id: "seller-bank-org".into(),
            network_id: "swt".into(),
            ledger_height: 1,
        };
        let mut ctx = TxContext::new(&f.state, &f.registry, &proposal, peer);
        let result = Cmdac::new().invoke(&mut ctx, function, &args);
        // Commit the writes so subsequent invocations observe them.
        let rwset = ctx.into_rwset();
        if result.is_ok() {
            f.state.apply(&rwset, tdt_ledger::rwset::Version::new(1, 0));
        }
        result
    }

    fn record_config(f: &mut Fixture) {
        let bytes = f.source_config.encode_to_vec();
        invoke(f, "RecordForeignConfig", vec![bytes]).unwrap();
    }

    fn record_policy(f: &mut Fixture) {
        let policy = VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]);
        invoke(
            f,
            "SetVerificationPolicy",
            vec![
                b"stl".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
                policy.encode_to_vec(),
            ],
        )
        .unwrap();
    }

    const ADDRESS: &str = "stl:trade-channel:TradeLensCC:GetBillOfLading";

    fn make_proof(f: &Fixture, result: &[u8], nonce: &[u8]) -> Proof {
        let attestations = f
            .source_peers
            .iter()
            .map(|(org, identity)| {
                let metadata = ResultMetadata {
                    request_id: "req-1".into(),
                    address: ADDRESS.into(),
                    result_hash: sha256(result).to_vec(),
                    nonce: nonce.to_vec(),
                    peer_id: identity.qualified_name(),
                    org_id: org.clone(),
                    ledger_height: 5,
                    committed_block_plus_one: 0,
                    txid: String::new(),
                };
                let metadata_bytes = metadata.encode_to_vec();
                let signature = identity.sign(&metadata_bytes);
                Attestation {
                    signer_cert: encode_certificate(identity.certificate()),
                    signature: signature.to_bytes(),
                    metadata: metadata_bytes,
                    metadata_encrypted: false,
                }
            })
            .collect();
        Proof {
            request_id: "req-1".into(),
            address: ADDRESS.into(),
            nonce: nonce.to_vec(),
            result: result.to_vec(),
            attestations,
        }
    }

    fn validate(f: &mut Fixture, proof: &Proof) -> Result<Vec<u8>, ChaincodeError> {
        invoke(
            f,
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                ADDRESS.as_bytes().to_vec(),
                proof.encode_to_vec(),
            ],
        )
    }

    #[test]
    fn config_record_and_get() {
        let mut f = fixture();
        record_config(&mut f);
        let bytes = invoke(&mut f, "GetForeignConfig", vec![b"stl".to_vec()]).unwrap();
        let config = NetworkConfig::decode_from_slice(&bytes).unwrap();
        assert_eq!(config, f.source_config);
    }

    #[test]
    fn get_missing_config_fails() {
        let mut f = fixture();
        assert!(matches!(
            invoke(&mut f, "GetForeignConfig", vec![b"nope".to_vec()]),
            Err(ChaincodeError::NotFound(_))
        ));
    }

    #[test]
    fn validate_foreign_cert_ok_and_bad() {
        let mut f = fixture();
        record_config(&mut f);
        let good = encode_certificate(f.source_peers[0].1.certificate());
        assert_eq!(
            invoke(&mut f, "ValidateForeignCert", vec![b"stl".to_vec(), good]).unwrap(),
            b"ok"
        );
        // A cert from an unrecorded network/org fails.
        let mut rogue_msp = Msp::new(
            "stl",
            "rogue-org",
            tdt_crypto::group::Group::test_group(),
            b"r",
        );
        let rogue = rogue_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        assert!(matches!(
            invoke(
                &mut f,
                "ValidateForeignCert",
                vec![b"stl".to_vec(), encode_certificate(rogue.certificate())]
            ),
            Err(ChaincodeError::AccessDenied(_))
        ));
    }

    #[test]
    fn policy_roundtrip() {
        let mut f = fixture();
        record_policy(&mut f);
        let bytes = invoke(
            &mut f,
            "GetVerificationPolicy",
            vec![
                b"stl".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
        )
        .unwrap();
        let policy = VerificationPolicy::decode_from_slice(&bytes).unwrap();
        assert_eq!(policy.expression.organizations().len(), 2);
    }

    #[test]
    fn valid_proof_accepted() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        assert_eq!(validate(&mut f, &proof).unwrap(), b"ok");
    }

    #[test]
    fn replayed_nonce_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        validate(&mut f, &proof).unwrap();
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("replay")));
    }

    #[test]
    fn fresh_nonce_after_replayed_one_accepted() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let p1 = make_proof(&f, b"B/L-1001", &[7; 16]);
        validate(&mut f, &p1).unwrap();
        let p2 = make_proof(&f, b"B/L-1001", &[8; 16]);
        assert!(validate(&mut f, &p2).is_ok());
    }

    #[test]
    fn tampered_result_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        proof.result = b"FORGED".to_vec();
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("result hash")));
    }

    #[test]
    fn policy_unsatisfied_with_single_org() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        proof.attestations.truncate(1); // only seller-org
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("policy")));
    }

    #[test]
    fn duplicate_peer_attestations_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        let dup = proof.attestations[0].clone();
        proof.attestations.push(dup);
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(m) if m.contains("duplicate")));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        // Swap attestation 0's signature with attestation 1's.
        proof.attestations[0].signature = proof.attestations[1].signature.clone();
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("signature")));
    }

    #[test]
    fn non_peer_signer_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        // Have a *client* of seller-org sign instead of a peer.
        let mut seller_msp = Msp::new(
            "stl",
            "seller-org",
            tdt_crypto::group::Group::test_group(),
            b"s1",
        );
        let _peer = seller_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        let client_id = seller_msp.enroll("user", tdt_crypto::cert::CertRole::Client, false);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        let metadata = ResultMetadata::decode_from_slice(&proof.attestations[0].metadata).unwrap();
        let md_bytes = metadata.encode_to_vec();
        proof.attestations[0] = Attestation {
            signer_cert: encode_certificate(client_id.certificate()),
            signature: client_id.sign(&md_bytes).to_bytes(),
            metadata: md_bytes,
            metadata_encrypted: false,
        };
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("not a peer")));
    }

    #[test]
    fn wrong_address_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        let err = invoke(
            &mut f,
            "ValidateProof",
            vec![
                b"stl".to_vec(),
                b"stl:trade-channel:TradeLensCC:GetShipment".to_vec(),
                proof.encode_to_vec(),
            ],
        )
        .unwrap_err();
        // Either no policy for that address or an address mismatch; both reject.
        assert!(matches!(
            err,
            ChaincodeError::NotFound(_) | ChaincodeError::BadRequest(_)
        ));
    }

    #[test]
    fn nonce_mismatch_in_metadata_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        proof.nonce = vec![9; 16]; // envelope nonce differs from signed metadata
        let err = validate(&mut f, &proof).unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(m) if m.contains("nonce")));
    }

    #[test]
    fn empty_proof_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        proof.attestations.clear();
        assert!(matches!(
            validate(&mut f, &proof),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn encrypted_metadata_rejected() {
        let mut f = fixture();
        record_config(&mut f);
        record_policy(&mut f);
        let mut proof = make_proof(&f, b"B/L-1001", &[7; 16]);
        proof.attestations[0].metadata_encrypted = true;
        assert!(matches!(
            validate(&mut f, &proof),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn relay_cannot_modify_config_or_policy() {
        let f = fixture();
        let proposal = Proposal::new(
            "tx",
            "ch",
            "CMDAC",
            "RecordForeignConfig",
            vec![f.source_config.encode_to_vec()],
            f.client.certificate().clone(),
        )
        .as_relay_query();
        let peer = PeerInfo {
            peer_id: "p".into(),
            org_id: "o".into(),
            network_id: "swt".into(),
            ledger_height: 1,
        };
        let mut ctx = TxContext::new(&f.state, &f.registry, &proposal, peer);
        let err = Cmdac::new()
            .invoke(
                &mut ctx,
                "RecordForeignConfig",
                &[f.source_config.encode_to_vec()],
            )
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn unknown_function_rejected() {
        let mut f = fixture();
        assert!(matches!(
            invoke(&mut f, "Nope", vec![]),
            Err(ChaincodeError::UnknownFunction(_))
        ));
    }

    #[test]
    fn malformed_args_rejected() {
        let mut f = fixture();
        assert!(matches!(
            invoke(&mut f, "ValidateProof", vec![b"stl".to_vec()]),
            Err(ChaincodeError::BadRequest(_))
        ));
        assert!(matches!(
            invoke(
                &mut f,
                "RecordForeignConfig",
                vec![b"garbage".to_vec(), b"x".to_vec()]
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
    }
}
