#![warn(missing_docs)]

//! System contracts and application chaincodes.
//!
//! The paper's architecture (§3.2) rests on *system contracts* deployed on
//! every peer of each interoperating network:
//!
//! * [`ecc`] — the **Exposure Control Chaincode**: consensual access-control
//!   rules `<network, org, chaincode, function>` checked on every relay
//!   query, plus response encryption with the requester's public key.
//! * [`cmdac`] — the combined **Configuration Management & Data Acceptance
//!   Chaincode**: records foreign network configurations (MSP roots, peer
//!   certificates) and verification policies, validates attestation proofs
//!   against them, and tracks nonces to block replays.
//!
//! Plus the two application chaincodes of the use case (§4.2):
//!
//! * [`stl`] — Simplified TradeLens: shipments and bills of lading, with
//!   the `GetBillOfLading` function exposed cross-network.
//! * [`swt`] — Simplified We.Trade: letters of credit and payments, with
//!   `UploadDispatchDocs` accepting a remotely fetched B/L plus proof.
//!
//! Interop-specific lines in the application chaincodes are marked with
//! `// interop-adaptation` comments so the adaptation-effort experiment
//! (paper §5, "Ease of Use and Adaptation") can count them.

pub mod cmdac;
pub mod ecc;
pub mod stl;
pub mod swt;

/// Conventional deployment name of the Exposure Control Chaincode.
pub const ECC_NAME: &str = "ECC";
/// Conventional deployment name of the combined Configuration Management &
/// Data Acceptance Chaincode.
pub const CMDAC_NAME: &str = "CMDAC";
