//! Simplified We.Trade (SWT) chaincode: trade finance with letters of credit.
//!
//! SWT "connects banks and their clients ... using letters of credit"
//! (paper §4). A single chaincode manages L/Cs and payments. The interop
//! adaptation is in `UploadDispatchDocs`, which accepts a remotely fetched
//! bill of lading together with its proof and validates both by invoking
//! the CMDAC — the paper measured ~20 SLOC for this.
//!
//! # Functions
//!
//! | function | args | caller |
//! |---|---|---|
//! | `RequestLC` | `[po_ref, lc_id, buyer, seller, amount]` | buyer-bank org |
//! | `IssueLC` | `[po_ref]` | buyer-bank org |
//! | `UploadDispatchDocs` | `[po_ref, bl, proof]` | seller-bank org |
//! | `RequestPayment` | `[po_ref]` | seller-bank org |
//! | `RecordPayment` | `[po_ref]` | buyer-bank org |
//! | `GetLC` | `[po_ref]` | any local member |

use crate::stl::BillOfLading;
use tdt_fabric::chaincode::{Chaincode, TxContext};
use tdt_fabric::error::ChaincodeError;
use tdt_wire::codec::{Message, Reader, Writer};
use tdt_wire::WireError;

/// Letter-of-credit lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LcStatus {
    /// Buyer applied for the L/C.
    #[default]
    Requested,
    /// Buyer's bank issued the L/C in favour of the seller's bank.
    Issued,
    /// Dispatch documents (the B/L) uploaded and verified.
    DocsUploaded,
    /// Seller's bank requested payment.
    PaymentRequested,
    /// Buyer's bank paid.
    Paid,
}

impl LcStatus {
    fn code(self) -> u64 {
        match self {
            LcStatus::Requested => 1,
            LcStatus::Issued => 2,
            LcStatus::DocsUploaded => 3,
            LcStatus::PaymentRequested => 4,
            LcStatus::Paid => 5,
        }
    }

    fn from_code(code: u64) -> Result<Self, WireError> {
        match code {
            1 => Ok(LcStatus::Requested),
            2 => Ok(LcStatus::Issued),
            3 => Ok(LcStatus::DocsUploaded),
            4 => Ok(LcStatus::PaymentRequested),
            5 => Ok(LcStatus::Paid),
            v => Err(WireError::UnknownEnumValue {
                field: "lc status",
                value: v,
            }),
        }
    }
}

/// A letter of credit on the SWT ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LetterOfCredit {
    /// L/C identifier.
    pub lc_id: String,
    /// Purchase-order reference (the cross-network key).
    pub po_ref: String,
    /// Buyer name.
    pub buyer: String,
    /// Seller name.
    pub seller: String,
    /// Amount in minor currency units.
    pub amount: u64,
    /// Lifecycle state.
    pub status: LcStatus,
    /// The verified B/L bytes once docs are uploaded.
    pub bl: Vec<u8>,
}

impl Message for LetterOfCredit {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.lc_id);
        w.string(2, &self.po_ref);
        w.string(3, &self.buyer);
        w.string(4, &self.seller);
        w.u64(5, self.amount);
        w.u64(6, self.status.code());
        w.bytes(7, &self.bl);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = LetterOfCredit::default();
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => out.lc_id = v.as_string(1, "lc_id")?,
                2 => out.po_ref = v.as_string(2, "po_ref")?,
                3 => out.buyer = v.as_string(3, "buyer")?,
                4 => out.seller = v.as_string(4, "seller")?,
                5 => out.amount = v.as_u64(5)?,
                6 => out.status = LcStatus::from_code(v.as_u64(6)?)?,
                7 => out.bl = v.as_bytes(7)?.to_vec(),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// The SWT chaincode (`WeTradeCC`).
#[derive(Debug, Clone)]
pub struct SwtChaincode {
    buyer_bank_org: String,
    seller_bank_org: String,
    /// The foreign network B/Ls are fetched from.
    source_network: String,
    /// The canonical address of the remote B/L query.
    source_address: String,
}

impl SwtChaincode {
    /// Conventional deployment name.
    pub const NAME: &'static str = "WeTradeCC";

    /// Creates the chaincode bound to the two SWT bank organizations and
    /// the remote query address B/Ls must be proven against.
    pub fn new(
        buyer_bank_org: impl Into<String>,
        seller_bank_org: impl Into<String>,
        source_network: impl Into<String>,
        source_address: impl Into<String>,
    ) -> Self {
        SwtChaincode {
            buyer_bank_org: buyer_bank_org.into(),
            seller_bank_org: seller_bank_org.into(),
            source_network: source_network.into(),
            source_address: source_address.into(),
        }
    }

    fn lc_key(po_ref: &str) -> String {
        format!("lc:{po_ref}")
    }

    fn load_lc(ctx: &mut TxContext<'_>, po_ref: &str) -> Result<LetterOfCredit, ChaincodeError> {
        let bytes = ctx
            .get_state(&Self::lc_key(po_ref))
            .ok_or_else(|| ChaincodeError::NotFound(format!("letter of credit {po_ref:?}")))?;
        LetterOfCredit::decode_from_slice(&bytes)
            .map_err(|e| ChaincodeError::Internal(format!("stored L/C corrupt: {e}")))
    }

    fn require_org(ctx: &TxContext<'_>, org: &str) -> Result<(), ChaincodeError> {
        let caller_org = &ctx.creator().subject().organization;
        if caller_org != org {
            return Err(ChaincodeError::AccessDenied(format!(
                "caller org {caller_org:?} is not {org:?}"
            )));
        }
        Ok(())
    }

    fn arg_str(args: &[Vec<u8>], idx: usize, name: &str) -> Result<String, ChaincodeError> {
        let raw = args
            .get(idx)
            .ok_or_else(|| ChaincodeError::BadRequest(format!("missing argument {name}")))?;
        String::from_utf8(raw.clone())
            .map_err(|_| ChaincodeError::BadRequest(format!("argument {name} is not utf-8")))
    }
}

impl Chaincode for SwtChaincode {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "RequestLC" => {
                Self::require_org(ctx, &self.buyer_bank_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let lc_id = Self::arg_str(args, 1, "lc_id")?;
                let buyer = Self::arg_str(args, 2, "buyer")?;
                let seller = Self::arg_str(args, 3, "seller")?;
                let amount: u64 = Self::arg_str(args, 4, "amount")?
                    .parse()
                    .map_err(|_| ChaincodeError::BadRequest("amount must be an integer".into()))?;
                if amount == 0 {
                    return Err(ChaincodeError::BadRequest("amount must be positive".into()));
                }
                if ctx.get_state(&Self::lc_key(&po_ref)).is_some() {
                    return Err(ChaincodeError::BadRequest(format!(
                        "L/C for {po_ref:?} already exists"
                    )));
                }
                let lc = LetterOfCredit {
                    lc_id,
                    po_ref: po_ref.clone(),
                    buyer,
                    seller,
                    amount,
                    status: LcStatus::Requested,
                    bl: Vec::new(),
                };
                ctx.put_state(&Self::lc_key(&po_ref), lc.encode_to_vec());
                Ok(Vec::new())
            }
            "IssueLC" => {
                Self::require_org(ctx, &self.buyer_bank_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let mut lc = Self::load_lc(ctx, &po_ref)?;
                if lc.status != LcStatus::Requested {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot issue L/C in state {:?}",
                        lc.status
                    )));
                }
                lc.status = LcStatus::Issued;
                ctx.put_state(&Self::lc_key(&po_ref), lc.encode_to_vec());
                Ok(Vec::new())
            }
            "UploadDispatchDocs" => {
                Self::require_org(ctx, &self.seller_bank_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let bl_bytes = args
                    .get(1)
                    .ok_or_else(|| ChaincodeError::BadRequest("missing argument bl".into()))?
                    .clone();
                let mut lc = Self::load_lc(ctx, &po_ref)?;
                if lc.status != LcStatus::Issued {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot upload docs in state {:?}",
                        lc.status
                    )));
                }
                // interop-adaptation: unmarshal the proof argument and have
                // interop-adaptation: the CMDAC validate it against the
                // interop-adaptation: recorded verification policy.
                let proof_bytes = args
                    .get(2) // interop-adaptation
                    .ok_or_else(|| {
                        ChaincodeError::BadRequest("missing argument proof".into())
                        // interop-adaptation
                    })?
                    .clone(); // interop-adaptation
                let proof = tdt_wire::messages::Proof::decode_from_slice(&proof_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("proof malformed: {e}")))?; // interop-adaptation
                if proof.result != bl_bytes {
                    // interop-adaptation
                    return Err(ChaincodeError::BadRequest(
                        "proof result does not match the submitted B/L".into(), // interop-adaptation
                    ));
                } // interop-adaptation
                ctx.invoke_chaincode(
                    // interop-adaptation
                    crate::CMDAC_NAME, // interop-adaptation
                    "ValidateProof",   // interop-adaptation
                    &[
                        self.source_network.clone().into_bytes(), // interop-adaptation
                        self.source_address.clone().into_bytes(), // interop-adaptation
                        proof_bytes,                              // interop-adaptation
                    ],
                )?; // interop-adaptation
                    // The verified B/L must actually cover this purchase order.
                let bl = BillOfLading::decode_from_slice(&bl_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("B/L malformed: {e}")))?;
                if bl.po_ref != po_ref {
                    return Err(ChaincodeError::BadRequest(format!(
                        "B/L covers {:?}, not {po_ref:?}",
                        bl.po_ref
                    )));
                }
                lc.bl = bl_bytes;
                lc.status = LcStatus::DocsUploaded;
                ctx.put_state(&Self::lc_key(&po_ref), lc.encode_to_vec());
                Ok(Vec::new())
            }
            "RequestPayment" => {
                Self::require_org(ctx, &self.seller_bank_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let mut lc = Self::load_lc(ctx, &po_ref)?;
                if lc.status != LcStatus::DocsUploaded {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot request payment in state {:?} (valid B/L required)",
                        lc.status
                    )));
                }
                lc.status = LcStatus::PaymentRequested;
                ctx.put_state(&Self::lc_key(&po_ref), lc.encode_to_vec());
                Ok(Vec::new())
            }
            "RecordPayment" => {
                Self::require_org(ctx, &self.buyer_bank_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let mut lc = Self::load_lc(ctx, &po_ref)?;
                if lc.status != LcStatus::PaymentRequested {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot record payment in state {:?}",
                        lc.status
                    )));
                }
                lc.status = LcStatus::Paid;
                ctx.put_state(&Self::lc_key(&po_ref), lc.encode_to_vec());
                Ok(Vec::new())
            }
            "GetLC" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                ctx.get_state(&Self::lc_key(&po_ref))
                    .ok_or_else(|| ChaincodeError::NotFound(format!("letter of credit {po_ref:?}")))
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmdac::Cmdac;
    use std::sync::Arc;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::group::Group;
    use tdt_crypto::sha256::sha256;
    use tdt_fabric::chaincode::{ChaincodeRegistry, PeerInfo, Proposal};
    use tdt_fabric::msp::{Identity, Msp};
    use tdt_ledger::state::WorldState;
    use tdt_wire::messages::{
        encode_certificate, Attestation, NetworkConfig, OrgConfig, Proof, ResultMetadata,
        VerificationPolicy,
    };

    const SOURCE_ADDRESS: &str = "stl:trade-channel:TradeLensCC:GetBillOfLading";

    struct Fixture {
        state: WorldState,
        registry: ChaincodeRegistry,
        buyer_bank: Identity,
        seller_bank: Identity,
        stl_peers: Vec<(String, Identity)>,
        tx_counter: u64,
    }

    fn fixture() -> Fixture {
        let mut bb_msp = Msp::new("swt", "buyer-bank-org", Group::test_group(), b"bb");
        let mut sb_msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"sb");
        let buyer_bank = bb_msp.enroll("buyer-app", CertRole::Client, false);
        let seller_bank = sb_msp.enroll("swt-sc", CertRole::Client, true);
        // STL (source) network peers.
        let mut stl_seller_msp = Msp::new("stl", "seller-org", Group::test_group(), b"s1");
        let mut stl_carrier_msp = Msp::new("stl", "carrier-org", Group::test_group(), b"s2");
        let p1 = stl_seller_msp.enroll("peer0", CertRole::Peer, false);
        let p2 = stl_carrier_msp.enroll("peer0", CertRole::Peer, false);
        let mut registry = ChaincodeRegistry::new();
        registry.deploy(
            SwtChaincode::NAME,
            Arc::new(SwtChaincode::new(
                "buyer-bank-org",
                "seller-bank-org",
                "stl",
                SOURCE_ADDRESS,
            )),
        );
        registry.deploy("CMDAC", Arc::new(Cmdac::new()));
        let mut f = Fixture {
            state: WorldState::new(),
            registry,
            buyer_bank,
            seller_bank,
            stl_peers: vec![
                ("seller-org".to_string(), p1),
                ("carrier-org".to_string(), p2),
            ],
            tx_counter: 0,
        };
        // Record STL config + verification policy on the SWT ledger.
        let stl_config = NetworkConfig {
            network_id: "stl".into(),
            group_name: "modp768".into(),
            orgs: vec![
                OrgConfig {
                    org_id: "seller-org".into(),
                    root_cert: encode_certificate(stl_seller_msp.root_certificate()),
                    peer_certs: vec![],
                },
                OrgConfig {
                    org_id: "carrier-org".into(),
                    root_cert: encode_certificate(stl_carrier_msp.root_certificate()),
                    peer_certs: vec![],
                },
            ],
        };
        let admin = f.seller_bank.clone();
        invoke_as(
            &mut f,
            &admin,
            "CMDAC",
            "RecordForeignConfig",
            vec![stl_config.encode_to_vec()],
        )
        .unwrap();
        let policy = VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]);
        invoke_as(
            &mut f,
            &admin,
            "CMDAC",
            "SetVerificationPolicy",
            vec![
                b"stl".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
                policy.encode_to_vec(),
            ],
        )
        .unwrap();
        f
    }

    fn invoke_as(
        f: &mut Fixture,
        caller: &Identity,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, ChaincodeError> {
        f.tx_counter += 1;
        let proposal = Proposal::new(
            format!("tx-{}", f.tx_counter),
            "finance-channel",
            chaincode,
            function,
            args.clone(),
            caller.certificate().clone(),
        );
        let peer = PeerInfo {
            peer_id: "swt/buyer-bank-org/peer0".into(),
            org_id: "buyer-bank-org".into(),
            network_id: "swt".into(),
            ledger_height: f.tx_counter,
        };
        let mut ctx = TxContext::new(&f.state, &f.registry, &proposal, peer);
        let code = f.registry.get(chaincode).unwrap();
        let result = code.invoke(&mut ctx, function, &args);
        let rwset = ctx.into_rwset();
        if result.is_ok() {
            f.state
                .apply(&rwset, tdt_ledger::rwset::Version::new(f.tx_counter, 0));
        }
        result
    }

    fn sample_bl(po_ref: &str) -> Vec<u8> {
        BillOfLading {
            bl_id: "BL-7".into(),
            po_ref: po_ref.into(),
            carrier: "stl/carrier-org/carrier-app".into(),
            goods: "600 tulip bulbs".into(),
            issued_height: 4,
        }
        .encode_to_vec()
    }

    fn sample_proof(f: &Fixture, result: &[u8], nonce: &[u8]) -> Proof {
        let attestations = f
            .stl_peers
            .iter()
            .map(|(org, identity)| {
                let metadata = ResultMetadata {
                    request_id: "req-1".into(),
                    address: SOURCE_ADDRESS.into(),
                    result_hash: sha256(result).to_vec(),
                    nonce: nonce.to_vec(),
                    peer_id: identity.qualified_name(),
                    org_id: org.clone(),
                    ledger_height: 5,
                    committed_block_plus_one: 0,
                    txid: String::new(),
                };
                let md = metadata.encode_to_vec();
                Attestation {
                    signer_cert: encode_certificate(identity.certificate()),
                    signature: identity.sign(&md).to_bytes(),
                    metadata: md,
                    metadata_encrypted: false,
                }
            })
            .collect();
        Proof {
            request_id: "req-1".into(),
            address: SOURCE_ADDRESS.into(),
            nonce: nonce.to_vec(),
            result: result.to_vec(),
            attestations,
        }
    }

    fn open_lc(f: &mut Fixture, po: &str) {
        let bb = f.buyer_bank.clone();
        invoke_as(
            f,
            &bb,
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                po.into(),
                b"LC-1".to_vec(),
                b"buyer-gmbh".to_vec(),
                b"tulip-exports".to_vec(),
                b"100000".to_vec(),
            ],
        )
        .unwrap();
        invoke_as(f, &bb, SwtChaincode::NAME, "IssueLC", vec![po.into()]).unwrap();
    }

    #[test]
    fn full_lc_lifecycle_with_verified_bl() {
        let mut f = fixture();
        open_lc(&mut f, "PO-1001");
        let bl = sample_bl("PO-1001");
        let proof = sample_proof(&f, &bl, &[3; 16]);
        let sb = f.seller_bank.clone();
        invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec(), bl.clone(), proof.encode_to_vec()],
        )
        .unwrap();
        invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "RequestPayment",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap();
        let bb = f.buyer_bank.clone();
        invoke_as(
            &mut f,
            &bb,
            SwtChaincode::NAME,
            "RecordPayment",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap();
        let lc_bytes = invoke_as(
            &mut f,
            &bb,
            SwtChaincode::NAME,
            "GetLC",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap();
        let lc = LetterOfCredit::decode_from_slice(&lc_bytes).unwrap();
        assert_eq!(lc.status, LcStatus::Paid);
        assert_eq!(lc.bl, bl);
        assert_eq!(lc.amount, 100_000);
    }

    #[test]
    fn payment_requires_docs() {
        let mut f = fixture();
        open_lc(&mut f, "PO-1001");
        let sb = f.seller_bank.clone();
        let err = invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "RequestPayment",
            vec![b"PO-1001".to_vec()],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(m) if m.contains("valid B/L required")));
    }

    #[test]
    fn forged_bl_rejected() {
        // The seller forges a B/L (the exact fraud the paper's Step 9
        // prevents): the proof attests to the *real* result, so a swapped
        // B/L argument fails.
        let mut f = fixture();
        open_lc(&mut f, "PO-1001");
        let real_bl = sample_bl("PO-1001");
        let proof = sample_proof(&f, &real_bl, &[3; 16]);
        let forged_bl = BillOfLading {
            bl_id: "BL-FAKE".into(),
            po_ref: "PO-1001".into(),
            carrier: "forged".into(),
            goods: "gold bars".into(),
            issued_height: 1,
        }
        .encode_to_vec();
        let sb = f.seller_bank.clone();
        let err = invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec(), forged_bl, proof.encode_to_vec()],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(m) if m.contains("does not match")));
    }

    #[test]
    fn proof_with_insufficient_orgs_rejected() {
        let mut f = fixture();
        open_lc(&mut f, "PO-1001");
        let bl = sample_bl("PO-1001");
        let mut proof = sample_proof(&f, &bl, &[3; 16]);
        proof.attestations.truncate(1);
        let sb = f.seller_bank.clone();
        let err = invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec(), bl, proof.encode_to_vec()],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn replayed_proof_rejected_on_second_lc() {
        let mut f = fixture();
        open_lc(&mut f, "PO-1001");
        let bl = sample_bl("PO-1001");
        let proof = sample_proof(&f, &bl, &[3; 16]);
        let sb = f.seller_bank.clone();
        invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec(), bl.clone(), proof.encode_to_vec()],
        )
        .unwrap();
        // Second L/C against the same PO-ish flow reusing the same proof.
        open_lc(&mut f, "PO-1001-second");
        let bl2 = {
            // Same B/L content re-keyed: attacker reuses the old proof verbatim.
            proof.encode_to_vec()
        };
        let err = invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001-second".to_vec(), bl, bl2],
        )
        .unwrap_err();
        // Rejected: either the B/L covers the wrong PO or the nonce replays.
        assert!(matches!(
            err,
            ChaincodeError::BadRequest(_) | ChaincodeError::AccessDenied(_)
        ));
    }

    #[test]
    fn bl_for_wrong_po_rejected() {
        let mut f = fixture();
        open_lc(&mut f, "PO-2002");
        let bl = sample_bl("PO-OTHER");
        let proof = sample_proof(&f, &bl, &[4; 16]);
        let sb = f.seller_bank.clone();
        let err = invoke_as(
            &mut f,
            &sb,
            SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-2002".to_vec(), bl, proof.encode_to_vec()],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(m) if m.contains("covers")));
    }

    #[test]
    fn org_separation_enforced() {
        let mut f = fixture();
        let sb = f.seller_bank.clone();
        // Seller's bank cannot request an L/C.
        assert!(matches!(
            invoke_as(
                &mut f,
                &sb,
                SwtChaincode::NAME,
                "RequestLC",
                vec![
                    b"PO-1".to_vec(),
                    b"LC-1".to_vec(),
                    b"b".to_vec(),
                    b"s".to_vec(),
                    b"10".to_vec(),
                ],
            ),
            Err(ChaincodeError::AccessDenied(_))
        ));
        open_lc(&mut f, "PO-1");
        // Buyer's bank cannot upload docs.
        let bb = f.buyer_bank.clone();
        assert!(matches!(
            invoke_as(
                &mut f,
                &bb,
                SwtChaincode::NAME,
                "UploadDispatchDocs",
                vec![b"PO-1".to_vec(), b"bl".to_vec(), b"proof".to_vec()],
            ),
            Err(ChaincodeError::AccessDenied(_))
        ));
    }

    #[test]
    fn lc_state_machine() {
        let mut f = fixture();
        let bb = f.buyer_bank.clone();
        open_lc(&mut f, "PO-1");
        // Cannot issue twice.
        assert!(matches!(
            invoke_as(
                &mut f,
                &bb,
                SwtChaincode::NAME,
                "IssueLC",
                vec![b"PO-1".to_vec()]
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
        // Cannot pay before payment requested.
        assert!(matches!(
            invoke_as(
                &mut f,
                &bb,
                SwtChaincode::NAME,
                "RecordPayment",
                vec![b"PO-1".to_vec()]
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn zero_amount_rejected() {
        let mut f = fixture();
        let bb = f.buyer_bank.clone();
        assert!(matches!(
            invoke_as(
                &mut f,
                &bb,
                SwtChaincode::NAME,
                "RequestLC",
                vec![
                    b"PO-1".to_vec(),
                    b"LC-1".to_vec(),
                    b"b".to_vec(),
                    b"s".to_vec(),
                    b"0".to_vec(),
                ],
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn lc_message_roundtrip() {
        let lc = LetterOfCredit {
            lc_id: "LC-1".into(),
            po_ref: "PO-1".into(),
            buyer: "b".into(),
            seller: "s".into(),
            amount: 42,
            status: LcStatus::PaymentRequested,
            bl: vec![1, 2, 3],
        };
        assert_eq!(
            LetterOfCredit::decode_from_slice(&lc.encode_to_vec()).unwrap(),
            lc
        );
    }

    #[test]
    fn missing_lc_not_found() {
        let mut f = fixture();
        let bb = f.buyer_bank.clone();
        assert!(matches!(
            invoke_as(
                &mut f,
                &bb,
                SwtChaincode::NAME,
                "GetLC",
                vec![b"PO-X".to_vec()]
            ),
            Err(ChaincodeError::NotFound(_))
        ));
    }
}
