//! The Exposure Control Chaincode (ECC).
//!
//! Deployed on every peer of a *source* network, the ECC "enforces access
//! control policy rules against incoming requests, determining which data
//! items in the local ledger and smart contract functions can be exposed"
//! (paper §3.2). Rules are the paper's 4-tuples
//! `<network ID, organization ID, chaincode name, chaincode function>`:
//! the subject is a member of a foreign network organization, the object is
//! a chaincode function.
//!
//! The ECC also performs the response encryption step of §4.3: after query
//! execution, the result is encrypted with the requesting client's public
//! key so that relays can neither read nor tamper with it.
//!
//! # Functions
//!
//! | function | args | returns |
//! |---|---|---|
//! | `AddAccessRule` | `[network, org, chaincode, function]` | `""` |
//! | `AddEntityAccessRule` | `[network, org, common_name, chaincode, function]` | `""` |
//! | `RemoveAccessRule` | `[network, org, chaincode, function]` | `""` |
//! | `RemoveEntityAccessRule` | `[network, org, common_name, chaincode, function]` | `""` |
//! | `ListAccessRules` | `[]` | newline-separated rules |
//! | `CheckAccess` | `[network, org, chaincode, function, cert]` | `"ok"` |
//! | `EncryptResponse` | `[cert, plaintext]` | ElGamal ciphertext bytes |
//!
//! # Subject granularity (paper §3.3)
//!
//! "The identities against which the access control policies are applied
//! can be at the level of a network, a named subdivision (organization),
//! \[or\] a single entity (peer, user or application)." Rules support all
//! three levels plus function wildcards:
//!
//! * network-level — `AddAccessRule(net, "*", cc, func)`
//! * organization-level — `AddAccessRule(net, org, cc, func)` (the paper's
//!   proof-of-concept granularity)
//! * entity-level — `AddEntityAccessRule(net, org, common_name, cc, func)`
//! * whole-chaincode grants — pass `"*"` as the function
//!
//! `CheckAccess` matches most-specific first: entity, then organization,
//! then network-wide, each with exact-function before wildcard-function.

use tdt_crypto::sha256::sha256;
use tdt_fabric::chaincode::{Chaincode, TxContext};
use tdt_fabric::error::ChaincodeError;
use tdt_wire::messages::decode_certificate;

/// The output of `EncryptResponse`: the ciphertext a relay may carry plus a
/// commitment to the plaintext. The endorsement plugin copies the
/// commitment into the signed result metadata, so the destination network
/// can validate the *decrypted* result against the proof without the relay
/// ever seeing plaintext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedResult {
    /// SHA-256 of the plaintext result.
    pub plaintext_hash: [u8; 32],
    /// ElGamal ciphertext of the result under the requester's key.
    pub ciphertext: Vec<u8>,
}

impl EncryptedResult {
    /// Serializes as `plaintext_hash ‖ ciphertext`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.ciphertext.len());
        out.extend_from_slice(&self.plaintext_hash);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the [`EncryptedResult::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadRequest`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ChaincodeError> {
        let Some(hash_bytes) = bytes.get(..32) else {
            return Err(ChaincodeError::BadRequest(
                "encrypted result truncated".into(),
            ));
        };
        let mut plaintext_hash = [0u8; 32];
        plaintext_hash.copy_from_slice(hash_bytes);
        Ok(EncryptedResult {
            plaintext_hash,
            ciphertext: bytes.get(32..).unwrap_or_default().to_vec(),
        })
    }
}

/// The ECC system contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ecc;

impl Ecc {
    /// Creates the contract.
    pub fn new() -> Self {
        Ecc
    }

    fn rule_key(network: &str, org: &str, chaincode: &str, function: &str) -> String {
        format!("rule:{network}:{org}:{chaincode}:{function}")
    }

    fn entity_rule_key(
        network: &str,
        org: &str,
        common_name: &str,
        chaincode: &str,
        function: &str,
    ) -> String {
        format!("erule:{network}:{org}:{common_name}:{chaincode}:{function}")
    }

    /// Looks up exposure rules most-specific first (paper §3.3 subject
    /// granularities): entity, organization, then network-wide, each with
    /// exact function before the `*` wildcard.
    fn rule_exists(
        ctx: &mut TxContext<'_>,
        network: &str,
        org: &str,
        common_name: &str,
        chaincode: &str,
        function: &str,
    ) -> bool {
        let entity_keys = [
            Self::entity_rule_key(network, org, common_name, chaincode, function),
            Self::entity_rule_key(network, org, common_name, chaincode, "*"),
        ];
        let org_keys = [
            Self::rule_key(network, org, chaincode, function),
            Self::rule_key(network, org, chaincode, "*"),
            Self::rule_key(network, "*", chaincode, function),
            Self::rule_key(network, "*", chaincode, "*"),
        ];
        entity_keys
            .iter()
            .chain(org_keys.iter())
            .any(|key| ctx.get_state(key).is_some())
    }

    fn parse_rule_args(
        args: &[Vec<u8>],
    ) -> Result<(String, String, String, String), ChaincodeError> {
        let [network, org, chaincode, function] = args else {
            return Err(ChaincodeError::BadRequest(
                "expected [network, org, chaincode, function]".into(),
            ));
        };
        Ok((
            String::from_utf8_lossy(network).into_owned(),
            String::from_utf8_lossy(org).into_owned(),
            String::from_utf8_lossy(chaincode).into_owned(),
            String::from_utf8_lossy(function).into_owned(),
        ))
    }
}

impl Chaincode for Ecc {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "AddAccessRule" => {
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify exposure rules".into(),
                    ));
                }
                let (network, org, chaincode, func) = Self::parse_rule_args(args)?;
                if network.is_empty() || org.is_empty() || chaincode.is_empty() || func.is_empty() {
                    return Err(ChaincodeError::BadRequest(
                        "rule fields must be non-empty".into(),
                    ));
                }
                ctx.put_state(
                    &Self::rule_key(&network, &org, &chaincode, &func),
                    b"allow".to_vec(),
                );
                Ok(Vec::new())
            }
            "RemoveAccessRule" => {
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify exposure rules".into(),
                    ));
                }
                let (network, org, chaincode, func) = Self::parse_rule_args(args)?;
                ctx.delete_state(&Self::rule_key(&network, &org, &chaincode, &func));
                Ok(Vec::new())
            }
            "AddEntityAccessRule" => {
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify exposure rules".into(),
                    ));
                }
                let [network, org, common_name, chaincode, func] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "expected [network, org, common_name, chaincode, function]".into(),
                    ));
                };
                let [network, org, common_name, chaincode, func] =
                    [network, org, common_name, chaincode, func]
                        .map(|a| String::from_utf8_lossy(a).into_owned());
                if [&network, &org, &common_name, &chaincode, &func]
                    .iter()
                    .any(|f| f.is_empty())
                {
                    return Err(ChaincodeError::BadRequest(
                        "rule fields must be non-empty".into(),
                    ));
                }
                ctx.put_state(
                    &Self::entity_rule_key(&network, &org, &common_name, &chaincode, &func),
                    b"allow".to_vec(),
                );
                Ok(Vec::new())
            }
            "RemoveEntityAccessRule" => {
                if ctx.is_relay_query() {
                    return Err(ChaincodeError::AccessDenied(
                        "foreign requesters cannot modify exposure rules".into(),
                    ));
                }
                let [network, org, common_name, chaincode, func] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "expected [network, org, common_name, chaincode, function]".into(),
                    ));
                };
                let [network, org, common_name, chaincode, func] =
                    [network, org, common_name, chaincode, func]
                        .map(|a| String::from_utf8_lossy(a).into_owned());
                ctx.delete_state(&Self::entity_rule_key(
                    &network,
                    &org,
                    &common_name,
                    &chaincode,
                    &func,
                ));
                Ok(Vec::new())
            }
            "ListAccessRules" => {
                let mut listing: Vec<String> = ctx
                    .get_state_range("rule:", "rule;") // ';' sorts right after ':'
                    .into_iter()
                    .map(|(k, _)| k.trim_start_matches("rule:").to_string())
                    .collect();
                listing.extend(
                    ctx.get_state_range("erule:", "erule;")
                        .into_iter()
                        .map(|(k, _)| format!("entity:{}", k.trim_start_matches("erule:"))),
                );
                Ok(listing.join("\n").into_bytes())
            }
            "CheckAccess" => {
                let [network, org, chaincode, func, cert_bytes] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "CheckAccess expects [network, org, chaincode, function, cert]".into(),
                    ));
                };
                let network = String::from_utf8_lossy(network).into_owned();
                let org = String::from_utf8_lossy(org).into_owned();
                let chaincode = String::from_utf8_lossy(chaincode).into_owned();
                let func = String::from_utf8_lossy(func).into_owned();
                // The certificate must actually belong to the claimed
                // foreign network + organization...
                let cert = decode_certificate(cert_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("cert malformed: {e}")))?;
                if cert.subject().network != network || cert.subject().organization != org {
                    return Err(ChaincodeError::AccessDenied(format!(
                        "certificate subject {:?} does not match claimed {network}/{org}",
                        cert.subject().qualified_name()
                    )));
                }
                // ...and chain to the recorded configuration of that network
                // (managed by the CMDAC, paper §4.3).
                ctx.invoke_chaincode(
                    crate::CMDAC_NAME,
                    "ValidateForeignCert",
                    &[network.clone().into_bytes(), cert_bytes.clone()],
                )?;
                // Finally, an exposure rule must exist at some granularity.
                let common_name = cert.subject().common_name.clone();
                if !Self::rule_exists(ctx, &network, &org, &common_name, &chaincode, &func) {
                    return Err(ChaincodeError::AccessDenied(format!(
                        "no exposure rule for <{network}, {org}, {chaincode}, {func}> (any granularity)"
                    )));
                }
                Ok(b"ok".to_vec())
            }
            "EncryptResponse" => {
                let [cert_bytes, plaintext] = args else {
                    return Err(ChaincodeError::BadRequest(
                        "EncryptResponse expects [cert, plaintext]".into(),
                    ));
                };
                let cert = decode_certificate(cert_bytes)
                    .map_err(|e| ChaincodeError::BadRequest(format!("cert malformed: {e}")))?;
                let key = cert
                    .encryption_key()
                    .map_err(|e| ChaincodeError::BadRequest(format!("cert key invalid: {e}")))?
                    .ok_or_else(|| {
                        ChaincodeError::BadRequest(
                            "requester certificate carries no encryption key".into(),
                        )
                    })?;
                // Deterministic ephemeral derivation keeps endorsing peers
                // convergent: every peer produces the same ciphertext for
                // the same (txid, plaintext), so endorsements still match.
                let seed = format!("ecc-encrypt:{}", ctx.txid());
                let ciphertext = key.encrypt_deterministic(plaintext, seed.as_bytes());
                let wrapped = EncryptedResult {
                    plaintext_hash: sha256(plaintext),
                    ciphertext: ciphertext.to_bytes(),
                };
                Ok(wrapped.to_bytes())
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmdac::Cmdac;
    use std::sync::Arc;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::elgamal::Ciphertext;
    use tdt_crypto::group::Group;
    use tdt_fabric::chaincode::{ChaincodeRegistry, PeerInfo, Proposal};
    use tdt_fabric::msp::{Identity, Msp};
    use tdt_ledger::state::WorldState;
    use tdt_wire::codec::Message;
    use tdt_wire::messages::{encode_certificate, NetworkConfig, OrgConfig};

    struct Fixture {
        state: WorldState,
        registry: ChaincodeRegistry,
        local_admin: Identity,
        foreign_client: Identity,
        foreign_config: NetworkConfig,
    }

    fn fixture() -> Fixture {
        let mut local_msp = Msp::new("stl", "seller-org", Group::test_group(), b"l");
        let local_admin = local_msp.enroll("admin", CertRole::Client, false);
        let mut foreign_msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"f");
        let foreign_client = foreign_msp.enroll("swt-sc", CertRole::Client, true);
        let foreign_config = NetworkConfig {
            network_id: "swt".into(),
            group_name: "modp768".into(),
            orgs: vec![OrgConfig {
                org_id: "seller-bank-org".into(),
                root_cert: encode_certificate(foreign_msp.root_certificate()),
                peer_certs: vec![],
            }],
        };
        let mut registry = ChaincodeRegistry::new();
        registry.deploy("ECC", Arc::new(Ecc::new()));
        registry.deploy("CMDAC", Arc::new(Cmdac::new()));
        Fixture {
            state: WorldState::new(),
            registry,
            local_admin,
            foreign_client,
            foreign_config,
        }
    }

    fn invoke_cc(
        f: &mut Fixture,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        relay: bool,
    ) -> Result<Vec<u8>, ChaincodeError> {
        let mut proposal = Proposal::new(
            "tx-1",
            "ch",
            chaincode,
            function,
            args.clone(),
            f.local_admin.certificate().clone(),
        );
        if relay {
            proposal = proposal.as_relay_query();
        }
        let peer = PeerInfo {
            peer_id: "stl/seller-org/peer0".into(),
            org_id: "seller-org".into(),
            network_id: "stl".into(),
            ledger_height: 1,
        };
        let mut ctx = TxContext::new(&f.state, &f.registry, &proposal, peer);
        let code = f.registry.get(chaincode).unwrap();
        let result = code.invoke(&mut ctx, function, &args);
        let rwset = ctx.into_rwset();
        if result.is_ok() {
            f.state.apply(&rwset, tdt_ledger::rwset::Version::new(1, 0));
        }
        result
    }

    fn setup_access(f: &mut Fixture) {
        // Record SWT's configuration on the STL ledger.
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        // The paper's rule: <"we-trade", "seller-org", "TradeLensCC", "GetBillOfLading">.
        invoke_cc(
            f,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
        )
        .unwrap();
    }

    fn check_access(f: &mut Fixture, cert: Vec<u8>) -> Result<Vec<u8>, ChaincodeError> {
        invoke_cc(
            f,
            "ECC",
            "CheckAccess",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
                cert,
            ],
            true,
        )
    }

    #[test]
    fn permitted_requester_passes() {
        let mut f = fixture();
        setup_access(&mut f);
        let cert = encode_certificate(f.foreign_client.certificate());
        assert_eq!(check_access(&mut f, cert).unwrap(), b"ok");
    }

    #[test]
    fn no_rule_denied() {
        let mut f = fixture();
        // Config recorded but no rule added.
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(&mut f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        let err = check_access(&mut f, cert).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(m) if m.contains("no exposure rule")));
    }

    #[test]
    fn removed_rule_denied() {
        let mut f = fixture();
        setup_access(&mut f);
        invoke_cc(
            &mut f,
            "ECC",
            "RemoveAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
        )
        .unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        assert!(check_access(&mut f, cert).is_err());
    }

    #[test]
    fn unrecorded_network_denied() {
        let mut f = fixture();
        // Rule exists but no foreign config recorded -> cert can't validate.
        invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
        )
        .unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        assert!(check_access(&mut f, cert).is_err());
    }

    #[test]
    fn masquerading_cert_denied() {
        let mut f = fixture();
        setup_access(&mut f);
        // A cert from a different org claiming seller-bank-org access.
        let mut other_msp = Msp::new("swt", "buyer-bank-org", Group::test_group(), b"o");
        let other = other_msp.enroll("mallory", CertRole::Client, false);
        let err = check_access(&mut f, encode_certificate(other.certificate())).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn forged_cert_denied() {
        let mut f = fixture();
        setup_access(&mut f);
        // Same subject names, but issued by an unrecorded CA.
        let mut fake_msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"fake-seed");
        let fake = fake_msp.enroll("swt-sc", CertRole::Client, false);
        let err = check_access(&mut f, encode_certificate(fake.certificate())).unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn relay_cannot_add_rules() {
        let mut f = fixture();
        let err = invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![b"swt".to_vec(), b"x".to_vec(), b"y".to_vec(), b"z".to_vec()],
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn list_rules() {
        let mut f = fixture();
        setup_access(&mut f);
        invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetShipment".to_vec(),
            ],
            false,
        )
        .unwrap();
        let listing = invoke_cc(&mut f, "ECC", "ListAccessRules", vec![], false).unwrap();
        let listing = String::from_utf8(listing).unwrap();
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.contains("GetBillOfLading"));
        assert!(listing.contains("GetShipment"));
    }

    #[test]
    fn entity_level_rule_grants_only_that_entity() {
        let mut f = fixture();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(&mut f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        // Grant only the client with common name "swt-sc".
        invoke_cc(
            &mut f,
            "ECC",
            "AddEntityAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"swt-sc".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
        )
        .unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        assert_eq!(check_access(&mut f, cert).unwrap(), b"ok");
        // A *different* member of the same org is denied.
        let mut foreign_msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"f");
        let _ = foreign_msp.enroll("swt-sc", CertRole::Client, true);
        let other = foreign_msp.enroll("other-client", CertRole::Client, true);
        assert!(check_access(&mut f, encode_certificate(other.certificate())).is_err());
    }

    #[test]
    fn network_level_wildcard_rule() {
        let mut f = fixture();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(&mut f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        // Grant the whole swt network access to the function.
        invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"*".to_vec(),
                b"TradeLensCC".to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
        )
        .unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        assert_eq!(check_access(&mut f, cert).unwrap(), b"ok");
    }

    #[test]
    fn function_wildcard_rule_covers_whole_chaincode() {
        let mut f = fixture();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(&mut f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"TradeLensCC".to_vec(),
                b"*".to_vec(),
            ],
            false,
        )
        .unwrap();
        // Both functions pass under the single wildcard grant.
        for func in ["GetBillOfLading", "GetShipment"] {
            let cert = encode_certificate(f.foreign_client.certificate());
            let result = invoke_cc(
                &mut f,
                "ECC",
                "CheckAccess",
                vec![
                    b"swt".to_vec(),
                    b"seller-bank-org".to_vec(),
                    b"TradeLensCC".to_vec(),
                    func.as_bytes().to_vec(),
                    cert,
                ],
                true,
            );
            assert_eq!(result.unwrap(), b"ok", "function {func}");
        }
    }

    #[test]
    fn entity_rule_removal_revokes() {
        let mut f = fixture();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_cc(&mut f, "CMDAC", "RecordForeignConfig", vec![cfg], false).unwrap();
        let rule = vec![
            b"swt".to_vec(),
            b"seller-bank-org".to_vec(),
            b"swt-sc".to_vec(),
            b"TradeLensCC".to_vec(),
            b"GetBillOfLading".to_vec(),
        ];
        invoke_cc(&mut f, "ECC", "AddEntityAccessRule", rule.clone(), false).unwrap();
        let cert = encode_certificate(f.foreign_client.certificate());
        assert!(check_access(&mut f, cert.clone()).is_ok());
        invoke_cc(&mut f, "ECC", "RemoveEntityAccessRule", rule, false).unwrap();
        assert!(check_access(&mut f, cert).is_err());
    }

    #[test]
    fn listing_includes_entity_rules() {
        let mut f = fixture();
        setup_access(&mut f);
        invoke_cc(
            &mut f,
            "ECC",
            "AddEntityAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                b"swt-sc".to_vec(),
                b"TradeLensCC".to_vec(),
                b"*".to_vec(),
            ],
            false,
        )
        .unwrap();
        let listing = invoke_cc(&mut f, "ECC", "ListAccessRules", vec![], false).unwrap();
        let listing = String::from_utf8(listing).unwrap();
        assert!(listing.contains("entity:swt:seller-bank-org:swt-sc:TradeLensCC:*"));
    }

    #[test]
    fn encrypt_response_roundtrip() {
        let mut f = fixture();
        let cert = encode_certificate(f.foreign_client.certificate());
        let wrapped_bytes = invoke_cc(
            &mut f,
            "ECC",
            "EncryptResponse",
            vec![cert, b"bill of lading".to_vec()],
            true,
        )
        .unwrap();
        let wrapped = EncryptedResult::from_bytes(&wrapped_bytes).unwrap();
        assert_eq!(
            wrapped.plaintext_hash,
            tdt_crypto::sha256(b"bill of lading")
        );
        let ct = Ciphertext::from_bytes(&wrapped.ciphertext).unwrap();
        let dk = f.foreign_client.decryption_key().unwrap();
        assert_eq!(dk.decrypt(&ct).unwrap(), b"bill of lading");
    }

    #[test]
    fn encrypted_result_wrapper_roundtrip() {
        let w = EncryptedResult {
            plaintext_hash: [7u8; 32],
            ciphertext: vec![1, 2, 3],
        };
        assert_eq!(EncryptedResult::from_bytes(&w.to_bytes()).unwrap(), w);
        assert!(EncryptedResult::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn encrypt_deterministic_across_peers() {
        // Two peers executing the same tx must produce identical ciphertext
        // or their endorsements would diverge.
        let mut f = fixture();
        let cert = encode_certificate(f.foreign_client.certificate());
        let a = invoke_cc(
            &mut f,
            "ECC",
            "EncryptResponse",
            vec![cert.clone(), b"data".to_vec()],
            true,
        )
        .unwrap();
        let b = invoke_cc(
            &mut f,
            "ECC",
            "EncryptResponse",
            vec![cert, b"data".to_vec()],
            true,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn encrypt_requires_encryption_key() {
        let mut f = fixture();
        let mut msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"f2");
        let no_enc = msp.enroll("plain", CertRole::Client, false);
        let err = invoke_cc(
            &mut f,
            "ECC",
            "EncryptResponse",
            vec![encode_certificate(no_enc.certificate()), b"x".to_vec()],
            true,
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(_)));
    }

    #[test]
    fn empty_rule_fields_rejected() {
        let mut f = fixture();
        let err = invoke_cc(
            &mut f,
            "ECC",
            "AddAccessRule",
            vec![b"".to_vec(), b"o".to_vec(), b"c".to_vec(), b"f".to_vec()],
            false,
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(_)));
    }

    #[test]
    fn unknown_function() {
        let mut f = fixture();
        assert!(matches!(
            invoke_cc(&mut f, "ECC", "Bogus", vec![], false),
            Err(ChaincodeError::UnknownFunction(_))
        ));
    }
}
