//! Simplified TradeLens (STL) chaincode: trade-logistics shipments.
//!
//! STL "retains just a Seller and a Carrier negotiating the export of a
//! shipment" (paper §4). A single chaincode manages shipment state and
//! documentation; the carrier taking possession produces a bill of lading
//! (B/L), the document fetched cross-network by SWT.
//!
//! The interop adaptation is confined to `GetBillOfLading` and marked with
//! `// interop-adaptation` comments: an ECC access check before execution
//! and an ECC encryption call after — the paper measured ~35 SLOC for this.
//!
//! # Functions
//!
//! | function | args | caller |
//! |---|---|---|
//! | `CreateShipment` | `[po_ref, goods]` | seller org |
//! | `ConfirmBooking` | `[po_ref]` | carrier org |
//! | `TransferPossession` | `[po_ref]` | seller org |
//! | `IssueBillOfLading` | `[po_ref, bl_id]` | carrier org |
//! | `GetShipment` | `[po_ref]` | any local member |
//! | `GetBillOfLading` | `[po_ref]` | local member or relay query |

use tdt_fabric::chaincode::{Chaincode, TxContext};
use tdt_fabric::error::ChaincodeError;
use tdt_wire::codec::{Message, Reader, Writer};
use tdt_wire::WireError;

/// Shipment lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShipmentStatus {
    /// Created by the seller against a purchase order.
    #[default]
    Created,
    /// Carrier confirmed the booking.
    BookingConfirmed,
    /// Carrier has taken possession of the goods.
    InPossession,
    /// Bill of lading issued.
    BlIssued,
}

impl ShipmentStatus {
    fn code(self) -> u64 {
        match self {
            ShipmentStatus::Created => 1,
            ShipmentStatus::BookingConfirmed => 2,
            ShipmentStatus::InPossession => 3,
            ShipmentStatus::BlIssued => 4,
        }
    }

    fn from_code(code: u64) -> Result<Self, WireError> {
        match code {
            1 => Ok(ShipmentStatus::Created),
            2 => Ok(ShipmentStatus::BookingConfirmed),
            3 => Ok(ShipmentStatus::InPossession),
            4 => Ok(ShipmentStatus::BlIssued),
            v => Err(WireError::UnknownEnumValue {
                field: "shipment status",
                value: v,
            }),
        }
    }
}

/// A shipment tracked on the STL ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Shipment {
    /// Purchase-order reference negotiated offline (the cross-network key).
    pub po_ref: String,
    /// Seller identity (qualified name).
    pub seller: String,
    /// Carrier identity (qualified name) — set at booking confirmation.
    pub carrier: String,
    /// Description of the goods.
    pub goods: String,
    /// Lifecycle state.
    pub status: ShipmentStatus,
    /// Bill-of-lading id once issued.
    pub bl_id: String,
}

impl Message for Shipment {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.po_ref);
        w.string(2, &self.seller);
        w.string(3, &self.carrier);
        w.string(4, &self.goods);
        w.u64(5, self.status.code());
        w.string(6, &self.bl_id);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = Shipment::default();
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => out.po_ref = v.as_string(1, "po_ref")?,
                2 => out.seller = v.as_string(2, "seller")?,
                3 => out.carrier = v.as_string(3, "carrier")?,
                4 => out.goods = v.as_string(4, "goods")?,
                5 => out.status = ShipmentStatus::from_code(v.as_u64(5)?)?,
                6 => out.bl_id = v.as_string(6, "bl_id")?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A bill of lading: the carrier's acknowledgement of shipment receipt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BillOfLading {
    /// Unique B/L id.
    pub bl_id: String,
    /// Purchase-order reference it covers.
    pub po_ref: String,
    /// Issuing carrier (qualified name).
    pub carrier: String,
    /// Goods description as received.
    pub goods: String,
    /// Ledger height at issuance.
    pub issued_height: u64,
}

impl Message for BillOfLading {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.bl_id);
        w.string(2, &self.po_ref);
        w.string(3, &self.carrier);
        w.string(4, &self.goods);
        w.u64(5, self.issued_height);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = BillOfLading::default();
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => out.bl_id = v.as_string(1, "bl_id")?,
                2 => out.po_ref = v.as_string(2, "po_ref")?,
                3 => out.carrier = v.as_string(3, "carrier")?,
                4 => out.goods = v.as_string(4, "goods")?,
                5 => out.issued_height = v.as_u64(5)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// The STL chaincode (`TradeLensCC`).
#[derive(Debug, Clone)]
pub struct StlChaincode {
    seller_org: String,
    carrier_org: String,
}

impl StlChaincode {
    /// Conventional deployment name.
    pub const NAME: &'static str = "TradeLensCC";

    /// Creates the chaincode bound to the two STL organizations.
    pub fn new(seller_org: impl Into<String>, carrier_org: impl Into<String>) -> Self {
        StlChaincode {
            seller_org: seller_org.into(),
            carrier_org: carrier_org.into(),
        }
    }

    fn shipment_key(po_ref: &str) -> String {
        format!("shipment:{po_ref}")
    }

    fn bl_key(po_ref: &str) -> String {
        format!("bl:{po_ref}")
    }

    fn load_shipment(ctx: &mut TxContext<'_>, po_ref: &str) -> Result<Shipment, ChaincodeError> {
        let bytes = ctx
            .get_state(&Self::shipment_key(po_ref))
            .ok_or_else(|| ChaincodeError::NotFound(format!("shipment {po_ref:?}")))?;
        Shipment::decode_from_slice(&bytes)
            .map_err(|e| ChaincodeError::Internal(format!("stored shipment corrupt: {e}")))
    }

    fn require_org(ctx: &TxContext<'_>, org: &str) -> Result<(), ChaincodeError> {
        let caller_org = &ctx.creator().subject().organization;
        if caller_org != org {
            return Err(ChaincodeError::AccessDenied(format!(
                "caller org {caller_org:?} is not {org:?}"
            )));
        }
        Ok(())
    }

    fn arg_str(args: &[Vec<u8>], idx: usize, name: &str) -> Result<String, ChaincodeError> {
        let raw = args
            .get(idx)
            .ok_or_else(|| ChaincodeError::BadRequest(format!("missing argument {name}")))?;
        String::from_utf8(raw.clone())
            .map_err(|_| ChaincodeError::BadRequest(format!("argument {name} is not utf-8")))
    }
}

impl Chaincode for StlChaincode {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "CreateShipment" => {
                Self::require_org(ctx, &self.seller_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let goods = Self::arg_str(args, 1, "goods")?;
                if po_ref.is_empty() {
                    return Err(ChaincodeError::BadRequest(
                        "po_ref must be non-empty".into(),
                    ));
                }
                if ctx.get_state(&Self::shipment_key(&po_ref)).is_some() {
                    return Err(ChaincodeError::BadRequest(format!(
                        "shipment {po_ref:?} already exists"
                    )));
                }
                let shipment = Shipment {
                    po_ref: po_ref.clone(),
                    seller: ctx.creator().subject().qualified_name(),
                    carrier: String::new(),
                    goods,
                    status: ShipmentStatus::Created,
                    bl_id: String::new(),
                };
                ctx.put_state(&Self::shipment_key(&po_ref), shipment.encode_to_vec());
                Ok(Vec::new())
            }
            "ConfirmBooking" => {
                Self::require_org(ctx, &self.carrier_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let mut shipment = Self::load_shipment(ctx, &po_ref)?;
                if shipment.status != ShipmentStatus::Created {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot confirm booking in state {:?}",
                        shipment.status
                    )));
                }
                shipment.carrier = ctx.creator().subject().qualified_name();
                shipment.status = ShipmentStatus::BookingConfirmed;
                ctx.put_state(&Self::shipment_key(&po_ref), shipment.encode_to_vec());
                Ok(Vec::new())
            }
            "TransferPossession" => {
                Self::require_org(ctx, &self.seller_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let mut shipment = Self::load_shipment(ctx, &po_ref)?;
                if shipment.status != ShipmentStatus::BookingConfirmed {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot transfer possession in state {:?}",
                        shipment.status
                    )));
                }
                shipment.status = ShipmentStatus::InPossession;
                ctx.put_state(&Self::shipment_key(&po_ref), shipment.encode_to_vec());
                Ok(Vec::new())
            }
            "IssueBillOfLading" => {
                Self::require_org(ctx, &self.carrier_org)?;
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let bl_id = Self::arg_str(args, 1, "bl_id")?;
                let mut shipment = Self::load_shipment(ctx, &po_ref)?;
                if shipment.status != ShipmentStatus::InPossession {
                    return Err(ChaincodeError::BadRequest(format!(
                        "cannot issue B/L in state {:?}",
                        shipment.status
                    )));
                }
                let bl = BillOfLading {
                    bl_id: bl_id.clone(),
                    po_ref: po_ref.clone(),
                    carrier: ctx.creator().subject().qualified_name(),
                    goods: shipment.goods.clone(),
                    issued_height: ctx.peer().ledger_height,
                };
                shipment.status = ShipmentStatus::BlIssued;
                shipment.bl_id = bl_id;
                ctx.put_state(&Self::shipment_key(&po_ref), shipment.encode_to_vec());
                ctx.put_state(&Self::bl_key(&po_ref), bl.encode_to_vec());
                Ok(Vec::new())
            }
            "GetShipment" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                ctx.get_state(&Self::shipment_key(&po_ref))
                    .ok_or_else(|| ChaincodeError::NotFound(format!("shipment {po_ref:?}")))
            }
            // Cross-network *invocation* target (the extension of paper §5
            // and §7): a foreign trade-finance network records the
            // financing status of a purchase order on the logistics ledger.
            "RecordFinancingStatus" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let status = Self::arg_str(args, 1, "status")?;
                // interop-adaptation: relay invocations pass the Exposure
                // interop-adaptation: Control check before writing.
                if ctx.is_relay_query() {
                    // interop-adaptation
                    let network = ctx
                        .transient("requester-network") // interop-adaptation
                        .ok_or_else(|| {
                            ChaincodeError::BadRequest("missing requester-network".into())
                        })?
                        .to_vec(); // interop-adaptation
                    let org = ctx
                        .transient("requester-org") // interop-adaptation
                        .ok_or_else(|| ChaincodeError::BadRequest("missing requester-org".into()))?
                        .to_vec(); // interop-adaptation
                    let cert = ctx
                        .transient("requester-cert") // interop-adaptation
                        .ok_or_else(|| ChaincodeError::BadRequest("missing requester-cert".into()))?
                        .to_vec(); // interop-adaptation
                    ctx.invoke_chaincode(
                        // interop-adaptation
                        crate::ECC_NAME, // interop-adaptation
                        "CheckAccess",   // interop-adaptation
                        &[
                            network,                           // interop-adaptation
                            org,                               // interop-adaptation
                            Self::NAME.as_bytes().to_vec(),    // interop-adaptation
                            b"RecordFinancingStatus".to_vec(), // interop-adaptation
                            cert.clone(),                      // interop-adaptation
                        ],
                    )?; // interop-adaptation
                        // The shipment must exist before financing is recorded.
                    Self::load_shipment(ctx, &po_ref)?;
                    ctx.put_state(&format!("financing:{po_ref}"), status.clone().into_bytes());
                    // interop-adaptation: encrypt the acknowledgement so
                    // interop-adaptation: relays cannot read it.
                    return ctx.invoke_chaincode(
                        // interop-adaptation
                        crate::ECC_NAME,   // interop-adaptation
                        "EncryptResponse", // interop-adaptation
                        &[cert, format!("recorded:{status}").into_bytes()], // interop-adaptation
                    ); // interop-adaptation
                }
                Self::load_shipment(ctx, &po_ref)?;
                ctx.put_state(&format!("financing:{po_ref}"), status.into_bytes());
                Ok(b"recorded".to_vec())
            }
            "GetFinancingStatus" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                ctx.get_state(&format!("financing:{po_ref}"))
                    .ok_or_else(|| {
                        ChaincodeError::NotFound(format!("no financing status for {po_ref:?}"))
                    })
            }
            // Provenance: every recorded state of the shipment, oldest
            // first, as newline-separated status codes (GetHistoryForKey).
            "GetShipmentHistory" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                let history = ctx.get_history(&Self::shipment_key(&po_ref));
                if history.is_empty() {
                    return Err(ChaincodeError::NotFound(format!(
                        "no history for shipment {po_ref:?}"
                    )));
                }
                let mut lines = Vec::with_capacity(history.len());
                for entry in history {
                    let status = entry
                        .value
                        .as_deref()
                        .and_then(|bytes| Shipment::decode_from_slice(bytes).ok())
                        .map(|s| format!("{:?}", s.status))
                        .unwrap_or_else(|| "Deleted".to_string());
                    lines.push(format!("{}:{}", entry.version, status));
                }
                Ok(lines.join("\n").into_bytes())
            }
            "GetBillOfLading" => {
                let po_ref = Self::arg_str(args, 0, "po_ref")?;
                // interop-adaptation: relay queries must pass the Exposure
                // interop-adaptation: Control check before any data access.
                if ctx.is_relay_query() {
                    // interop-adaptation
                    let network = ctx
                        .transient("requester-network") // interop-adaptation
                        .ok_or_else(|| {
                            ChaincodeError::BadRequest("missing requester-network".into())
                            // interop-adaptation
                        })?
                        .to_vec(); // interop-adaptation
                    let org = ctx
                        .transient("requester-org") // interop-adaptation
                        .ok_or_else(|| {
                            ChaincodeError::BadRequest("missing requester-org".into())
                            // interop-adaptation
                        })?
                        .to_vec(); // interop-adaptation
                    let cert = ctx
                        .transient("requester-cert") // interop-adaptation
                        .ok_or_else(|| {
                            ChaincodeError::BadRequest("missing requester-cert".into())
                            // interop-adaptation
                        })?
                        .to_vec(); // interop-adaptation
                    ctx.invoke_chaincode(
                        // interop-adaptation
                        crate::ECC_NAME, // interop-adaptation
                        "CheckAccess",   // interop-adaptation
                        &[
                            network,                        // interop-adaptation
                            org,                            // interop-adaptation
                            Self::NAME.as_bytes().to_vec(), // interop-adaptation
                            b"GetBillOfLading".to_vec(),    // interop-adaptation
                            cert,                           // interop-adaptation
                        ],
                    )?; // interop-adaptation
                }
                let bl = ctx
                    .get_state(&Self::bl_key(&po_ref))
                    .ok_or_else(|| ChaincodeError::NotFound(format!("no B/L for {po_ref:?}")))?;
                // interop-adaptation: encrypt the response for the foreign
                // interop-adaptation: requester so relays cannot read it.
                if ctx.is_relay_query() {
                    // interop-adaptation
                    let cert = ctx
                        .transient("requester-cert") // interop-adaptation
                        .ok_or_else(|| {
                            // interop-adaptation
                            ChaincodeError::BadRequest(
                                // interop-adaptation
                                "relay query lacks requester certificate".into(),
                            ) // interop-adaptation
                        })? // interop-adaptation
                        .to_vec(); // interop-adaptation
                    return ctx.invoke_chaincode(
                        // interop-adaptation
                        crate::ECC_NAME,   // interop-adaptation
                        "EncryptResponse", // interop-adaptation
                        &[cert, bl],       // interop-adaptation
                    ); // interop-adaptation
                }
                Ok(bl)
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmdac::Cmdac;
    use crate::ecc::Ecc;
    use std::sync::Arc;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::group::Group;
    use tdt_fabric::chaincode::{ChaincodeRegistry, PeerInfo, Proposal};
    use tdt_fabric::msp::{Identity, Msp};
    use tdt_ledger::state::WorldState;
    use tdt_wire::messages::{encode_certificate, NetworkConfig, OrgConfig};

    struct Fixture {
        state: WorldState,
        registry: ChaincodeRegistry,
        seller: Identity,
        carrier: Identity,
        foreign_client: Identity,
        foreign_config: NetworkConfig,
        tx_counter: u64,
    }

    fn fixture() -> Fixture {
        let mut seller_msp = Msp::new("stl", "seller-org", Group::test_group(), b"s");
        let mut carrier_msp = Msp::new("stl", "carrier-org", Group::test_group(), b"c");
        let seller = seller_msp.enroll("seller-app", CertRole::Client, false);
        let carrier = carrier_msp.enroll("carrier-app", CertRole::Client, false);
        let mut foreign_msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"f");
        let foreign_client = foreign_msp.enroll("swt-sc", CertRole::Client, true);
        let foreign_config = NetworkConfig {
            network_id: "swt".into(),
            group_name: "modp768".into(),
            orgs: vec![OrgConfig {
                org_id: "seller-bank-org".into(),
                root_cert: encode_certificate(foreign_msp.root_certificate()),
                peer_certs: vec![],
            }],
        };
        let mut registry = ChaincodeRegistry::new();
        registry.deploy(
            StlChaincode::NAME,
            Arc::new(StlChaincode::new("seller-org", "carrier-org")),
        );
        registry.deploy("ECC", Arc::new(Ecc::new()));
        registry.deploy("CMDAC", Arc::new(Cmdac::new()));
        Fixture {
            state: WorldState::new(),
            registry,
            seller,
            carrier,
            foreign_client,
            foreign_config,
            tx_counter: 0,
        }
    }

    fn invoke_as(
        f: &mut Fixture,
        caller: &Identity,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        relay: bool,
        transient: Vec<(&str, Vec<u8>)>,
    ) -> Result<Vec<u8>, ChaincodeError> {
        f.tx_counter += 1;
        let mut proposal = Proposal::new(
            format!("tx-{}", f.tx_counter),
            "trade-channel",
            chaincode,
            function,
            args.clone(),
            caller.certificate().clone(),
        );
        if relay {
            proposal = proposal.as_relay_query();
        }
        for (k, v) in transient {
            proposal = proposal.with_transient(k, v);
        }
        let peer = PeerInfo {
            peer_id: "stl/seller-org/peer0".into(),
            org_id: "seller-org".into(),
            network_id: "stl".into(),
            ledger_height: f.tx_counter,
        };
        let mut ctx = TxContext::new(&f.state, &f.registry, &proposal, peer);
        let code = f.registry.get(chaincode).unwrap();
        let result = code.invoke(&mut ctx, function, &args);
        let rwset = ctx.into_rwset();
        if result.is_ok() {
            f.state
                .apply(&rwset, tdt_ledger::rwset::Version::new(f.tx_counter, 0));
        }
        result
    }

    fn full_lifecycle(f: &mut Fixture, po: &str) {
        let seller = f.seller.clone();
        let carrier = f.carrier.clone();
        invoke_as(
            f,
            &seller,
            StlChaincode::NAME,
            "CreateShipment",
            vec![po.into(), b"600 tulip bulbs".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        invoke_as(
            f,
            &carrier,
            StlChaincode::NAME,
            "ConfirmBooking",
            vec![po.into()],
            false,
            vec![],
        )
        .unwrap();
        invoke_as(
            f,
            &seller,
            StlChaincode::NAME,
            "TransferPossession",
            vec![po.into()],
            false,
            vec![],
        )
        .unwrap();
        invoke_as(
            f,
            &carrier,
            StlChaincode::NAME,
            "IssueBillOfLading",
            vec![po.into(), b"BL-7".to_vec()],
            false,
            vec![],
        )
        .unwrap();
    }

    #[test]
    fn shipment_lifecycle() {
        let mut f = fixture();
        full_lifecycle(&mut f, "PO-1001");
        let seller = f.seller.clone();
        let bytes = invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "GetShipment",
            vec![b"PO-1001".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        let shipment = Shipment::decode_from_slice(&bytes).unwrap();
        assert_eq!(shipment.status, ShipmentStatus::BlIssued);
        assert_eq!(shipment.bl_id, "BL-7");
        assert_eq!(shipment.seller, "stl/seller-org/seller-app");
        assert_eq!(shipment.carrier, "stl/carrier-org/carrier-app");
    }

    #[test]
    fn local_get_bl_plaintext() {
        let mut f = fixture();
        full_lifecycle(&mut f, "PO-1001");
        let seller = f.seller.clone();
        let bytes = invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "GetBillOfLading",
            vec![b"PO-1001".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        let bl = BillOfLading::decode_from_slice(&bytes).unwrap();
        assert_eq!(bl.bl_id, "BL-7");
        assert_eq!(bl.po_ref, "PO-1001");
        assert_eq!(bl.goods, "600 tulip bulbs");
    }

    #[test]
    fn wrong_org_rejected_per_function() {
        let mut f = fixture();
        let seller = f.seller.clone();
        let carrier = f.carrier.clone();
        // Carrier cannot create shipments.
        assert!(matches!(
            invoke_as(
                &mut f,
                &carrier,
                StlChaincode::NAME,
                "CreateShipment",
                vec![b"PO-X".to_vec(), b"goods".to_vec()],
                false,
                vec![],
            ),
            Err(ChaincodeError::AccessDenied(_))
        ));
        invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "CreateShipment",
            vec![b"PO-X".to_vec(), b"goods".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        // Seller cannot confirm bookings.
        assert!(matches!(
            invoke_as(
                &mut f,
                &seller,
                StlChaincode::NAME,
                "ConfirmBooking",
                vec![b"PO-X".to_vec()],
                false,
                vec![],
            ),
            Err(ChaincodeError::AccessDenied(_))
        ));
    }

    #[test]
    fn state_machine_enforced() {
        let mut f = fixture();
        let seller = f.seller.clone();
        let carrier = f.carrier.clone();
        invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "CreateShipment",
            vec![b"PO-1".to_vec(), b"goods".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        // Cannot issue a B/L before possession transfer.
        assert!(matches!(
            invoke_as(
                &mut f,
                &carrier,
                StlChaincode::NAME,
                "IssueBillOfLading",
                vec![b"PO-1".to_vec(), b"BL-1".to_vec()],
                false,
                vec![],
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn duplicate_shipment_rejected() {
        let mut f = fixture();
        let seller = f.seller.clone();
        invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "CreateShipment",
            vec![b"PO-1".to_vec(), b"goods".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        assert!(matches!(
            invoke_as(
                &mut f,
                &seller,
                StlChaincode::NAME,
                "CreateShipment",
                vec![b"PO-1".to_vec(), b"more".to_vec()],
                false,
                vec![],
            ),
            Err(ChaincodeError::BadRequest(_))
        ));
    }

    #[test]
    fn missing_bl_not_found() {
        let mut f = fixture();
        let seller = f.seller.clone();
        invoke_as(
            &mut f,
            &seller,
            StlChaincode::NAME,
            "CreateShipment",
            vec![b"PO-1".to_vec(), b"goods".to_vec()],
            false,
            vec![],
        )
        .unwrap();
        assert!(matches!(
            invoke_as(
                &mut f,
                &seller,
                StlChaincode::NAME,
                "GetBillOfLading",
                vec![b"PO-1".to_vec()],
                false,
                vec![],
            ),
            Err(ChaincodeError::NotFound(_))
        ));
    }

    fn setup_interop(f: &mut Fixture) {
        // Record SWT config + exposure rule on STL.
        let admin = f.seller.clone();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_as(
            f,
            &admin,
            "CMDAC",
            "RecordForeignConfig",
            vec![cfg],
            false,
            vec![],
        )
        .unwrap();
        invoke_as(
            f,
            &admin,
            "ECC",
            "AddAccessRule",
            vec![
                b"swt".to_vec(),
                b"seller-bank-org".to_vec(),
                StlChaincode::NAME.as_bytes().to_vec(),
                b"GetBillOfLading".to_vec(),
            ],
            false,
            vec![],
        )
        .unwrap();
    }

    #[test]
    fn relay_query_returns_encrypted_bl() {
        let mut f = fixture();
        full_lifecycle(&mut f, "PO-1001");
        setup_interop(&mut f);
        let foreign = f.foreign_client.clone();
        let cert_bytes = encode_certificate(foreign.certificate());
        let wrapped_bytes = invoke_as(
            &mut f,
            &foreign,
            StlChaincode::NAME,
            "GetBillOfLading",
            vec![b"PO-1001".to_vec()],
            true,
            vec![
                ("requester-network", b"swt".to_vec()),
                ("requester-org", b"seller-bank-org".to_vec()),
                ("requester-cert", cert_bytes),
            ],
        )
        .unwrap();
        // The relay-visible bytes are ciphertext (plus a hash), not the B/L.
        let bl_plain = {
            let seller = f.seller.clone();
            invoke_as(
                &mut f,
                &seller,
                StlChaincode::NAME,
                "GetBillOfLading",
                vec![b"PO-1001".to_vec()],
                false,
                vec![],
            )
            .unwrap()
        };
        assert_ne!(wrapped_bytes, bl_plain);
        let wrapped = crate::ecc::EncryptedResult::from_bytes(&wrapped_bytes).unwrap();
        assert_eq!(wrapped.plaintext_hash, tdt_crypto::sha256(&bl_plain));
        // Only the foreign client can decrypt.
        let ct = tdt_crypto::elgamal::Ciphertext::from_bytes(&wrapped.ciphertext).unwrap();
        let decrypted = foreign.decryption_key().unwrap().decrypt(&ct).unwrap();
        assert_eq!(decrypted, bl_plain);
    }

    #[test]
    fn relay_query_without_rule_denied() {
        let mut f = fixture();
        full_lifecycle(&mut f, "PO-1001");
        // Record config but no exposure rule.
        let admin = f.seller.clone();
        let cfg = f.foreign_config.encode_to_vec();
        invoke_as(
            &mut f,
            &admin,
            "CMDAC",
            "RecordForeignConfig",
            vec![cfg],
            false,
            vec![],
        )
        .unwrap();
        let foreign = f.foreign_client.clone();
        let cert_bytes = encode_certificate(foreign.certificate());
        let err = invoke_as(
            &mut f,
            &foreign,
            StlChaincode::NAME,
            "GetBillOfLading",
            vec![b"PO-1001".to_vec()],
            true,
            vec![
                ("requester-network", b"swt".to_vec()),
                ("requester-org", b"seller-bank-org".to_vec()),
                ("requester-cert", cert_bytes),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::AccessDenied(_)));
    }

    #[test]
    fn relay_query_missing_transient_rejected() {
        let mut f = fixture();
        full_lifecycle(&mut f, "PO-1001");
        setup_interop(&mut f);
        let foreign = f.foreign_client.clone();
        let err = invoke_as(
            &mut f,
            &foreign,
            StlChaincode::NAME,
            "GetBillOfLading",
            vec![b"PO-1001".to_vec()],
            true,
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, ChaincodeError::BadRequest(_)));
    }

    #[test]
    fn shipment_message_roundtrip() {
        let s = Shipment {
            po_ref: "PO-1".into(),
            seller: "a".into(),
            carrier: "b".into(),
            goods: "g".into(),
            status: ShipmentStatus::InPossession,
            bl_id: "BL".into(),
        };
        assert_eq!(Shipment::decode_from_slice(&s.encode_to_vec()).unwrap(), s);
    }

    #[test]
    fn bl_message_roundtrip() {
        let bl = BillOfLading {
            bl_id: "BL-1".into(),
            po_ref: "PO-1".into(),
            carrier: "c".into(),
            goods: "g".into(),
            issued_height: 9,
        };
        assert_eq!(
            BillOfLading::decode_from_slice(&bl.encode_to_vec()).unwrap(),
            bl
        );
    }
}
