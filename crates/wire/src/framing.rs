//! Length-prefixed frames for stream transports.
//!
//! Relay-to-relay communication over TCP wraps every encoded
//! [`crate::messages::RelayEnvelope`] in a 4-byte big-endian length prefix.
//! A configurable maximum frame size protects receivers from memory
//! exhaustion (part of the DoS mitigation discussed in paper §5).

use crate::error::WireError;
use std::io::{Read, Write};

/// Default maximum frame size: 16 MiB.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Upper bound on what [`read_frame`] allocates before any payload bytes
/// have actually arrived. The length prefix is attacker-controlled: a
/// 4-byte header claiming a 16 MiB payload must not cost the receiver a
/// 16 MiB allocation up front. Buffers grow past this only as fast as
/// real bytes are read.
pub const MAX_EAGER_FRAME_ALLOC: usize = 64 * 1024;

/// Writes one length-prefixed frame to `w`.
///
/// A mutable reference to any `Write` can be passed as `w`.
///
/// # Errors
///
/// * [`WireError::FrameTooLarge`] if `payload` exceeds `max_frame`.
/// * [`WireError::Io`] on write failure.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8], max_frame: usize) -> Result<(), WireError> {
    if payload.len() > max_frame {
        return Err(WireError::FrameTooLarge {
            size: payload.len(),
            max: max_frame,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from `r`.
///
/// A mutable reference to any `Read` can be passed as `r`.
///
/// # Errors
///
/// * [`WireError::FrameTooLarge`] if the declared size exceeds `max_frame`.
/// * [`WireError::UnexpectedEof`] if the stream ends mid-frame.
/// * [`WireError::Io`] on read failure.
pub fn read_frame<R: Read>(mut r: R, max_frame: usize) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    read_exact_or_eof(&mut r, &mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            size: len,
            max: max_frame,
        });
    }
    // Read incrementally: allocate at most MAX_EAGER_FRAME_ALLOC ahead of
    // the bytes that have really arrived, so the declared length alone
    // cannot exhaust memory.
    let mut payload = Vec::with_capacity(len.min(MAX_EAGER_FRAME_ALLOC));
    let mut chunk = vec![0u8; len.min(MAX_EAGER_FRAME_ALLOC)];
    while payload.len() < len {
        let want = (len - payload.len()).min(chunk.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) => return Err(WireError::UnexpectedEof),
            Ok(n) => payload.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(payload)
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::UnexpectedEof),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        let frame = read_frame(Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame, b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"third frame", DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = Cursor::new(&buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"first"
        );
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"third frame"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn oversized_write_rejected() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &[0u8; 100], 10).unwrap_err();
        assert_eq!(err, WireError::FrameTooLarge { size: 100, max: 10 });
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_read_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1_000u32.to_be_bytes());
        buf.extend_from_slice(&[0u8; 1000]);
        let err = read_frame(Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(
            err,
            WireError::FrameTooLarge {
                size: 1000,
                max: 10
            }
        );
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"complete", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(buf.len() - 3);
        assert_eq!(
            read_frame(Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    /// Records the largest read buffer the frame reader asks for.
    struct BufSizeProbe<R> {
        inner: R,
        max_requested: usize,
    }

    impl<R: Read> Read for BufSizeProbe<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.max_requested = self.max_requested.max(buf.len());
            self.inner.read(buf)
        }
    }

    #[test]
    fn huge_declared_length_with_tiny_body_is_eof_not_alloc() {
        // A 4-byte header claiming the full 16 MiB followed by nothing:
        // must fail with EOF, and must never have asked the underlying
        // reader to fill more than the eager-allocation cap at once.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(DEFAULT_MAX_FRAME as u32).to_be_bytes());
        buf.extend_from_slice(&[0u8; 3]);
        let mut probe = BufSizeProbe {
            inner: Cursor::new(&buf),
            max_requested: 0,
        };
        assert_eq!(
            read_frame(&mut probe, DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::UnexpectedEof
        );
        assert!(
            probe.max_requested <= MAX_EAGER_FRAME_ALLOC,
            "reader asked for {} bytes at once",
            probe.max_requested
        );
    }

    #[test]
    fn frame_larger_than_eager_cap_roundtrips() {
        let payload: Vec<u8> = (0..3 * MAX_EAGER_FRAME_ALLOC).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, DEFAULT_MAX_FRAME).unwrap();
        let frame = read_frame(Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame, payload);
    }

    /// Dribbles bytes out one at a time, as a slow or adversarial peer
    /// would.
    struct OneByteReader<R>(R);

    impl<R: Read> Read for OneByteReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.read(&mut buf[..1])
        }
    }

    #[test]
    fn short_reads_reassemble_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"dribbled payload", DEFAULT_MAX_FRAME).unwrap();
        let frame = read_frame(OneByteReader(Cursor::new(&buf)), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame, b"dribbled payload");
    }

    #[test]
    fn truncated_header_is_eof() {
        let buf = [0u8, 0];
        assert_eq!(
            read_frame(Cursor::new(&buf[..]), DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::UnexpectedEof
        );
    }
}
