#![warn(missing_docs)]

//! Network-neutral wire protocol for cross-network data transfer.
//!
//! The paper specifies that relays communicate "using a shared
//! network-neutral protocol specified using Protocol Buffers" (§3.2). This
//! crate reproduces that layer from scratch:
//!
//! * [`varint`] — LEB128 variable-length integers (proto3 wire rule).
//! * [`codec`] — a tag/wire-type field codec compatible with the proto3
//!   binary format, plus the [`codec::Message`] trait.
//! * [`messages`] — the relay protocol schema: [`messages::NetworkAddress`],
//!   [`messages::Query`], [`messages::QueryResponse`], attestation proofs,
//!   verification policies, and the [`messages::RelayEnvelope`] that wraps
//!   them on the wire.
//! * [`framing`] — length-prefixed frames for stream transports (TCP).
//!
//! # Example
//!
//! ```
//! use tdt_wire::codec::Message;
//! use tdt_wire::messages::NetworkAddress;
//!
//! let addr = NetworkAddress::new("simplified-tradelens", "trade-channel",
//!                                "TradeLensCC", "GetBillOfLading")
//!     .with_arg(b"PO-1001".to_vec());
//! let bytes = addr.encode_to_vec();
//! let decoded = NetworkAddress::decode_from_slice(&bytes)?;
//! assert_eq!(decoded, addr);
//! # Ok::<(), tdt_wire::WireError>(())
//! ```

pub mod codec;
pub mod error;
pub mod framing;
pub mod messages;
pub mod varint;

pub use error::WireError;
