//! Wire protocol error type.

use std::error::Error;
use std::fmt;

/// Errors raised while encoding or decoding wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete value was read.
    UnexpectedEof,
    /// A varint exceeded 10 bytes (64-bit overflow).
    VarintOverflow,
    /// A declared length exceeds the remaining buffer.
    LengthOutOfBounds {
        /// The length the field header declared.
        declared: u64,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// A field had an unexpected wire type.
    WireTypeMismatch {
        /// The field number.
        field: u32,
        /// The wire type the decoder expected.
        expected: &'static str,
    },
    /// An unknown wire type code appeared in a tag.
    UnknownWireType(u8),
    /// A required field was absent from the encoded message.
    MissingField(&'static str),
    /// A field contained invalid UTF-8.
    InvalidUtf8(&'static str),
    /// An enum field carried an unknown discriminant.
    UnknownEnumValue {
        /// Which field.
        field: &'static str,
        /// The unknown discriminant.
        value: u64,
    },
    /// An embedded structure failed validation.
    Invalid(String),
    /// A frame exceeded the transport's maximum size.
    FrameTooLarge {
        /// The offending frame size.
        size: usize,
        /// The configured maximum.
        max: usize,
    },
    /// An I/O failure in the framing layer.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::LengthOutOfBounds {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining {remaining} bytes"
            ),
            WireError::WireTypeMismatch { field, expected } => {
                write!(f, "field {field} expected wire type {expected}")
            }
            WireError::UnknownWireType(code) => write!(f, "unknown wire type {code}"),
            WireError::MissingField(name) => write!(f, "missing required field {name}"),
            WireError::InvalidUtf8(name) => write!(f, "field {name} is not valid utf-8"),
            WireError::UnknownEnumValue { field, value } => {
                write!(f, "field {field} has unknown enum value {value}")
            }
            WireError::Invalid(msg) => write!(f, "invalid message: {msg}"),
            WireError::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds maximum {max}")
            }
            WireError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            WireError::UnexpectedEof,
            WireError::VarintOverflow,
            WireError::LengthOutOfBounds {
                declared: 10,
                remaining: 2,
            },
            WireError::WireTypeMismatch {
                field: 3,
                expected: "varint",
            },
            WireError::UnknownWireType(7),
            WireError::MissingField("address"),
            WireError::InvalidUtf8("name"),
            WireError::UnknownEnumValue {
                field: "type",
                value: 99,
            },
            WireError::Invalid("oops".into()),
            WireError::FrameTooLarge { size: 100, max: 10 },
            WireError::Io("broken pipe".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::other("boom");
        let w: WireError = io.into();
        assert!(matches!(w, WireError::Io(_)));
    }
}
