//! The relay protocol message schema (paper §3.2).
//!
//! The protocol carries, per the paper: *"details on addressing a network,
//! ledger and contract, the function name and arguments for remote queries,
//! a verification policy that is satisfied by the relay in a source network,
//! and authentication details of the requesting entity. Similarly, a
//! response includes the data queried along with a proof that satisfies the
//! verification policy."*
//!
//! All messages implement [`Message`] and therefore encode to the proto3
//! binary format via [`crate::codec`].

use crate::codec::{Message, Reader, Writer};
use crate::error::WireError;
use tdt_crypto::cert::{CertRole, Certificate, Subject};
use tdt_crypto::schnorr::Signature;

/// Addresses a contract function on a remote ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkAddress {
    /// Unique name of the target network, e.g. `simplified-tradelens`.
    pub network_id: String,
    /// Ledger (channel) within the network.
    pub ledger_id: String,
    /// Contract (chaincode) name.
    pub contract_id: String,
    /// Function to invoke.
    pub function: String,
    /// Function arguments, opaque bytes.
    pub args: Vec<Vec<u8>>,
}

impl NetworkAddress {
    /// Creates an address with no arguments.
    pub fn new(
        network_id: impl Into<String>,
        ledger_id: impl Into<String>,
        contract_id: impl Into<String>,
        function: impl Into<String>,
    ) -> Self {
        NetworkAddress {
            network_id: network_id.into(),
            ledger_id: ledger_id.into(),
            contract_id: contract_id.into(),
            function: function.into(),
            args: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    pub fn with_arg(mut self, arg: Vec<u8>) -> Self {
        self.args.push(arg);
        self
    }

    /// Canonical display form `network:ledger:contract:function`.
    pub fn display_name(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.network_id, self.ledger_id, self.contract_id, self.function
        )
    }
}

impl Message for NetworkAddress {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.network_id);
        w.string(2, &self.ledger_id);
        w.string(3, &self.contract_id);
        w.string(4, &self.function);
        w.repeated_bytes(5, &self.args);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = NetworkAddress::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.network_id = value.as_string(1, "network_id")?,
                2 => out.ledger_id = value.as_string(2, "ledger_id")?,
                3 => out.contract_id = value.as_string(3, "contract_id")?,
                4 => out.function = value.as_string(4, "function")?,
                5 => out.args.push(value.as_bytes(5)?.to_vec()),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A node in a verification-policy expression tree.
///
/// The paper's proof-of-concept policy — "proof from a peer in both the
/// Seller and Carrier organizations" — is `And[Org(seller), Org(carrier)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyNode {
    /// Satisfied by a valid attestation from any peer of the organization.
    Org(String),
    /// Satisfied when every child is satisfied.
    And(Vec<PolicyNode>),
    /// Satisfied when at least one child is satisfied.
    Or(Vec<PolicyNode>),
    /// Satisfied when at least `threshold` children are satisfied.
    OutOf(u32, Vec<PolicyNode>),
}

impl Default for PolicyNode {
    fn default() -> Self {
        PolicyNode::And(Vec::new())
    }
}

impl PolicyNode {
    /// All organization ids referenced anywhere in the tree.
    pub fn organizations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_orgs(&mut out);
        out
    }

    fn collect_orgs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PolicyNode::Org(o) => out.push(o),
            PolicyNode::And(cs) | PolicyNode::Or(cs) | PolicyNode::OutOf(_, cs) => {
                for c in cs {
                    c.collect_orgs(out);
                }
            }
        }
    }

    /// Evaluates the tree against the set of organizations that produced
    /// valid attestations.
    pub fn is_satisfied<S: AsRef<str>>(&self, endorsing_orgs: &[S]) -> bool {
        match self {
            PolicyNode::Org(org) => endorsing_orgs.iter().any(|o| o.as_ref() == org),
            PolicyNode::And(cs) => cs.iter().all(|c| c.is_satisfied(endorsing_orgs)),
            PolicyNode::Or(cs) => cs.iter().any(|c| c.is_satisfied(endorsing_orgs)),
            PolicyNode::OutOf(k, cs) => {
                cs.iter().filter(|c| c.is_satisfied(endorsing_orgs)).count() >= *k as usize
            }
        }
    }

    /// Depth of the expression tree (an `Org` leaf is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            PolicyNode::Org(_) => 1,
            PolicyNode::And(cs) | PolicyNode::Or(cs) | PolicyNode::OutOf(_, cs) => {
                1 + cs.iter().map(PolicyNode::depth).max().unwrap_or(0)
            }
        }
    }
}

impl Message for PolicyNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            PolicyNode::Org(org) => {
                w.u64(1, 1);
                w.string(2, org);
            }
            PolicyNode::And(children) => {
                w.u64(1, 2);
                w.repeated_messages(4, children);
            }
            PolicyNode::Or(children) => {
                w.u64(1, 3);
                w.repeated_messages(4, children);
            }
            PolicyNode::OutOf(threshold, children) => {
                w.u64(1, 4);
                w.u64(3, *threshold as u64);
                w.repeated_messages(4, children);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut kind = 0u64;
        let mut org = String::new();
        let mut threshold = 0u64;
        let mut children = Vec::new();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => kind = value.as_u64(1)?,
                2 => org = value.as_string(2, "org")?,
                3 => threshold = value.as_u64(3)?,
                4 => children.push(value.as_message::<PolicyNode>(4)?),
                _ => {}
            }
        }
        match kind {
            1 => Ok(PolicyNode::Org(org)),
            2 => Ok(PolicyNode::And(children)),
            3 => Ok(PolicyNode::Or(children)),
            4 => Ok(PolicyNode::OutOf(threshold as u32, children)),
            v => Err(WireError::UnknownEnumValue {
                field: "policy kind",
                value: v,
            }),
        }
    }
}

/// A verification policy: the proof criteria a destination network demands.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerificationPolicy {
    /// The policy expression.
    pub expression: PolicyNode,
    /// True when result and metadata must be encrypted end-to-end with the
    /// requesting client's public key.
    pub confidential: bool,
}

impl VerificationPolicy {
    /// A policy requiring one peer from each listed organization.
    pub fn all_of_orgs<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        VerificationPolicy {
            expression: PolicyNode::And(
                orgs.into_iter()
                    .map(|o| PolicyNode::Org(o.into()))
                    .collect(),
            ),
            confidential: false,
        }
    }

    /// A policy requiring any one of the listed organizations.
    pub fn any_of_orgs<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        VerificationPolicy {
            expression: PolicyNode::Or(
                orgs.into_iter()
                    .map(|o| PolicyNode::Org(o.into()))
                    .collect(),
            ),
            confidential: false,
        }
    }

    /// Marks the policy as requiring end-to-end confidentiality.
    pub fn with_confidentiality(mut self) -> Self {
        self.confidential = true;
        self
    }
}

impl Message for VerificationPolicy {
    fn encode(&self, w: &mut Writer) {
        w.message(1, &self.expression);
        w.bool(2, self.confidential);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = VerificationPolicy::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.expression = value.as_message(1)?,
                2 => out.confidential = value.as_bool(2)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Authentication details of the requesting entity (paper §3.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuthInfo {
    /// Network the requester belongs to.
    pub network_id: String,
    /// Organization within that network.
    pub organization_id: String,
    /// The requester's certificate (wire-encoded [`Certificate`]).
    pub certificate: Vec<u8>,
    /// Requester's signature over the query's canonical bytes.
    pub signature: Vec<u8>,
}

impl AuthInfo {
    /// Decodes the embedded certificate.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the certificate bytes are malformed.
    pub fn decode_certificate(&self) -> Result<Certificate, WireError> {
        decode_certificate(&self.certificate)
    }
}

impl Message for AuthInfo {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.network_id);
        w.string(2, &self.organization_id);
        w.bytes(3, &self.certificate);
        w.bytes(4, &self.signature);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = AuthInfo::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.network_id = value.as_string(1, "network_id")?,
                2 => out.organization_id = value.as_string(2, "organization_id")?,
                3 => out.certificate = value.as_bytes(3)?.to_vec(),
                4 => out.signature = value.as_bytes(4)?.to_vec(),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A cross-network query: Step 1 of the paper's message flow (Fig. 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Globally unique request id (set by the requesting relay).
    pub request_id: String,
    /// What to invoke, where.
    pub address: NetworkAddress,
    /// Proof criteria the source must satisfy.
    pub policy: VerificationPolicy,
    /// Who is asking.
    pub auth: AuthInfo,
    /// Anti-replay nonce generated by the requesting client and recorded on
    /// the destination ledger (paper §4.3).
    pub nonce: Vec<u8>,
    /// True for a cross-network *invocation* (ledger update) rather than a
    /// read-only query — the extension sketched in paper §5 and §7.
    pub invocation: bool,
}

impl Message for Query {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.request_id);
        w.message(2, &self.address);
        w.message(3, &self.policy);
        w.message(4, &self.auth);
        w.bytes(5, &self.nonce);
        w.bool(6, self.invocation);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = Query::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.request_id = value.as_string(1, "request_id")?,
                2 => out.address = value.as_message(2)?,
                3 => out.policy = value.as_message(3)?,
                4 => out.auth = value.as_message(4)?,
                5 => out.nonce = value.as_bytes(5)?.to_vec(),
                6 => out.invocation = value.as_bool(6)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// The metadata each endorsing peer signs over a query result (paper §4.3:
/// "a signature over query result metadata ... including the result").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultMetadata {
    /// Request this result answers.
    pub request_id: String,
    /// Canonical address string of the queried function.
    pub address: String,
    /// SHA-256 of the (plaintext) result bytes.
    pub result_hash: Vec<u8>,
    /// The requester's anti-replay nonce, echoed back.
    pub nonce: Vec<u8>,
    /// Qualified name of the responding peer.
    pub peer_id: String,
    /// Organization of the responding peer.
    pub org_id: String,
    /// Ledger height at execution time.
    pub ledger_height: u64,
    /// For cross-network *invocations*: the block the transaction
    /// committed in, plus one (zero means "not an invocation receipt").
    pub committed_block_plus_one: u64,
    /// For cross-network invocations: the committed transaction id.
    pub txid: String,
}

impl ResultMetadata {
    /// The committed block number when this metadata is an invocation
    /// receipt.
    pub fn committed_block(&self) -> Option<u64> {
        self.committed_block_plus_one.checked_sub(1)
    }
}

impl Message for ResultMetadata {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.request_id);
        w.string(2, &self.address);
        w.bytes(3, &self.result_hash);
        w.bytes(4, &self.nonce);
        w.string(5, &self.peer_id);
        w.string(6, &self.org_id);
        w.u64(7, self.ledger_height);
        w.u64(8, self.committed_block_plus_one);
        w.string(9, &self.txid);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = ResultMetadata::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.request_id = value.as_string(1, "request_id")?,
                2 => out.address = value.as_string(2, "address")?,
                3 => out.result_hash = value.as_bytes(3)?.to_vec(),
                4 => out.nonce = value.as_bytes(4)?.to_vec(),
                5 => out.peer_id = value.as_string(5, "peer_id")?,
                6 => out.org_id = value.as_string(6, "org_id")?,
                7 => out.ledger_height = value.as_u64(7)?,
                8 => out.committed_block_plus_one = value.as_u64(8)?,
                9 => out.txid = value.as_string(9, "txid")?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// One peer's attestation: `<encrypted metadata, signature>` per §4.3, plus
/// the signer's certificate so the destination can authenticate the signer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attestation {
    /// Wire-encoded [`Certificate`] of the signing peer.
    pub signer_cert: Vec<u8>,
    /// Schnorr signature over the (plaintext) metadata bytes.
    pub signature: Vec<u8>,
    /// Metadata — encrypted with the requester's public key when the policy
    /// is confidential, plaintext [`ResultMetadata`] encoding otherwise.
    pub metadata: Vec<u8>,
    /// True when `metadata` is an ElGamal ciphertext.
    pub metadata_encrypted: bool,
}

impl Message for Attestation {
    fn encode(&self, w: &mut Writer) {
        w.bytes(1, &self.signer_cert);
        w.bytes(2, &self.signature);
        w.bytes(3, &self.metadata);
        w.bool(4, self.metadata_encrypted);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = Attestation::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.signer_cert = value.as_bytes(1)?.to_vec(),
                2 => out.signature = value.as_bytes(2)?.to_vec(),
                3 => out.metadata = value.as_bytes(3)?.to_vec(),
                4 => out.metadata_encrypted = value.as_bool(4)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Query outcome status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseStatus {
    /// The query succeeded and carries a result + proof.
    #[default]
    Ok,
    /// The requester failed the source network's exposure-control check.
    AccessDenied,
    /// The source network could not satisfy the verification policy.
    PolicyUnsatisfiable,
    /// The addressed network/ledger/contract/function was not found.
    NotFound,
    /// Internal error in the source network or relay.
    Error,
}

impl ResponseStatus {
    fn code(self) -> u64 {
        match self {
            ResponseStatus::Ok => 0,
            ResponseStatus::AccessDenied => 1,
            ResponseStatus::PolicyUnsatisfiable => 2,
            ResponseStatus::NotFound => 3,
            ResponseStatus::Error => 4,
        }
    }

    fn from_code(code: u64) -> Result<Self, WireError> {
        match code {
            0 => Ok(ResponseStatus::Ok),
            1 => Ok(ResponseStatus::AccessDenied),
            2 => Ok(ResponseStatus::PolicyUnsatisfiable),
            3 => Ok(ResponseStatus::NotFound),
            4 => Ok(ResponseStatus::Error),
            v => Err(WireError::UnknownEnumValue {
                field: "status",
                value: v,
            }),
        }
    }
}

/// The reply to a [`Query`]: data plus proof (Steps 7-8 of Fig. 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResponse {
    /// Echoes the request id.
    pub request_id: String,
    /// Outcome.
    pub status: ResponseStatus,
    /// Human-readable error when status is not [`ResponseStatus::Ok`].
    pub error: String,
    /// The query result — ElGamal ciphertext when confidential, plaintext
    /// otherwise.
    pub result: Vec<u8>,
    /// True when `result` is encrypted.
    pub result_encrypted: bool,
    /// The proof: one attestation per selected peer.
    pub attestations: Vec<Attestation>,
}

impl Message for QueryResponse {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.request_id);
        w.u64(2, self.status.code());
        w.string(3, &self.error);
        w.bytes(4, &self.result);
        w.bool(5, self.result_encrypted);
        w.repeated_messages(6, &self.attestations);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = QueryResponse::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.request_id = value.as_string(1, "request_id")?,
                2 => out.status = ResponseStatus::from_code(value.as_u64(2)?)?,
                3 => out.error = value.as_string(3, "error")?,
                4 => out.result = value.as_bytes(4)?.to_vec(),
                5 => out.result_encrypted = value.as_bool(5)?,
                6 => out.attestations.push(value.as_message(6)?),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Discriminates [`RelayEnvelope`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvelopeKind {
    /// Payload is a [`Query`].
    #[default]
    QueryRequest,
    /// Payload is a [`QueryResponse`].
    QueryResponse,
    /// Payload is a UTF-8 error string.
    Error,
    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,
    /// Payload is an [`EventSubscribeRequest`] (cross-network events).
    EventSubscribe,
    /// Payload is a pushed [`EventNotice`].
    Event,
    /// Positive acknowledgement (subscription accepted, event received).
    Ack,
}

impl EnvelopeKind {
    fn code(self) -> u64 {
        match self {
            EnvelopeKind::QueryRequest => 0,
            EnvelopeKind::QueryResponse => 1,
            EnvelopeKind::Error => 2,
            EnvelopeKind::Ping => 3,
            EnvelopeKind::Pong => 4,
            EnvelopeKind::EventSubscribe => 5,
            EnvelopeKind::Event => 6,
            EnvelopeKind::Ack => 7,
        }
    }

    fn from_code(code: u64) -> Result<Self, WireError> {
        match code {
            0 => Ok(EnvelopeKind::QueryRequest),
            1 => Ok(EnvelopeKind::QueryResponse),
            2 => Ok(EnvelopeKind::Error),
            3 => Ok(EnvelopeKind::Ping),
            4 => Ok(EnvelopeKind::Pong),
            5 => Ok(EnvelopeKind::EventSubscribe),
            6 => Ok(EnvelopeKind::Event),
            7 => Ok(EnvelopeKind::Ack),
            v => Err(WireError::UnknownEnumValue {
                field: "envelope kind",
                value: v,
            }),
        }
    }
}

/// Distributed-trace position carried between relays (an embedded,
/// zero-elided message — the same backward-compat trick as
/// [`RelayEnvelope::correlation_id`]).
///
/// The all-default header means "no trace": every field is proto3
/// zero-elided, so a default header encodes to zero bytes, the embedded
/// field itself is elided, and frames from peers that do not trace stay
/// byte-identical to the pre-field encoding. Old decoders skip the field
/// as unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceHeader {
    /// High 64 bits of the 128-bit trace id (zero when untraced).
    pub trace_hi: u64,
    /// Low 64 bits of the 128-bit trace id (zero when untraced).
    pub trace_lo: u64,
    /// Sending span's id — the receiver parents its span under this.
    pub span_id: u64,
    /// Parent of the sending span (zero for a root span).
    pub parent_span_id: u64,
    /// Head-based sampling decision, propagated unchanged.
    pub sampled: bool,
}

impl TraceHeader {
    /// True when no trace is in progress (the header would be elided).
    pub fn is_unset(&self) -> bool {
        self.trace_hi == 0 && self.trace_lo == 0
    }
}

impl Message for TraceHeader {
    fn encode(&self, w: &mut Writer) {
        w.u64(1, self.trace_hi);
        w.u64(2, self.trace_lo);
        w.u64(3, self.span_id);
        w.u64(4, self.parent_span_id);
        w.bool(5, self.sampled);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = TraceHeader::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.trace_hi = value.as_u64(1)?,
                2 => out.trace_lo = value.as_u64(2)?,
                3 => out.span_id = value.as_u64(3)?,
                4 => out.parent_span_id = value.as_u64(4)?,
                5 => out.sampled = value.as_bool(5)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// The unit of relay-to-relay communication (Steps 3-4 and 8-9 of Fig. 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelayEnvelope {
    /// Payload discriminator.
    pub kind: EnvelopeKind,
    /// Identifier of the sending relay.
    pub source_relay: String,
    /// Network the payload is addressed to.
    pub dest_network: String,
    /// Encoded payload ([`Query`], [`QueryResponse`], or error text).
    pub payload: Vec<u8>,
    /// Correlates a reply with its request when many requests are
    /// multiplexed over one stream. Zero means "unset": peers that speak
    /// one request per connection never write the field (proto3 zero
    /// elision), so their frames are byte-identical to the pre-field
    /// encoding and old decoders skip it as an unknown field.
    pub correlation_id: u64,
    /// Distributed-trace position of the sender. The all-default header
    /// means "untraced" and is elided from the wire entirely, preserving
    /// byte-identical frames for peers without tracing.
    pub trace: TraceHeader,
    /// Batched sub-frames: each element is a complete encoded
    /// [`RelayEnvelope`] riding inside this one, amortizing framing over
    /// many queries per TCP frame. Empty means "unbatched": a repeated
    /// field with no elements writes zero bytes (proto3 elision), so
    /// frames from peers that never batch stay byte-identical to the
    /// pre-field encoding and old decoders skip the field as unknown.
    pub batch: Vec<Vec<u8>>,
}

impl RelayEnvelope {
    /// Wraps a query.
    pub fn query(
        source_relay: impl Into<String>,
        dest_network: impl Into<String>,
        q: &Query,
    ) -> Self {
        RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: source_relay.into(),
            dest_network: dest_network.into(),
            payload: q.encode_to_vec(),
            correlation_id: 0,
            trace: TraceHeader::default(),
            batch: Vec::new(),
        }
    }

    /// Wraps a query response.
    pub fn response(
        source_relay: impl Into<String>,
        dest_network: impl Into<String>,
        resp: &QueryResponse,
    ) -> Self {
        RelayEnvelope {
            kind: EnvelopeKind::QueryResponse,
            source_relay: source_relay.into(),
            dest_network: dest_network.into(),
            payload: resp.encode_to_vec(),
            correlation_id: 0,
            trace: TraceHeader::default(),
            batch: Vec::new(),
        }
    }

    /// Wraps a batch of per-item reply frames (each a complete encoded
    /// [`RelayEnvelope`], positionally matching the request batch).
    pub fn response_batch(
        source_relay: impl Into<String>,
        dest_network: impl Into<String>,
        batch: Vec<Vec<u8>>,
    ) -> Self {
        RelayEnvelope {
            kind: EnvelopeKind::QueryResponse,
            source_relay: source_relay.into(),
            dest_network: dest_network.into(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: TraceHeader::default(),
            batch,
        }
    }

    /// Wraps an error string.
    pub fn error(
        source_relay: impl Into<String>,
        dest_network: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        RelayEnvelope {
            kind: EnvelopeKind::Error,
            source_relay: source_relay.into(),
            dest_network: dest_network.into(),
            payload: message.into().into_bytes(),
            correlation_id: 0,
            trace: TraceHeader::default(),
            batch: Vec::new(),
        }
    }

    /// Tags the envelope with a correlation id (builder style), used by
    /// multiplexing stream transports to route replies to callers.
    pub fn with_correlation_id(mut self, correlation_id: u64) -> Self {
        self.correlation_id = correlation_id;
        self
    }

    /// Tags the envelope with the sender's trace position (builder
    /// style); an unset header leaves the frame byte-identical.
    pub fn with_trace(mut self, trace: TraceHeader) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches batched sub-frames (builder style); an empty batch
    /// leaves the frame byte-identical to the pre-field encoding.
    pub fn with_batch(mut self, batch: Vec<Vec<u8>>) -> Self {
        self.batch = batch;
        self
    }

    /// True when the envelope carries batched sub-frames.
    pub fn is_batch(&self) -> bool {
        !self.batch.is_empty()
    }
}

impl Message for RelayEnvelope {
    fn encode(&self, w: &mut Writer) {
        w.u64(1, self.kind.code());
        w.string(2, &self.source_relay);
        w.string(3, &self.dest_network);
        w.bytes(4, &self.payload);
        w.u64(5, self.correlation_id);
        w.message(6, &self.trace);
        w.repeated_bytes(7, &self.batch);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = RelayEnvelope::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.kind = EnvelopeKind::from_code(value.as_u64(1)?)?,
                2 => out.source_relay = value.as_string(2, "source_relay")?,
                3 => out.dest_network = value.as_string(3, "dest_network")?,
                4 => out.payload = value.as_bytes(4)?.to_vec(),
                5 => out.correlation_id = value.as_u64(5)?,
                6 => out.trace = value.as_message(6)?,
                7 => out.batch.push(value.as_bytes(7)?.to_vec()),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A decrypted proof bundle, as submitted by a destination-network client in
/// its transaction arguments (Step 10 of Fig. 2): the plaintext result plus
/// one attestation per source peer with *plaintext* metadata. The Data
/// Acceptance contract validates this bundle against the recorded
/// verification policy and source-network configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Proof {
    /// Request id the proof answers.
    pub request_id: String,
    /// Canonical address string of the queried function.
    pub address: String,
    /// The anti-replay nonce used in the query.
    pub nonce: Vec<u8>,
    /// The plaintext query result.
    pub result: Vec<u8>,
    /// Attestations with decrypted (plaintext) metadata.
    pub attestations: Vec<Attestation>,
}

impl Message for Proof {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.request_id);
        w.string(2, &self.address);
        w.bytes(3, &self.nonce);
        w.bytes(4, &self.result);
        w.repeated_messages(5, &self.attestations);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = Proof::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.request_id = value.as_string(1, "request_id")?,
                2 => out.address = value.as_string(2, "address")?,
                3 => out.nonce = value.as_bytes(3)?.to_vec(),
                4 => out.result = value.as_bytes(4)?.to_vec(),
                5 => out.attestations.push(value.as_message(5)?),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// One organization's share of a network configuration: its root CA
/// certificate and member peer certificates (what CMDAC records).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OrgConfig {
    /// Organization id.
    pub org_id: String,
    /// Wire-encoded root CA [`Certificate`].
    pub root_cert: Vec<u8>,
    /// Wire-encoded peer [`Certificate`]s.
    pub peer_certs: Vec<Vec<u8>>,
}

impl Message for OrgConfig {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.org_id);
        w.bytes(2, &self.root_cert);
        w.repeated_bytes(3, &self.peer_certs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = OrgConfig::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.org_id = value.as_string(1, "org_id")?,
                2 => out.root_cert = value.as_bytes(2)?.to_vec(),
                3 => out.peer_certs.push(value.as_bytes(3)?.to_vec()),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A foreign network's identity and topology information, the
/// "platform-independent schema" for configuration sharing (paper §5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkConfig {
    /// Unique network name.
    pub network_id: String,
    /// Group the network's keys live in.
    pub group_name: String,
    /// Per-organization certificates.
    pub orgs: Vec<OrgConfig>,
}

impl Message for NetworkConfig {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.network_id);
        w.string(2, &self.group_name);
        w.repeated_messages(3, &self.orgs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = NetworkConfig::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.network_id = value.as_string(1, "network_id")?,
                2 => out.group_name = value.as_string(2, "group_name")?,
                3 => out.orgs.push(value.as_message(3)?),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A request to receive a source network's block events (the
/// publish/subscribe primitive the paper lists in §2 and defers in §7).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventSubscribeRequest {
    /// Unique subscription id chosen by the subscriber.
    pub subscription_id: String,
    /// The source network whose events are requested.
    pub network_id: String,
    /// Relay endpoint events should be pushed back to.
    pub reply_endpoint: String,
    /// Authentication of the subscriber (same structure as queries).
    pub auth: AuthInfo,
}

impl Message for EventSubscribeRequest {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.subscription_id);
        w.string(2, &self.network_id);
        w.string(3, &self.reply_endpoint);
        w.message(4, &self.auth);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = EventSubscribeRequest::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.subscription_id = value.as_string(1, "subscription_id")?,
                2 => out.network_id = value.as_string(2, "network_id")?,
                3 => out.reply_endpoint = value.as_string(3, "reply_endpoint")?,
                4 => out.auth = value.as_message(4)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// A pushed block-event notification, attested by a source-network peer so
/// the subscriber can authenticate it against the recorded configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventNotice {
    /// The subscription this notice answers.
    pub subscription_id: String,
    /// Source network.
    pub network_id: String,
    /// Committed block number.
    pub block_number: u64,
    /// Transaction ids in the block.
    pub txids: Vec<String>,
    /// Validation code per transaction (1 = valid, 0 = invalidated).
    pub validation: Vec<u8>,
    /// Wire-encoded certificate of the attesting peer.
    pub signer_cert: Vec<u8>,
    /// Peer signature over [`EventNotice::signing_bytes`].
    pub signature: Vec<u8>,
}

impl EventNotice {
    /// The canonical bytes covered by the peer signature.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"tdt-event-v1");
        let push = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        };
        push(&mut out, self.subscription_id.as_bytes());
        push(&mut out, self.network_id.as_bytes());
        out.extend_from_slice(&self.block_number.to_be_bytes());
        out.extend_from_slice(&(self.txids.len() as u32).to_be_bytes());
        for txid in &self.txids {
            push(&mut out, txid.as_bytes());
        }
        push(&mut out, &self.validation);
        out
    }
}

impl Message for EventNotice {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.subscription_id);
        w.string(2, &self.network_id);
        w.u64(3, self.block_number);
        w.repeated_bytes(4, self.txids.iter().map(String::as_bytes));
        w.bytes(5, &self.validation);
        w.bytes(6, &self.signer_cert);
        w.bytes(7, &self.signature);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = EventNotice::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.subscription_id = value.as_string(1, "subscription_id")?,
                2 => out.network_id = value.as_string(2, "network_id")?,
                3 => out.block_number = value.as_u64(3)?,
                4 => out.txids.push(value.as_string(4, "txids")?),
                5 => out.validation = value.as_bytes(5)?.to_vec(),
                6 => out.signer_cert = value.as_bytes(6)?.to_vec(),
                7 => out.signature = value.as_bytes(7)?.to_vec(),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// One peer's signature over a block header (used by [`BlockProof`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeaderSig {
    /// Wire-encoded certificate of the signing peer.
    pub signer_cert: Vec<u8>,
    /// Signature over the domain-separated header hash.
    pub signature: Vec<u8>,
}

impl Message for HeaderSig {
    fn encode(&self, w: &mut Writer) {
        w.bytes(1, &self.signer_cert);
        w.bytes(2, &self.signature);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = HeaderSig::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.signer_cert = value.as_bytes(1)?.to_vec(),
                2 => out.signature = value.as_bytes(2)?.to_vec(),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// One step of a Merkle inclusion path (sibling hash + side).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MerkleStep {
    /// The sibling node hash.
    pub sibling: Vec<u8>,
    /// True when the sibling sits to the right of the running hash.
    pub sibling_on_right: bool,
}

impl Message for MerkleStep {
    fn encode(&self, w: &mut Writer) {
        w.bytes(1, &self.sibling);
        w.bool(2, self.sibling_on_right);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = MerkleStep::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.sibling = value.as_bytes(1)?.to_vec(),
                2 => out.sibling_on_right = value.as_bool(2)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// An *alternative proof scheme* (paper §6: "the architecture allows any
/// suitable proof scheme to be plugged in"): instead of per-result
/// attestations, prove that a specific transaction is *included in a
/// committed block* — peer signatures over the block header plus a Merkle
/// inclusion path from the transaction to the header's data hash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockProof {
    /// Source network id.
    pub network_id: String,
    /// Block number, plus one (zero means unset).
    pub block_number_plus_one: u64,
    /// The header's previous-block hash.
    pub prev_hash: Vec<u8>,
    /// The header's transaction Merkle root.
    pub data_hash: Vec<u8>,
    /// Peer signatures over the header hash.
    pub header_sigs: Vec<HeaderSig>,
    /// The full transaction payload being proven.
    pub tx_bytes: Vec<u8>,
    /// Merkle path from the transaction to `data_hash`.
    pub merkle_steps: Vec<MerkleStep>,
}

impl BlockProof {
    /// The proven block number.
    pub fn block_number(&self) -> Option<u64> {
        self.block_number_plus_one.checked_sub(1)
    }
}

impl Message for BlockProof {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.network_id);
        w.u64(2, self.block_number_plus_one);
        w.bytes(3, &self.prev_hash);
        w.bytes(4, &self.data_hash);
        w.repeated_messages(5, &self.header_sigs);
        w.bytes(6, &self.tx_bytes);
        w.repeated_messages(7, &self.merkle_steps);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = BlockProof::default();
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => out.network_id = value.as_string(1, "network_id")?,
                2 => out.block_number_plus_one = value.as_u64(2)?,
                3 => out.prev_hash = value.as_bytes(3)?.to_vec(),
                4 => out.data_hash = value.as_bytes(4)?.to_vec(),
                5 => out.header_sigs.push(value.as_message(5)?),
                6 => out.tx_bytes = value.as_bytes(6)?.to_vec(),
                7 => out.merkle_steps.push(value.as_message(7)?),
                _ => {}
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Certificate <-> wire conversion
// ---------------------------------------------------------------------------

fn role_code(role: CertRole) -> u64 {
    match role {
        CertRole::RootCa => 0,
        CertRole::Peer => 1,
        CertRole::Orderer => 2,
        CertRole::Client => 3,
    }
}

fn role_from_code(code: u64) -> Result<CertRole, WireError> {
    match code {
        0 => Ok(CertRole::RootCa),
        1 => Ok(CertRole::Peer),
        2 => Ok(CertRole::Orderer),
        3 => Ok(CertRole::Client),
        v => Err(WireError::UnknownEnumValue {
            field: "cert role",
            value: v,
        }),
    }
}

/// Encodes a [`Certificate`] to wire bytes.
pub fn encode_certificate(cert: &Certificate) -> Vec<u8> {
    let mut w = Writer::new();
    w.string(1, &cert.subject().common_name);
    w.string(2, &cert.subject().organization);
    w.string(3, &cert.subject().network);
    w.u64(4, role_code(cert.subject().role) + 1); // +1 so RootCa survives proto3 zero-elision
    w.u64(5, cert.serial() + 1);
    w.string(6, cert.group_name());
    w.bytes(7, cert.sign_key_bytes());
    if let Some(ek) = cert.enc_key_bytes() {
        w.bytes(8, ek);
    }
    w.string(9, &cert.issuer().common_name);
    w.string(10, &cert.issuer().organization);
    w.string(11, &cert.issuer().network);
    w.u64(12, role_code(cert.issuer().role) + 1);
    if let Some(sig) = cert.signature() {
        w.bytes(13, sig.e_bytes());
        w.bytes(14, sig.s_bytes());
    }
    w.into_bytes()
}

/// Decodes a [`Certificate`] from wire bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or missing required fields.
pub fn decode_certificate(bytes: &[u8]) -> Result<Certificate, WireError> {
    let mut r = Reader::new(bytes);
    let mut cn = String::new();
    let mut org = String::new();
    let mut network = String::new();
    let mut role = 0u64;
    let mut serial = 0u64;
    let mut group = String::new();
    let mut sign_key = Vec::new();
    let mut enc_key: Option<Vec<u8>> = None;
    let mut icn = String::new();
    let mut iorg = String::new();
    let mut inetwork = String::new();
    let mut irole = 0u64;
    let mut sig_e: Option<Vec<u8>> = None;
    let mut sig_s: Option<Vec<u8>> = None;
    while let Some((field, value)) = r.next_field()? {
        match field {
            1 => cn = value.as_string(1, "common_name")?,
            2 => org = value.as_string(2, "organization")?,
            3 => network = value.as_string(3, "network")?,
            4 => role = value.as_u64(4)?,
            5 => serial = value.as_u64(5)?,
            6 => group = value.as_string(6, "group")?,
            7 => sign_key = value.as_bytes(7)?.to_vec(),
            8 => enc_key = Some(value.as_bytes(8)?.to_vec()),
            9 => icn = value.as_string(9, "issuer_common_name")?,
            10 => iorg = value.as_string(10, "issuer_organization")?,
            11 => inetwork = value.as_string(11, "issuer_network")?,
            12 => irole = value.as_u64(12)?,
            13 => sig_e = Some(value.as_bytes(13)?.to_vec()),
            14 => sig_s = Some(value.as_bytes(14)?.to_vec()),
            _ => {}
        }
    }
    if role == 0 || irole == 0 || serial == 0 && cn.is_empty() {
        return Err(WireError::MissingField("certificate role/serial"));
    }
    if sign_key.is_empty() {
        return Err(WireError::MissingField("sign_key"));
    }
    let subject = Subject::new(cn, org, network, role_from_code(role - 1)?);
    let issuer = Subject::new(icn, iorg, inetwork, role_from_code(irole - 1)?);
    let signature = match (sig_e, sig_s) {
        (Some(e), Some(s)) => Some(Signature::from_scalars(e, s)),
        _ => None,
    };
    Ok(Certificate::assemble(
        subject,
        serial - 1,
        group,
        sign_key,
        enc_key,
        issuer,
        signature,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_crypto::cert::CertificateAuthority;
    use tdt_crypto::elgamal::DecryptionKey;
    use tdt_crypto::group::Group;
    use tdt_crypto::schnorr::SigningKey;

    fn sample_query() -> Query {
        Query {
            request_id: "req-001".into(),
            address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(b"PO-1001".to_vec()),
            policy: VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"])
                .with_confidentiality(),
            auth: AuthInfo {
                network_id: "swt".into(),
                organization_id: "seller-bank-org".into(),
                certificate: vec![1, 2, 3],
                signature: vec![4, 5],
            },
            nonce: vec![9; 16],
            invocation: false,
        }
    }

    #[test]
    fn network_address_roundtrip() {
        let addr = NetworkAddress::new("n", "l", "c", "f")
            .with_arg(b"a1".to_vec())
            .with_arg(Vec::new())
            .with_arg(b"a3".to_vec());
        let decoded = NetworkAddress::decode_from_slice(&addr.encode_to_vec()).unwrap();
        // Repeated entries are written per element, so empty args survive
        // (unlike singular scalar fields, which elide defaults).
        assert_eq!(decoded, addr);
    }

    #[test]
    fn display_name_format() {
        let addr = NetworkAddress::new("stl", "ch", "cc", "Get");
        assert_eq!(addr.display_name(), "stl:ch:cc:Get");
    }

    #[test]
    fn policy_node_roundtrip() {
        let policy = PolicyNode::And(vec![
            PolicyNode::Org("seller-org".into()),
            PolicyNode::OutOf(
                2,
                vec![
                    PolicyNode::Org("a".into()),
                    PolicyNode::Org("b".into()),
                    PolicyNode::Or(vec![PolicyNode::Org("c".into())]),
                ],
            ),
        ]);
        let decoded = PolicyNode::decode_from_slice(&policy.encode_to_vec()).unwrap();
        assert_eq!(decoded, policy);
        assert_eq!(decoded.depth(), 4);
    }

    #[test]
    fn policy_satisfaction() {
        let p = VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).expression;
        assert!(p.is_satisfied(&["seller-org", "carrier-org"]));
        assert!(p.is_satisfied(&["carrier-org", "seller-org", "extra"]));
        assert!(!p.is_satisfied(&["seller-org"]));
        let any = VerificationPolicy::any_of_orgs(["a", "b"]).expression;
        assert!(any.is_satisfied(&["b"]));
        assert!(!any.is_satisfied(&["c"]));
        let outof = PolicyNode::OutOf(
            2,
            vec![
                PolicyNode::Org("a".into()),
                PolicyNode::Org("b".into()),
                PolicyNode::Org("c".into()),
            ],
        );
        assert!(outof.is_satisfied(&["a", "c"]));
        assert!(!outof.is_satisfied(&["a"]));
    }

    #[test]
    fn policy_organizations_listing() {
        let p = VerificationPolicy::all_of_orgs(["x", "y"]).expression;
        assert_eq!(p.organizations(), vec!["x", "y"]);
    }

    #[test]
    fn unknown_policy_kind_rejected() {
        let mut w = Writer::new();
        w.u64(1, 9);
        let err = PolicyNode::decode_from_slice(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::UnknownEnumValue { .. }));
    }

    #[test]
    fn query_roundtrip() {
        let q = sample_query();
        let decoded = Query::decode_from_slice(&q.encode_to_vec()).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn result_metadata_roundtrip() {
        let md = ResultMetadata {
            request_id: "r".into(),
            address: "stl:ch:cc:Get".into(),
            result_hash: vec![7; 32],
            nonce: vec![1; 16],
            peer_id: "stl/seller-org/peer0".into(),
            org_id: "seller-org".into(),
            ledger_height: 42,
            committed_block_plus_one: 0,
            txid: String::new(),
        };
        assert_eq!(
            ResultMetadata::decode_from_slice(&md.encode_to_vec()).unwrap(),
            md
        );
    }

    #[test]
    fn query_response_roundtrip() {
        let resp = QueryResponse {
            request_id: "req-001".into(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result: vec![0xaa; 40],
            result_encrypted: true,
            attestations: vec![
                Attestation {
                    signer_cert: vec![1],
                    signature: vec![2],
                    metadata: vec![3],
                    metadata_encrypted: true,
                },
                Attestation::default(),
            ],
        };
        let decoded = QueryResponse::decode_from_slice(&resp.encode_to_vec()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn response_status_codes() {
        for status in [
            ResponseStatus::Ok,
            ResponseStatus::AccessDenied,
            ResponseStatus::PolicyUnsatisfiable,
            ResponseStatus::NotFound,
            ResponseStatus::Error,
        ] {
            assert_eq!(ResponseStatus::from_code(status.code()).unwrap(), status);
        }
        assert!(ResponseStatus::from_code(42).is_err());
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = QueryResponse {
            request_id: "r".into(),
            status: ResponseStatus::AccessDenied,
            error: "requester not permitted".into(),
            ..Default::default()
        };
        let decoded = QueryResponse::decode_from_slice(&resp.encode_to_vec()).unwrap();
        assert_eq!(decoded.status, ResponseStatus::AccessDenied);
        assert_eq!(decoded.error, "requester not permitted");
    }

    #[test]
    fn envelope_roundtrip() {
        let q = sample_query();
        let env = RelayEnvelope::query("swt-relay-0", "stl", &q);
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded, env);
        let inner = Query::decode_from_slice(&decoded.payload).unwrap();
        assert_eq!(inner, q);
    }

    #[test]
    fn envelope_correlation_id_roundtrip() {
        let env =
            RelayEnvelope::query("r", "stl", &sample_query()).with_correlation_id(0xDEAD_BEEF);
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded.correlation_id, 0xDEAD_BEEF);
        assert_eq!(decoded, env);
    }

    #[test]
    fn envelope_without_correlation_id_is_wire_compatible() {
        // A zero correlation id must encode to the exact bytes an
        // old peer (without the field) would produce: hand-encode the
        // legacy four fields and compare.
        let env = RelayEnvelope::query("swt-relay-0", "stl", &sample_query());
        assert_eq!(env.correlation_id, 0);
        let mut w = Writer::new();
        w.u64(1, 0); // QueryRequest elides to nothing, like an old writer
        w.string(2, "swt-relay-0");
        w.string(3, "stl");
        w.bytes(4, &sample_query().encode_to_vec());
        assert_eq!(env.encode_to_vec(), w.into_bytes());
        // And legacy bytes decode with correlation_id defaulting to zero.
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded.correlation_id, 0);
    }

    #[test]
    fn envelope_without_trace_is_wire_compatible() {
        // An unset trace header must encode to the exact bytes an old
        // peer (without the field) would produce: the embedded message
        // encodes empty and is elided entirely.
        let env = RelayEnvelope::query("swt-relay-0", "stl", &sample_query());
        assert!(env.trace.is_unset());
        let mut w = Writer::new();
        w.u64(1, 0);
        w.string(2, "swt-relay-0");
        w.string(3, "stl");
        w.bytes(4, &sample_query().encode_to_vec());
        assert_eq!(env.encode_to_vec(), w.into_bytes());
        // And legacy bytes decode with an unset trace header.
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert!(decoded.trace.is_unset());
        assert!(!decoded.trace.sampled);
    }

    #[test]
    fn envelope_trace_roundtrip() {
        let trace = TraceHeader {
            trace_hi: u64::MAX,
            trace_lo: 7,
            span_id: 42,
            parent_span_id: 41,
            sampled: true,
        };
        let env = RelayEnvelope::query("swt-relay-0", "stl", &sample_query()).with_trace(trace);
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded.trace, trace);
        assert!(!decoded.trace.is_unset());
        // A traced frame is a strict superset of the legacy frame: old
        // decoders skip field 6 and still read every legacy field.
        let legacy = RelayEnvelope::query("swt-relay-0", "stl", &sample_query());
        assert!(env.encode_to_vec().len() > legacy.encode_to_vec().len());
        assert_eq!(decoded.payload, legacy.payload);
    }

    #[test]
    fn envelope_without_batch_is_wire_compatible() {
        // An empty batch must encode to the exact bytes an old peer
        // (without the field) would produce: a repeated field with no
        // elements writes nothing.
        let env = RelayEnvelope::query("swt-relay-0", "stl", &sample_query());
        assert!(!env.is_batch());
        let mut w = Writer::new();
        w.u64(1, 0);
        w.string(2, "swt-relay-0");
        w.string(3, "stl");
        w.bytes(4, &sample_query().encode_to_vec());
        assert_eq!(env.encode_to_vec(), w.into_bytes());
        // And legacy bytes decode with an empty batch.
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert!(decoded.batch.is_empty());
    }

    #[test]
    fn envelope_batch_roundtrip() {
        let items: Vec<Vec<u8>> = (0..3)
            .map(|i| RelayEnvelope::query(format!("r{i}"), "stl", &sample_query()).encode_to_vec())
            .collect();
        let env =
            RelayEnvelope::query("swt-relay-0", "stl", &sample_query()).with_batch(items.clone());
        assert!(env.is_batch());
        let decoded = RelayEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded, env);
        assert_eq!(decoded.batch, items);
        // Order is preserved: reply correlation inside a batch is
        // positional.
        for (i, item) in decoded.batch.iter().enumerate() {
            let sub = RelayEnvelope::decode_from_slice(item).unwrap();
            assert_eq!(sub.source_relay, format!("r{i}"));
        }
        // A batched frame is a strict superset of the legacy frame: old
        // decoders skip field 7 and still read every legacy field.
        let legacy = RelayEnvelope::query("swt-relay-0", "stl", &sample_query());
        assert!(env.encode_to_vec().len() > legacy.encode_to_vec().len());
        assert_eq!(decoded.payload, legacy.payload);
    }

    #[test]
    fn trace_header_zero_elides_to_empty() {
        assert!(TraceHeader::default().encode_to_vec().is_empty());
        let decoded = TraceHeader::decode_from_slice(&[]).unwrap();
        assert_eq!(decoded, TraceHeader::default());
    }

    #[test]
    fn envelope_error_helper() {
        let env = RelayEnvelope::error("r", "n", "lookup failed");
        assert_eq!(env.kind, EnvelopeKind::Error);
        assert_eq!(env.payload, b"lookup failed");
    }

    #[test]
    fn envelope_kind_codes() {
        for k in [
            EnvelopeKind::QueryRequest,
            EnvelopeKind::QueryResponse,
            EnvelopeKind::Error,
            EnvelopeKind::Ping,
            EnvelopeKind::Pong,
            EnvelopeKind::EventSubscribe,
            EnvelopeKind::Event,
            EnvelopeKind::Ack,
        ] {
            assert_eq!(EnvelopeKind::from_code(k.code()).unwrap(), k);
        }
        assert!(EnvelopeKind::from_code(99).is_err());
    }

    #[test]
    fn invocation_flag_roundtrip() {
        let mut q = sample_query();
        q.invocation = true;
        let decoded = Query::decode_from_slice(&q.encode_to_vec()).unwrap();
        assert!(decoded.invocation);
    }

    #[test]
    fn metadata_invocation_receipt_fields() {
        let md = ResultMetadata {
            request_id: "r".into(),
            committed_block_plus_one: 8,
            txid: "tx-4".into(),
            ..Default::default()
        };
        let decoded = ResultMetadata::decode_from_slice(&md.encode_to_vec()).unwrap();
        assert_eq!(decoded.committed_block(), Some(7));
        assert_eq!(decoded.txid, "tx-4");
        assert_eq!(ResultMetadata::default().committed_block(), None);
    }

    #[test]
    fn event_subscribe_roundtrip() {
        let req = EventSubscribeRequest {
            subscription_id: "sub-1".into(),
            network_id: "stl".into(),
            reply_endpoint: "inproc:swt-relay".into(),
            auth: AuthInfo {
                network_id: "swt".into(),
                organization_id: "org".into(),
                certificate: vec![1],
                signature: vec![2],
            },
        };
        let decoded = EventSubscribeRequest::decode_from_slice(&req.encode_to_vec()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn event_notice_roundtrip_and_signing_bytes() {
        let notice = EventNotice {
            subscription_id: "sub-1".into(),
            network_id: "stl".into(),
            block_number: 42,
            txids: vec!["tx-a".into(), "tx-b".into()],
            validation: vec![1, 0],
            signer_cert: vec![9],
            signature: vec![8],
        };
        let decoded = EventNotice::decode_from_slice(&notice.encode_to_vec()).unwrap();
        assert_eq!(decoded, notice);
        // Signing bytes exclude the signature/cert and are order-sensitive.
        let mut other = notice.clone();
        other.signature = vec![];
        other.signer_cert = vec![];
        assert_eq!(notice.signing_bytes(), other.signing_bytes());
        let mut reordered = notice.clone();
        reordered.txids.reverse();
        assert_ne!(notice.signing_bytes(), reordered.signing_bytes());
    }

    #[test]
    fn certificate_roundtrip_plain() {
        let mut ca = CertificateAuthority::new("stl", "seller-org", Group::test_group(), b"s");
        let key = SigningKey::from_seed(Group::test_group(), b"peer");
        let cert = ca.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let decoded = decode_certificate(&encode_certificate(&cert)).unwrap();
        assert_eq!(decoded, cert);
        // Decoded certificate still verifies against the root.
        assert!(decoded.verify(ca.root_certificate()).is_ok());
    }

    #[test]
    fn certificate_roundtrip_with_enc_key() {
        let mut ca = CertificateAuthority::new("swt", "seller-bank", Group::test_group(), b"s");
        let key = SigningKey::from_seed(Group::test_group(), b"client");
        let dk = DecryptionKey::from_seed(Group::test_group(), b"client-enc");
        let cert = ca.issue(
            "swt-sc",
            CertRole::Client,
            &key.verifying_key(),
            Some(&dk.encryption_key()),
        );
        let decoded = decode_certificate(&encode_certificate(&cert)).unwrap();
        assert_eq!(decoded, cert);
        assert!(decoded.encryption_key().unwrap().is_some());
    }

    #[test]
    fn certificate_root_roundtrip() {
        let ca = CertificateAuthority::new("stl", "seller-org", Group::test_group(), b"s");
        let root = ca.root_certificate();
        let decoded = decode_certificate(&encode_certificate(root)).unwrap();
        assert_eq!(&decoded, root);
        assert!(decoded.verify_self_signed().is_ok());
    }

    #[test]
    fn certificate_missing_key_rejected() {
        let mut w = Writer::new();
        w.string(1, "cn");
        w.u64(4, 2);
        w.u64(12, 1);
        w.u64(5, 1);
        let err = decode_certificate(&w.into_bytes()).unwrap_err();
        assert_eq!(err, WireError::MissingField("sign_key"));
    }

    #[test]
    fn auth_info_cert_decode() {
        let mut ca = CertificateAuthority::new("swt", "org", Group::test_group(), b"s");
        let key = SigningKey::from_seed(Group::test_group(), b"c");
        let cert = ca.issue("client", CertRole::Client, &key.verifying_key(), None);
        let auth = AuthInfo {
            network_id: "swt".into(),
            organization_id: "org".into(),
            certificate: encode_certificate(&cert),
            signature: vec![],
        };
        let decoded = auth.decode_certificate().unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    fn proof_roundtrip() {
        let proof = Proof {
            request_id: "req-1".into(),
            address: "stl:ch:cc:GetBillOfLading".into(),
            nonce: vec![5; 16],
            result: b"bill-of-lading".to_vec(),
            attestations: vec![Attestation {
                signer_cert: vec![1],
                signature: vec![2],
                metadata: vec![3],
                metadata_encrypted: false,
            }],
        };
        let decoded = Proof::decode_from_slice(&proof.encode_to_vec()).unwrap();
        assert_eq!(decoded, proof);
    }

    #[test]
    fn network_config_roundtrip() {
        let cfg = NetworkConfig {
            network_id: "stl".into(),
            group_name: "modp768".into(),
            orgs: vec![
                OrgConfig {
                    org_id: "seller-org".into(),
                    root_cert: vec![1, 2],
                    peer_certs: vec![vec![3], vec![4, 5]],
                },
                OrgConfig {
                    org_id: "carrier-org".into(),
                    root_cert: vec![9],
                    peer_certs: vec![],
                },
            ],
        };
        let decoded = NetworkConfig::decode_from_slice(&cfg.encode_to_vec()).unwrap();
        assert_eq!(decoded, cfg);
    }
}
