//! LEB128 variable-length integers, as used by the proto3 wire format.

use crate::error::WireError;

/// Maximum encoded size of a 64-bit varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the varint encoding of `value` to `buf`.
pub fn encode_u64(mut value: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `buf`, returning `(value, bytes_read)`.
///
/// # Errors
///
/// * [`WireError::UnexpectedEof`] if the buffer ends mid-varint.
/// * [`WireError::VarintOverflow`] if the encoding exceeds 64 bits.
pub fn decode_u64(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(WireError::VarintOverflow);
        }
        let low = (byte & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(WireError::UnexpectedEof)
}

/// ZigZag-encodes a signed value so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`encode_u64`] would produce for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_one_byte() {
        for v in [0u64, 1, 127] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(decode_u64(&buf).unwrap(), (v, 1));
        }
    }

    #[test]
    fn proto_reference_vectors() {
        // 150 encodes as 0x96 0x01 (the canonical protobuf docs example).
        let mut buf = Vec::new();
        encode_u64(150, &mut buf);
        assert_eq!(buf, vec![0x96, 0x01]);
        // 300 encodes as 0xAC 0x02.
        buf.clear();
        encode_u64(300, &mut buf);
        assert_eq!(buf, vec![0xac, 0x02]);
    }

    #[test]
    fn max_value() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        assert_eq!(buf.len(), 10);
        assert_eq!(decode_u64(&buf).unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        assert_eq!(decode_u64(&buf[..1]).unwrap_err(), WireError::UnexpectedEof);
        assert_eq!(decode_u64(&[]).unwrap_err(), WireError::UnexpectedEof);
    }

    #[test]
    fn overlong_encoding_rejected() {
        // 11 continuation bytes.
        let buf = [0x80u8; 11];
        assert_eq!(decode_u64(&buf).unwrap_err(), WireError::VarintOverflow);
        // 10 bytes but the last carries bits beyond 2^64.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(decode_u64(&buf).unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn zigzag_reference() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn encoded_len_matches() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(buf.len(), encoded_len(v), "value {v}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            let (decoded, read) = decode_u64(&buf).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(read, buf.len());
        }

        #[test]
        fn prop_zigzag_roundtrip(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn prop_trailing_bytes_ignored(v in any::<u64>(), extra in any::<Vec<u8>>()) {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            let len = buf.len();
            buf.extend_from_slice(&extra);
            let (decoded, read) = decode_u64(&buf).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(read, len);
        }
    }
}
