//! Proto3-compatible field codec.
//!
//! Implements the protobuf binary wire rules — tags of
//! `(field_number << 3) | wire_type`, varint scalars, and length-delimited
//! byte fields — so that messages produced here are parseable by any proto3
//! implementation given the matching schema, fulfilling the paper's
//! "network-neutral language" requirement without an offline protobuf crate.
//!
//! Unknown fields are skipped on decode (forward compatibility), and all
//! encoding is deterministic: fields are written in ascending field-number
//! order by the [`Message`] implementations in [`crate::messages`].

use crate::error::WireError;
use crate::varint;

/// Proto3 wire types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Variable-length integer.
    Varint,
    /// Fixed 64-bit little-endian.
    I64,
    /// Length-delimited bytes (strings, bytes, embedded messages).
    Len,
    /// Fixed 32-bit little-endian.
    I32,
}

impl WireType {
    fn code(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::I64 => 1,
            WireType::Len => 2,
            WireType::I32 => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::I64),
            2 => Ok(WireType::Len),
            5 => Ok(WireType::I32),
            other => Err(WireError::UnknownWireType(other)),
        }
    }
}

/// Serializer that appends proto3-encoded fields to a buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn tag(&mut self, field: u32, ty: WireType) {
        varint::encode_u64(((field as u64) << 3) | ty.code(), &mut self.buf);
    }

    /// Writes a `uint64`/`uint32`/`bool`/enum field. Zero values are
    /// skipped, matching proto3 default-elision semantics.
    pub fn u64(&mut self, field: u32, value: u64) -> &mut Self {
        if value != 0 {
            self.tag(field, WireType::Varint);
            varint::encode_u64(value, &mut self.buf);
        }
        self
    }

    /// Writes a `sint64` field with zigzag encoding (zero elided).
    pub fn i64(&mut self, field: u32, value: i64) -> &mut Self {
        self.u64(field, varint::zigzag_encode(value))
    }

    /// Writes a `bool` field (false elided).
    pub fn bool(&mut self, field: u32, value: bool) -> &mut Self {
        self.u64(field, value as u64)
    }

    /// Writes a length-delimited bytes field (empty elided).
    pub fn bytes(&mut self, field: u32, value: &[u8]) -> &mut Self {
        if !value.is_empty() {
            self.tag(field, WireType::Len);
            varint::encode_u64(value.len() as u64, &mut self.buf);
            self.buf.extend_from_slice(value);
        }
        self
    }

    /// Writes a `string` field (empty elided).
    pub fn string(&mut self, field: u32, value: &str) -> &mut Self {
        self.bytes(field, value.as_bytes())
    }

    /// Writes an embedded message field. Unlike scalars, an *empty* embedded
    /// message is still written when `always` is false only if non-empty;
    /// use [`Writer::message_always`] for presence-significant submessages.
    pub fn message<M: Message>(&mut self, field: u32, value: &M) -> &mut Self {
        let inner = value.encode_to_vec();
        if !inner.is_empty() {
            self.tag(field, WireType::Len);
            varint::encode_u64(inner.len() as u64, &mut self.buf);
            self.buf.extend_from_slice(&inner);
        }
        self
    }

    /// Writes an embedded message even when its encoding is empty, so the
    /// receiver can distinguish "present but default" from "absent".
    pub fn message_always<M: Message>(&mut self, field: u32, value: &M) -> &mut Self {
        let inner = value.encode_to_vec();
        self.tag(field, WireType::Len);
        varint::encode_u64(inner.len() as u64, &mut self.buf);
        self.buf.extend_from_slice(&inner);
        self
    }

    /// Writes a repeated bytes/string/message field, one entry per element.
    pub fn repeated_bytes<I, B>(&mut self, field: u32, values: I) -> &mut Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        for v in values {
            let v = v.as_ref();
            self.tag(field, WireType::Len);
            varint::encode_u64(v.len() as u64, &mut self.buf);
            self.buf.extend_from_slice(v);
        }
        self
    }

    /// Writes each message in `values` as a repeated field entry.
    pub fn repeated_messages<'a, M: Message + 'a, I>(&mut self, field: u32, values: I) -> &mut Self
    where
        I: IntoIterator<Item = &'a M>,
    {
        for v in values {
            self.message_always(field, v);
        }
        self
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One decoded field: number, wire type, and its raw value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue<'a> {
    /// A varint scalar.
    Varint(u64),
    /// Fixed 64-bit value.
    I64(u64),
    /// Length-delimited payload (bytes, string, or embedded message).
    Len(&'a [u8]),
    /// Fixed 32-bit value.
    I32(u32),
}

impl<'a> FieldValue<'a> {
    /// Interprets the field as `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::WireTypeMismatch`] for non-varint fields.
    pub fn as_u64(&self, field: u32) -> Result<u64, WireError> {
        match self {
            FieldValue::Varint(v) => Ok(*v),
            _ => Err(WireError::WireTypeMismatch {
                field,
                expected: "varint",
            }),
        }
    }

    /// Interprets the field as zigzag-encoded `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::WireTypeMismatch`] for non-varint fields.
    pub fn as_i64(&self, field: u32) -> Result<i64, WireError> {
        Ok(varint::zigzag_decode(self.as_u64(field)?))
    }

    /// Interprets the field as `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::WireTypeMismatch`] for non-varint fields.
    pub fn as_bool(&self, field: u32) -> Result<bool, WireError> {
        Ok(self.as_u64(field)? != 0)
    }

    /// Interprets the field as raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::WireTypeMismatch`] for non-length-delimited fields.
    pub fn as_bytes(&self, field: u32) -> Result<&'a [u8], WireError> {
        match self {
            FieldValue::Len(b) => Ok(b),
            _ => Err(WireError::WireTypeMismatch {
                field,
                expected: "length-delimited",
            }),
        }
    }

    /// Interprets the field as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidUtf8`] for invalid text and
    /// [`WireError::WireTypeMismatch`] for non-length-delimited fields.
    pub fn as_string(&self, field: u32, name: &'static str) -> Result<String, WireError> {
        let bytes = self.as_bytes(field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8(name))
    }

    /// Decodes the field as an embedded message.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from the inner message.
    pub fn as_message<M: Message>(&self, field: u32) -> Result<M, WireError> {
        M::decode_from_slice(self.as_bytes(field)?)
    }
}

/// Streaming decoder over an encoded message.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Returns the next `(field_number, value)` pair, or `None` at the end.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn next_field(&mut self) -> Result<Option<(u32, FieldValue<'a>)>, WireError> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        let (tag, read) = varint::decode_u64(&self.buf[self.pos..])?;
        self.pos += read;
        let field = (tag >> 3) as u32;
        let ty = WireType::from_code((tag & 0x7) as u8)?;
        let value = match ty {
            WireType::Varint => {
                let (v, read) = varint::decode_u64(&self.buf[self.pos..])?;
                self.pos += read;
                FieldValue::Varint(v)
            }
            WireType::I64 => {
                if self.buf.len() - self.pos < 8 {
                    return Err(WireError::UnexpectedEof);
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
                self.pos += 8;
                FieldValue::I64(u64::from_le_bytes(b))
            }
            WireType::I32 => {
                if self.buf.len() - self.pos < 4 {
                    return Err(WireError::UnexpectedEof);
                }
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
                self.pos += 4;
                FieldValue::I32(u32::from_le_bytes(b))
            }
            WireType::Len => {
                let (len, read) = varint::decode_u64(&self.buf[self.pos..])?;
                self.pos += read;
                let remaining = self.buf.len() - self.pos;
                if len as usize > remaining {
                    return Err(WireError::LengthOutOfBounds {
                        declared: len,
                        remaining,
                    });
                }
                let slice = &self.buf[self.pos..self.pos + len as usize];
                self.pos += len as usize;
                FieldValue::Len(slice)
            }
        };
        Ok(Some((field, value)))
    }
}

/// A type encodable to / decodable from the proto3 wire format.
pub trait Message: Sized {
    /// Writes all fields to `w` in ascending field-number order.
    fn encode(&self, w: &mut Writer);

    /// Decodes from a field reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed or incomplete input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes to a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed or incomplete input.
    fn decode_from_slice(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        Self::decode(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    struct Sample {
        id: u64,
        name: String,
        payload: Vec<u8>,
        flag: bool,
        tags: Vec<String>,
        delta: i64,
    }

    impl Message for Sample {
        fn encode(&self, w: &mut Writer) {
            w.u64(1, self.id);
            w.string(2, &self.name);
            w.bytes(3, &self.payload);
            w.bool(4, self.flag);
            w.repeated_bytes(5, self.tags.iter().map(String::as_bytes));
            w.i64(6, self.delta);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            let mut out = Sample::default();
            while let Some((field, value)) = r.next_field()? {
                match field {
                    1 => out.id = value.as_u64(1)?,
                    2 => out.name = value.as_string(2, "name")?,
                    3 => out.payload = value.as_bytes(3)?.to_vec(),
                    4 => out.flag = value.as_bool(4)?,
                    5 => out.tags.push(value.as_string(5, "tags")?),
                    6 => out.delta = value.as_i64(6)?,
                    _ => {} // skip unknown
                }
            }
            Ok(out)
        }
    }

    #[test]
    fn roundtrip_full() {
        let s = Sample {
            id: 42,
            name: "tradelens".into(),
            payload: vec![1, 2, 3],
            flag: true,
            tags: vec!["a".into(), "b".into()],
            delta: -17,
        };
        let decoded = Sample::decode_from_slice(&s.encode_to_vec()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn default_encodes_empty() {
        let s = Sample::default();
        assert!(s.encode_to_vec().is_empty());
        assert_eq!(Sample::decode_from_slice(&[]).unwrap(), s);
    }

    #[test]
    fn proto3_reference_encoding() {
        // Field 1 varint 150 => 08 96 01 (protobuf docs reference message).
        let mut w = Writer::new();
        w.u64(1, 150);
        assert_eq!(w.into_bytes(), vec![0x08, 0x96, 0x01]);
        // Field 2 string "testing" => 12 07 74 65 73 74 69 6e 67.
        let mut w = Writer::new();
        w.string(2, "testing");
        assert_eq!(
            w.into_bytes(),
            vec![0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6e, 0x67]
        );
    }

    #[test]
    fn unknown_fields_skipped() {
        let mut w = Writer::new();
        w.u64(1, 7);
        w.string(99, "future field");
        w.string(2, "kept");
        let s = Sample::decode_from_slice(&w.into_bytes()).unwrap();
        assert_eq!(s.id, 7);
        assert_eq!(s.name, "kept");
    }

    #[test]
    fn truncated_len_field_errors() {
        let mut w = Writer::new();
        w.bytes(3, &[1, 2, 3, 4, 5]);
        let bytes = w.into_bytes();
        let err = Sample::decode_from_slice(&bytes[..bytes.len() - 2]).unwrap_err();
        assert!(matches!(err, WireError::LengthOutOfBounds { .. }));
    }

    #[test]
    fn wire_type_mismatch_detected() {
        let mut w = Writer::new();
        w.string(1, "not a varint");
        let err = Sample::decode_from_slice(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::WireTypeMismatch { field: 1, .. }));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = Writer::new();
        w.bytes(2, &[0xff, 0xfe]);
        let err = Sample::decode_from_slice(&w.into_bytes()).unwrap_err();
        assert_eq!(err, WireError::InvalidUtf8("name"));
    }

    #[test]
    fn wire_type_codes_roundtrip() {
        for ty in [
            WireType::Varint,
            WireType::I64,
            WireType::Len,
            WireType::I32,
        ] {
            assert_eq!(WireType::from_code(ty.code() as u8).unwrap(), ty);
        }
        assert!(WireType::from_code(3).is_err()); // deprecated group type
        assert!(WireType::from_code(7).is_err());
    }

    #[test]
    fn fixed_width_fields_decode() {
        // Hand-encode an I64 and an I32 field and ensure the reader handles them.
        let mut buf = Vec::new();
        crate::varint::encode_u64((1 << 3) | 1, &mut buf); // field 1, I64
        buf.extend_from_slice(&123456789u64.to_le_bytes());
        crate::varint::encode_u64((2 << 3) | 5, &mut buf); // field 2, I32
        buf.extend_from_slice(&42u32.to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.next_field().unwrap(),
            Some((1, FieldValue::I64(123456789)))
        );
        assert_eq!(r.next_field().unwrap(), Some((2, FieldValue::I32(42))));
        assert_eq!(r.next_field().unwrap(), None);
    }

    #[test]
    fn embedded_messages() {
        #[derive(Debug, PartialEq, Default)]
        struct Outer {
            inner: Sample,
            others: Vec<Sample>,
        }
        impl Message for Outer {
            fn encode(&self, w: &mut Writer) {
                w.message(1, &self.inner);
                w.repeated_messages(2, &self.others);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let mut out = Outer::default();
                while let Some((field, value)) = r.next_field()? {
                    match field {
                        1 => out.inner = value.as_message(1)?,
                        2 => out.others.push(value.as_message(2)?),
                        _ => {}
                    }
                }
                Ok(out)
            }
        }
        let o = Outer {
            inner: Sample {
                id: 1,
                name: "in".into(),
                ..Default::default()
            },
            others: vec![
                Sample {
                    id: 2,
                    ..Default::default()
                },
                Sample::default(),
            ],
        };
        let decoded = Outer::decode_from_slice(&o.encode_to_vec()).unwrap();
        assert_eq!(decoded, o);
    }

    proptest! {
        #[test]
        fn prop_sample_roundtrip(
            id in any::<u64>(),
            name in "[a-zA-Z0-9 ]{0,40}",
            payload in proptest::collection::vec(any::<u8>(), 0..100),
            flag in any::<bool>(),
            tags in proptest::collection::vec("[a-z]{1,8}", 0..5),
            delta in any::<i64>(),
        ) {
            let s = Sample { id, name, payload, flag, tags, delta };
            let decoded = Sample::decode_from_slice(&s.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded, s);
        }

        #[test]
        fn prop_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            // Arbitrary bytes must decode or error, never panic.
            let _ = Sample::decode_from_slice(&data);
        }
    }
}
