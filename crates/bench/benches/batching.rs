//! E12 — ablation: orderer batch size vs destination-transaction
//! throughput. The paper's Fabric deployment inherits block batching; this
//! bench characterizes our solo orderer's behaviour so protocol latencies
//! can be attributed correctly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use tdt_fabric::chaincode::{Chaincode, TxContext};
use tdt_fabric::endorse::TransactionEnvelope;
use tdt_fabric::error::ChaincodeError;
use tdt_fabric::network::NetworkBuilder;
use tdt_fabric::policy::EndorsementPolicy;

struct KvStore;

impl Chaincode for KvStore {
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        match function {
            "put" => {
                let key = String::from_utf8_lossy(&args[0]).into_owned();
                ctx.put_state(&key, args[1].clone());
                Ok(Vec::new())
            }
            f => Err(ChaincodeError::UnknownFunction(f.into())),
        }
    }
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    const TXS: u64 = 20;
    group.throughput(Throughput::Elements(TXS));
    for batch in [1usize, 5, 20] {
        group.bench_with_input(
            BenchmarkId::new("commit_20_txs/batch", batch),
            &batch,
            |b, &batch| {
                b.iter_batched(
                    || {
                        let net = NetworkBuilder::new("batchnet")
                            .org("org-a", 1)
                            .chaincode(
                                "kv",
                                Arc::new(KvStore),
                                EndorsementPolicy::any_of(["org-a"]),
                            )
                            .batch_size(batch)
                            .build();
                        let client = net.register_client("org-a", "c", false).unwrap();
                        (net, client)
                    },
                    |(net, client)| {
                        for i in 0..TXS {
                            let proposal = tdt_fabric::chaincode::Proposal::new(
                                net.next_txid(),
                                net.channel(),
                                "kv",
                                "put",
                                vec![format!("k{i}").into_bytes(), b"v".to_vec()],
                                client.certificate().clone(),
                            )
                            .sign(client.signing_key());
                            let (sim, endorsements) =
                                net.endorse(&proposal, &["org-a".to_string()]).unwrap();
                            let envelope = TransactionEnvelope {
                                txid: proposal.txid.clone(),
                                channel: net.channel().to_string(),
                                chaincode: "kv".into(),
                                result: sim.result,
                                rwset: sim.rwset,
                                endorsements,
                                creator_cert: client.certificate().clone(),
                            };
                            net.order(&envelope).unwrap();
                        }
                        black_box(net.cut_block().unwrap());
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
