//! E8 — availability characterization: relay service throughput, the cost
//! of rate limiting, and the behaviour of redundant relay groups under
//! partial outage (paper §5: "the effects of DoS attacks can be mitigated
//! by adding redundant relays").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interop::driver::FabricDriver;
use interop::InteropClient;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use tdt_bench::{bl_address, bl_policy, prepared_testbed, swt_client};
use tdt_fabric::gateway::Gateway;
use tdt_relay::discovery::DiscoveryService;
use tdt_relay::driver::NetworkDriver;
use tdt_relay::error::RelayError;
use tdt_relay::ratelimit::RateLimiter;
use tdt_relay::redundancy::RelayGroup;
use tdt_relay::service::RelayService;
use tdt_relay::transport::RelayTransport;
use tdt_wire::messages::{Query, QueryResponse};

fn bench_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_throughput");
    group.sample_size(20);

    // Baseline: one relay, no limiter.
    {
        let t = prepared_testbed("PO-1001");
        let client = swt_client(&t);
        group.bench_function("single_relay", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }

    // With a generous rate limiter in the path (overhead of the check).
    {
        let t = prepared_testbed("PO-1001");
        let limited = Arc::new(
            RelayService::new(
                "swt-relay-limited",
                "swt",
                Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
            )
            .with_rate_limiter(RateLimiter::new(1_000_000, 1_000_000.0)),
        );
        let client = InteropClient::new(t.swt_seller_gateway(), limited);
        group.bench_function("single_relay_with_rate_limiter", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }

    // Redundant group of three with two members down: failover cost.
    {
        let t = prepared_testbed("PO-1001");
        let mut relays = vec![Arc::clone(&t.swt_relay)];
        for i in 1..3 {
            relays.push(Arc::new(RelayService::new(
                format!("swt-relay-{i}"),
                "swt",
                Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
            )));
        }
        relays[0].set_down(true);
        relays[1].set_down(true);
        let client = InteropClient::with_relay_group(
            t.swt_seller_gateway(),
            Arc::new(RelayGroup::new(relays).expect("non-empty relay group")),
        );
        group.bench_function("relay_group_3_with_2_down", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// A driver decorating the real Fabric driver with a fixed peer
/// round-trip time, as real endorsement traffic would see. The worker
/// pool's win is overlapping these waits across concurrent requests, so
/// it shows even on a single-core host; on multicore the pooled mode
/// additionally overlaps the crypto.
#[derive(Debug)]
struct SimulatedRttDriver {
    inner: FabricDriver,
    rtt: Duration,
}

impl NetworkDriver for SimulatedRttDriver {
    fn network_id(&self) -> &str {
        self.inner.network_id()
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        std::thread::sleep(self.rtt);
        self.inner.execute_query(query)
    }
}

/// Serial (one-worker pool) vs pooled (four workers) envelope handling on
/// the source relay, under four concurrent clients.
fn bench_serial_vs_pooled(c: &mut Criterion) {
    const CLIENTS: usize = 4;
    const PEER_RTT: Duration = Duration::from_millis(25);
    let mut group = c.benchmark_group("relay_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CLIENTS as u64));
    for (label, workers) in [("pool_1_serial", 1usize), ("pool_4", 4)] {
        let t = prepared_testbed("PO-1001");
        t.stl_relay.register_driver(Arc::new(SimulatedRttDriver {
            inner: FabricDriver::new(Arc::clone(&t.stl)),
            rtt: PEER_RTT,
        }));
        t.stl_relay.start_workers(workers);
        let clients: Vec<InteropClient> = (0..CLIENTS)
            .map(|i| {
                let identity = t
                    .swt
                    .register_client("seller-bank-org", &format!("bench-sc-{i}"), true)
                    .unwrap();
                InteropClient::new(
                    Gateway::new(Arc::clone(&t.swt), identity),
                    Arc::clone(&t.swt_relay),
                )
            })
            .collect();
        group.bench_function(format!("{CLIENTS}_clients_{label}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in &clients {
                        scope.spawn(move || {
                            black_box(
                                client
                                    .query_remote(bl_address("PO-1001"), bl_policy())
                                    .unwrap(),
                            );
                        });
                    }
                });
            })
        });
        t.stl_relay.stop_workers();
    }
    group.finish();
}

/// Connect-per-request vs pooled/multiplexed TCP, four concurrent
/// clients, against an echo handler: with the handler near-free, the
/// measured difference is pure transport overhead (TCP handshakes and
/// socket churn vs correlation-id multiplexing on warm connections).
fn bench_tcp_transports(c: &mut Criterion) {
    use tdt_relay::transport::{EnvelopeHandler, PooledTcpTransport, TcpRelayServer, TcpTransport};
    use tdt_wire::messages::{EnvelopeKind, RelayEnvelope};
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 25;

    struct Echo;
    impl EnvelopeHandler for Echo {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                source_relay: "echo".into(),
                dest_network: envelope.dest_network,
                payload: envelope.payload,
                correlation_id: 0,
                trace: Default::default(),
                batch: Vec::new(),
            }
        }
    }

    let request = RelayEnvelope {
        kind: EnvelopeKind::QueryRequest,
        source_relay: "bench".into(),
        dest_network: "target".into(),
        payload: vec![0xAB; 64],
        correlation_id: 0,
        trace: Default::default(),
        batch: Vec::new(),
    };
    let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(Echo)).unwrap();
    let endpoint = server.endpoint();
    let mut group = c.benchmark_group("tcp_transport");
    group.sample_size(10);
    group.throughput(Throughput::Elements((CLIENTS * REQUESTS_PER_CLIENT) as u64));

    group.bench_function(format!("{CLIENTS}_clients_connect_per_request"), |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..CLIENTS {
                    let endpoint = &endpoint;
                    let request = &request;
                    scope.spawn(move || {
                        let transport = TcpTransport::new();
                        for _ in 0..REQUESTS_PER_CLIENT {
                            black_box(transport.send(endpoint, request).unwrap());
                        }
                    });
                }
            });
        })
    });

    // One shared pool, warm across iterations — the steady-state shape.
    let pooled = PooledTcpTransport::new();
    group.bench_function(format!("{CLIENTS}_clients_pooled_multiplexed"), |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..CLIENTS {
                    let endpoint = &endpoint;
                    let request = &request;
                    let pooled = &pooled;
                    scope.spawn(move || {
                        for _ in 0..REQUESTS_PER_CLIENT {
                            black_box(pooled.send(endpoint, request).unwrap());
                        }
                    });
                }
            });
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_relay,
    bench_serial_vs_pooled,
    bench_tcp_transports
);
criterion_main!(benches);
