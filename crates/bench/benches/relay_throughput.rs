//! E8 — availability characterization: relay service throughput, the cost
//! of rate limiting, and the behaviour of redundant relay groups under
//! partial outage (paper §5: "the effects of DoS attacks can be mitigated
//! by adding redundant relays").

use criterion::{criterion_group, criterion_main, Criterion};
use interop::InteropClient;
use std::hint::black_box;
use std::sync::Arc;
use tdt_bench::{bl_address, bl_policy, prepared_testbed, swt_client};
use tdt_relay::discovery::DiscoveryService;
use tdt_relay::ratelimit::RateLimiter;
use tdt_relay::redundancy::RelayGroup;
use tdt_relay::service::RelayService;
use tdt_relay::transport::RelayTransport;

fn bench_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_throughput");
    group.sample_size(20);

    // Baseline: one relay, no limiter.
    {
        let t = prepared_testbed("PO-1001");
        let client = swt_client(&t);
        group.bench_function("single_relay", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }

    // With a generous rate limiter in the path (overhead of the check).
    {
        let t = prepared_testbed("PO-1001");
        let limited = Arc::new(
            RelayService::new(
                "swt-relay-limited",
                "swt",
                Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
            )
            .with_rate_limiter(RateLimiter::new(1_000_000, 1_000_000.0)),
        );
        let client = InteropClient::new(t.swt_seller_gateway(), limited);
        group.bench_function("single_relay_with_rate_limiter", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }

    // Redundant group of three with two members down: failover cost.
    {
        let t = prepared_testbed("PO-1001");
        let mut relays = vec![Arc::clone(&t.swt_relay)];
        for i in 1..3 {
            relays.push(Arc::new(RelayService::new(
                format!("swt-relay-{i}"),
                "swt",
                Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
            )));
        }
        relays[0].set_down(true);
        relays[1].set_down(true);
        let client = InteropClient::with_relay_group(
            t.swt_seller_gateway(),
            Arc::new(RelayGroup::new(relays)),
        );
        group.bench_function("relay_group_3_with_2_down", |b| {
            b.iter(|| {
                black_box(
                    client
                        .query_remote(bl_address("PO-1001"), bl_policy())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relay);
criterion_main!(benches);
