//! E12 — characterization: proof size and latency as the verification
//! policy grows, and the cost of the paper's two confidentiality design
//! choices (encrypting the result; encrypting the metadata).
//!
//! Prints the proof-size table (the regenerated "figure"), then benchmarks
//! generation/processing/validation at several policy sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop::block_proof::{generate_block_proof, verify_block_proof};
use std::hint::black_box;
use tdt_bench::SyntheticSource;
use tdt_wire::codec::Message;
use tdt_wire::messages::PolicyNode;

const POLICY_SIZES: &[usize] = &[1, 2, 4, 8];
const RESULT: &[u8] = b"a bill of lading sized payload: 600 tulip bulbs, carrier X, PO-1001";

fn print_size_table() {
    println!("\n=== proof size vs verification-policy size (attestations = orgs) ===");
    println!(
        "{:>5} | {:>18} | {:>20} | {:>14}",
        "orgs", "proof bytes", "encrypted-md bytes", "result bytes"
    );
    for &n in POLICY_SIZES {
        let source = SyntheticSource::new(n);
        let plain = source.generate_proof(RESULT, &[1; 16], false);
        let encrypted = source.generate_proof(RESULT, &[1; 16], true);
        println!(
            "{:>5} | {:>18} | {:>20} | {:>14}",
            n,
            plain.encode_to_vec().len(),
            encrypted.encode_to_vec().len(),
            RESULT.len()
        );
    }
    println!();
}

/// Ablation (DESIGN.md choice #1): attestation proofs vs the pluggable
/// block-inclusion scheme, at the paper's 2-org policy.
fn bench_block_proof_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("proof_scheme_ablation");
    group.sample_size(20);
    let t = tdt_bench::prepared_testbed("PO-1001");
    let (_, peer) = t.stl.peers().next().unwrap();
    let (block_number, txid) = {
        let peer = peer.read();
        let number = peer.height() - 1;
        let block = peer.store().block(number).unwrap();
        let txid =
            tdt_fabric::endorse::TransactionEnvelope::decode_from_slice(&block.transactions[0])
                .unwrap()
                .txid;
        (number, txid)
    };
    let orgs = vec!["seller-org".to_string(), "carrier-org".to_string()];
    let policy = PolicyNode::And(vec![
        PolicyNode::Org("seller-org".into()),
        PolicyNode::Org("carrier-org".into()),
    ]);
    let config = t.stl.network_config();
    let proof = generate_block_proof(&t.stl, block_number, &txid, &orgs).unwrap();
    println!(
        "\nblock-inclusion proof size: {} bytes (tx envelope {} bytes)",
        proof.encode_to_vec().len(),
        proof.tx_bytes.len()
    );
    group.bench_function("block_proof/generate", |b| {
        b.iter(|| black_box(generate_block_proof(&t.stl, block_number, &txid, &orgs).unwrap()))
    });
    group.bench_function("block_proof/verify", |b| {
        b.iter(|| verify_block_proof(black_box(&proof), &config, &policy).unwrap())
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    print_size_table();
    let mut group = c.benchmark_group("proof_scaling");
    group.sample_size(20);
    for &n in POLICY_SIZES {
        let source = SyntheticSource::new(n);
        // Proof generation: N signatures (plus N metadata encryptions in
        // the confidential variant).
        group.bench_with_input(
            BenchmarkId::new("generate/plaintext_metadata", n),
            &n,
            |b, _| b.iter(|| black_box(source.generate_proof(RESULT, &[1; 16], false))),
        );
        group.bench_with_input(
            BenchmarkId::new("generate/encrypted_metadata", n),
            &n,
            |b, _| b.iter(|| black_box(source.generate_proof(RESULT, &[1; 16], true))),
        );
        // Proof validation: N cert chains + N signature verifications.
        let proof = source.generate_proof(RESULT, &[1; 16], false);
        group.bench_with_input(BenchmarkId::new("validate", n), &n, |b, _| {
            b.iter(|| black_box(source.validate_proof(&proof)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_block_proof_ablation);
criterion_main!(benches);
