//! E12 — characterization: the cryptographic substrate across parameter
//! sizes (the knob a deployment turns when trading performance for
//! security margin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use tdt_crypto::elgamal::DecryptionKey;
use tdt_crypto::group::Group;
use tdt_crypto::schnorr::{batch_verify, BatchItem, SigningKey};
use tdt_crypto::sha256::sha256;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_primitives");
    group.sample_size(20);

    // Hashing throughput.
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| black_box(sha256(data)))
        });
    }
    group.throughput(Throughput::Elements(1));

    // Signatures and hybrid encryption per group size.
    for g in [Group::modp_768(), Group::modp_1024(), Group::modp_2048()] {
        let name = g.name();
        let sk = SigningKey::from_seed(g.clone(), b"bench-sign");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"metadata bytes");
        group.bench_function(BenchmarkId::new("schnorr_sign", name), |b| {
            b.iter(|| black_box(sk.sign(b"metadata bytes")))
        });
        group.bench_function(BenchmarkId::new("schnorr_verify", name), |b| {
            b.iter(|| {
                vk.verify(b"metadata bytes", &sig).unwrap();
                black_box(())
            })
        });
        // Steady state when the cert cache already holds this key's
        // fixed-base table.
        let table = Arc::new(vk.precompute_table());
        group.bench_function(BenchmarkId::new("schnorr_verify_cached", name), |b| {
            b.iter(|| {
                vk.verify_with_table(b"metadata bytes", &sig, &table)
                    .unwrap();
                black_box(())
            })
        });
        // Amortized per-signature cost of the batched path (one RLC
        // aggregate check over 16 signatures, cached tables).
        let batch: Vec<(Vec<u8>, _)> = (0..16)
            .map(|i| {
                let msg = format!("metadata bytes {i}").into_bytes();
                let s = sk.sign(&msg);
                (msg, s)
            })
            .collect();
        let items: Vec<BatchItem<'_>> = batch
            .iter()
            .map(|(msg, s)| BatchItem {
                key: &vk,
                message: msg,
                signature: s,
                table: Some(Arc::clone(&table)),
            })
            .collect();
        group.throughput(Throughput::Elements(items.len() as u64));
        group.bench_function(BenchmarkId::new("schnorr_batch_verify_16", name), |b| {
            b.iter(|| {
                batch_verify(&items).unwrap();
                black_box(())
            })
        });
        group.throughput(Throughput::Elements(1));
        let dk = DecryptionKey::from_seed(g.clone(), b"bench-enc");
        let ek = dk.encryption_key();
        let ct = ek.encrypt_deterministic(b"a confidential bill of lading", b"seed");
        group.bench_function(BenchmarkId::new("elgamal_encrypt", name), |b| {
            b.iter(|| {
                black_box(ek.encrypt_deterministic(b"a confidential bill of lading", b"seed"))
            })
        });
        group.bench_function(BenchmarkId::new("elgamal_decrypt", name), |b| {
            b.iter(|| black_box(dk.decrypt(&ct).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
