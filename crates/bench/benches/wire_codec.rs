//! E12 — characterization: wire-protocol serialization costs ("Protocol
//! Buffers ... enables efficient wire communication", paper §3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tdt_bench::SyntheticSource;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    AuthInfo, NetworkAddress, Query, QueryResponse, RelayEnvelope, ResponseStatus,
    VerificationPolicy,
};

fn sample_query() -> Query {
    Query {
        request_id: "req-123456".into(),
        address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
            .with_arg(b"PO-1001".to_vec()),
        policy: VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"])
            .with_confidentiality(),
        auth: AuthInfo {
            network_id: "swt".into(),
            organization_id: "seller-bank-org".into(),
            certificate: vec![0xab; 300],
            signature: vec![0xcd; 96],
        },
        nonce: vec![7; 16],
        invocation: false,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");

    let query = sample_query();
    let query_bytes = query.encode_to_vec();
    println!("\nencoded query size: {} bytes", query_bytes.len());
    group.bench_function("query/encode", |b| {
        b.iter(|| black_box(query.encode_to_vec()))
    });
    group.bench_function("query/decode", |b| {
        b.iter(|| black_box(Query::decode_from_slice(&query_bytes).unwrap()))
    });

    // Responses of increasing proof size.
    for n in [1usize, 2, 4, 8] {
        let source = SyntheticSource::new(n);
        let proof = source.generate_proof(b"result payload", &[1; 16], true);
        let response = QueryResponse {
            request_id: "req-123456".into(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result: vec![0xefu8; 256],
            result_encrypted: true,
            attestations: proof.attestations,
        };
        let bytes = response.encode_to_vec();
        group.bench_with_input(BenchmarkId::new("response/encode", n), &response, |b, r| {
            b.iter(|| black_box(r.encode_to_vec()))
        });
        group.bench_with_input(
            BenchmarkId::new("response/decode", n),
            &bytes,
            |b, bytes| b.iter(|| black_box(QueryResponse::decode_from_slice(bytes).unwrap())),
        );
    }

    // Envelope wrapping (the relay hop overhead).
    let envelope = RelayEnvelope::query("swt-relay", "stl", &query);
    let env_bytes = envelope.encode_to_vec();
    group.bench_function("envelope/roundtrip", |b| {
        b.iter(|| {
            let bytes = envelope.encode_to_vec();
            black_box(RelayEnvelope::decode_from_slice(&bytes).unwrap())
        })
    });
    println!("encoded envelope size: {} bytes", env_bytes.len());
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
