//! E4 — Fig. 4: the cross-network query protocol instance, decomposed:
//! source-side proof generation, client-side processing, destination-side
//! validation, plus the cross-chaincode invocation overhead that motivated
//! combining Configuration Management and Data Acceptance into one CMDAC
//! (paper §4.3, an explicit design choice we ablate).

use criterion::{criterion_group, criterion_main, Criterion};
use interop::driver::FabricDriver;
use interop::proof::process_response;
use std::hint::black_box;
use std::sync::Arc;
use tdt_bench::{bl_address, bl_policy, prepared_testbed, swt_client};
use tdt_relay::driver::NetworkDriver;

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_e2e");
    group.sample_size(20);

    // Source side: driver executes the query and collects the proof
    // (Steps 5-7 in isolation, no relay hops).
    {
        let t = prepared_testbed("PO-1001");
        let driver = FabricDriver::new(Arc::clone(&t.stl));
        let client = swt_client(&t);
        let query = client.build_query(bl_address("PO-1001"), bl_policy());
        group.bench_function("source/proof_generation", |b| {
            b.iter(|| black_box(driver.execute_query(&query).unwrap()))
        });
    }

    // Client side: decrypt + pre-verify the response.
    {
        let t = prepared_testbed("PO-1001");
        let driver = FabricDriver::new(Arc::clone(&t.stl));
        let client = swt_client(&t);
        let query = client.build_query(bl_address("PO-1001"), bl_policy());
        let response = driver.execute_query(&query).unwrap();
        let identity = t.swt_seller_client.clone();
        group.bench_function("client/decrypt_and_preverify", |b| {
            b.iter(|| black_box(process_response(&identity, &query, &response).unwrap()))
        });
    }

    // Destination side: CMDAC proof validation as a chaincode query
    // (signature checks + cert chains + policy evaluation).
    {
        let t = prepared_testbed("PO-1001");
        let client = swt_client(&t);
        let remote = client
            .query_remote(bl_address("PO-1001"), bl_policy())
            .unwrap();
        let gateway = t.swt_seller_gateway();
        group.bench_function("destination/cmdac_validate_proof", |b| {
            b.iter(|| {
                // query() simulates without committing, so the nonce is
                // never consumed and the proof stays replayable here.
                black_box(
                    gateway
                        .query(
                            "CMDAC",
                            "ValidateProof",
                            vec![
                                b"stl".to_vec(),
                                b"stl:trade-channel:TradeLensCC:GetBillOfLading".to_vec(),
                                remote.proof_bytes(),
                            ],
                        )
                        .unwrap(),
                )
            })
        });
    }

    // Ablation: cross-chaincode invocation overhead. The paper merged
    // CM + DA into one chaincode to avoid an extra hop; measure the cost
    // of one extra cross-chaincode call (ECC -> CMDAC ValidateForeignCert
    // vs calling CMDAC directly).
    {
        let t = prepared_testbed("PO-1001");
        let gateway = t.stl_seller_gateway();
        let cert = tdt_wire::messages::encode_certificate(t.swt_seller_client.certificate());
        group.bench_function("ablation/direct_cmdac_cert_validation", |b| {
            b.iter(|| {
                black_box(
                    gateway
                        .query(
                            "CMDAC",
                            "ValidateForeignCert",
                            vec![b"swt".to_vec(), cert.clone()],
                        )
                        .unwrap(),
                )
            })
        });
        group.bench_function("ablation/ecc_check_with_cross_cc_hop", |b| {
            b.iter(|| {
                // CheckAccess = cert checks (one cross-chaincode hop into
                // CMDAC) + rule lookup.
                black_box(
                    gateway
                        .query(
                            "ECC",
                            "CheckAccess",
                            vec![
                                b"swt".to_vec(),
                                b"seller-bank-org".to_vec(),
                                b"TradeLensCC".to_vec(),
                                b"GetBillOfLading".to_vec(),
                                cert.clone(),
                            ],
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
