//! E2 — Fig. 2: per-step latency of the 10-step message flow, plus the
//! production path through in-process and TCP relay transports.
//!
//! Prints the per-step table once (the figure's regenerated artifact), then
//! benchmarks the end-to-end paths.

use criterion::{criterion_group, criterion_main, Criterion};
use interop::driver::FabricDriver;
use interop::flow::harness_for_testbed;
use interop::InteropClient;
use std::hint::black_box;
use std::sync::Arc;
use tdt_bench::{bl_address, bl_policy, prepared_testbed, swt_client};
use tdt_relay::discovery::{DiscoveryService, StaticRegistry};
use tdt_relay::service::RelayService;
use tdt_relay::transport::{EnvelopeHandler, RelayTransport, TcpRelayServer, TcpTransport};

fn print_step_table() {
    let t = prepared_testbed("PO-1001");
    let harness = harness_for_testbed(&t);
    let traced = harness
        .run_traced(
            bl_address("PO-1001"),
            bl_policy(),
            tdt_contracts::swt::SwtChaincode::NAME,
            "UploadDispatchDocs",
            vec![b"PO-1001".to_vec()],
        )
        .expect("traced flow");
    println!("\n=== Fig. 2 message flow: per-step latency (one traced run) ===");
    print!("{}", traced.table());
    println!("total: {:.1?}\n", traced.total());
}

fn bench_flow(c: &mut Criterion) {
    print_step_table();
    let mut group = c.benchmark_group("message_flow");
    group.sample_size(20);

    // Steps 1-9 through the production in-process relay pair.
    {
        let t = prepared_testbed("PO-1001");
        let client = swt_client(&t);
        group.bench_function("query_steps_1_to_9/inprocess_relays", |b| {
            b.iter(|| {
                let remote = client
                    .query_remote(bl_address("PO-1001"), bl_policy())
                    .unwrap();
                black_box(remote)
            })
        });
    }

    // Steps 1-9 with the source relay behind real TCP.
    {
        let t = prepared_testbed("PO-1001");
        let registry = Arc::new(StaticRegistry::new());
        let stl_relay = Arc::new(RelayService::new(
            "stl-relay-tcp",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
        ));
        stl_relay.register_driver(Arc::new(FabricDriver::new(Arc::clone(&t.stl))));
        let server = TcpRelayServer::spawn(
            "127.0.0.1:0",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        )
        .unwrap();
        registry.register("stl", server.endpoint());
        let swt_relay = Arc::new(RelayService::new(
            "swt-relay-tcp",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::new(TcpTransport::new()) as Arc<dyn RelayTransport>,
        ));
        let client = InteropClient::new(t.swt_seller_gateway(), swt_relay);
        group.bench_function("query_steps_1_to_9/tcp_relays", |b| {
            b.iter(|| {
                let remote = client
                    .query_remote(bl_address("PO-1001"), bl_policy())
                    .unwrap();
                black_box(remote)
            })
        });
        server.shutdown();
    }

    // The complete flow including the Step-10 destination transaction.
    {
        let t = prepared_testbed("PO-1001");
        let harness = harness_for_testbed(&t);
        let mut i = 0u64;
        group.bench_function("full_flow_steps_1_to_10", |b| {
            b.iter(|| {
                // Each iteration needs a fresh L/C to upload into.
                i += 1;
                let po = format!("PO-{i}");
                interop::setup::issue_sample_bl(&t, &po);
                let buyer = t.swt_buyer_gateway();
                buyer
                    .submit(
                        tdt_contracts::swt::SwtChaincode::NAME,
                        "RequestLC",
                        vec![
                            po.as_bytes().to_vec(),
                            b"LC".to_vec(),
                            b"b".to_vec(),
                            b"s".to_vec(),
                            b"1000".to_vec(),
                        ],
                    )
                    .unwrap()
                    .into_committed()
                    .unwrap();
                buyer
                    .submit(
                        tdt_contracts::swt::SwtChaincode::NAME,
                        "IssueLC",
                        vec![po.as_bytes().to_vec()],
                    )
                    .unwrap()
                    .into_committed()
                    .unwrap();
                let traced = harness
                    .run_traced(
                        bl_address(&po),
                        bl_policy(),
                        tdt_contracts::swt::SwtChaincode::NAME,
                        "UploadDispatchDocs",
                        vec![po.as_bytes().to_vec()],
                    )
                    .unwrap();
                black_box(traced.outcome.code)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
