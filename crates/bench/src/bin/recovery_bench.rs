//! Recovery-time benchmark for the durable ledger (`EXPERIMENTS.md` E20):
//! crash-recovery wall-clock vs. chain length, split into the backend's
//! share (WAL scan + CRC + chain verification + snapshot load) and the
//! peer's share (envelope decode, state/history replay, tx-index and
//! Merkle re-verification).
//!
//! For each chain length the same chain is recovered twice — once from a
//! WAL-only disk (`snapshot_interval = 0`, full replay from genesis) and
//! once from a disk with periodic snapshots — so the table shows exactly
//! how much replay work snapshots retire.
//!
//! Usage: `cargo run -p tdt-bench --release --bin recovery_bench -- [--smoke]`
//!
//! `--smoke` runs the two smallest scales only (the CI configuration).

use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_crypto::cert::CertRole;
use tdt_crypto::group::Group;
use tdt_fabric::chaincode::ChaincodeRegistry;
use tdt_fabric::endorse::TransactionEnvelope;
use tdt_fabric::msp::{Msp, MspRegistry};
use tdt_fabric::peer::Peer;
use tdt_ledger::block::{Block, TxValidationCode};
use tdt_ledger::history::HistoryIndex;
use tdt_ledger::rwset::{TxRwSet, Version};
use tdt_ledger::state::WorldState;
use tdt_ledger::storage::file::{FileBackend, FileConfig};
use tdt_ledger::storage::vfs::{MemVfs, Vfs};
use tdt_ledger::storage::{Snapshot, StorageBackend};
use tdt_wire::codec::Message;

/// Transactions per block: Fabric block-cutting order of magnitude.
const TXS_PER_BLOCK: usize = 50;

/// Distinct world-state keys the workload cycles over — bounds snapshot
/// size, so snapshot load cost stays realistic instead of degenerate.
const KEYS: usize = 2_000;

/// Snapshot cadence (blocks) for the snapshotted configuration.
const SNAPSHOT_INTERVAL: u64 = 128;

/// One pre-encoded transaction: a single write to a cycling key.
fn envelope_bytes(creator: &tdt_crypto::cert::Certificate, i: usize) -> Vec<u8> {
    let mut rwset = TxRwSet::new();
    rwset.record_write(
        "kv",
        &format!("k{:06}", i % KEYS),
        Some(format!("value-{i:012}").into_bytes()),
    );
    TransactionEnvelope {
        txid: format!("tx{i:012}"),
        channel: "ch".into(),
        chaincode: "kv".into(),
        result: Vec::new(),
        rwset,
        // Recovery replays committer-validated metadata; it never re-runs
        // endorsement checks, so unendorsed envelopes measure the honest
        // replay cost without paying signing time at build time.
        endorsements: Vec::new(),
        creator_cert: creator.clone(),
    }
    .encode_to_vec()
}

/// Builds a `total_txs`-transaction chain on a fresh in-memory disk,
/// driving the backend exactly like the peer commit path (durable append,
/// then state/history apply, then snapshot when due).
fn build_disk(
    total_txs: usize,
    snapshot_interval: u64,
    creator: &tdt_crypto::cert::Certificate,
) -> Arc<MemVfs> {
    let disk = Arc::new(MemVfs::new());
    let config = FileConfig {
        snapshot_interval,
        ..FileConfig::default()
    };
    let mut backend = FileBackend::new(Arc::clone(&disk) as Arc<dyn Vfs>, config);
    backend.load().expect("fresh disk loads"); // lint:allow(panic: "bench harness: a failed build invalidates the run")
    let mut state = WorldState::new();
    let mut history = HistoryIndex::new();
    let mut prev = Block::genesis(vec![b"config".to_vec()]);
    prev.metadata.tx_validation = vec![TxValidationCode::Valid];
    backend.append_block(&prev).expect("genesis append"); // lint:allow(panic: "bench harness: a failed build invalidates the run")
    let mut i = 0usize;
    while i < total_txs {
        let txs: Vec<Vec<u8>> = (0..TXS_PER_BLOCK.min(total_txs - i))
            .map(|j| envelope_bytes(creator, i + j))
            .collect();
        let mut block = Block::next(&prev.header, txs);
        let number = block.header.number;
        block.metadata.tx_validation = vec![TxValidationCode::Valid; block.transactions.len()];
        backend.append_block(&block).expect("append"); // lint:allow(panic: "bench harness: a failed build invalidates the run")
        for (j, tx) in block.transactions.iter().enumerate() {
            let envelope =
                TransactionEnvelope::decode_from_slice(tx).expect("self-built envelope decodes"); // lint:allow(panic: "bench harness: a failed build invalidates the run")
            let version = Version::new(number, j as u64);
            state.apply(&envelope.rwset, version);
            history.record(&envelope.rwset, version);
        }
        i += block.transactions.len();
        if backend.snapshot_due(number + 1) {
            let snapshot = Snapshot::capture(number + 1, &state, &history);
            backend.write_snapshot(&snapshot).expect("snapshot"); // lint:allow(panic: "bench harness: a failed build invalidates the run")
        }
        prev = block;
    }
    disk
}

struct Recovery {
    total: Duration,
    backend_share: Duration,
    chain_height: u64,
    replayed_blocks: u64,
    wal_bytes: u64,
    snapshot_height: Option<u64>,
}

/// Opens a full peer over the disk image and times recovery end to end.
/// The backend's own `duration_ns` (WAL scan/verify + snapshot load) is
/// split out; the remainder is the peer-side replay.
fn recover(disk: &Arc<MemVfs>, snapshot_interval: u64) -> Recovery {
    let mut msp = Msp::new("net", "org1", Group::test_group(), b"bench");
    let peer_id = msp.enroll("peer0", CertRole::Peer, false);
    let config = FileConfig {
        snapshot_interval,
        ..FileConfig::default()
    };
    let backend = Box::new(FileBackend::new(Arc::clone(disk) as Arc<dyn Vfs>, config));
    let started = Instant::now();
    let peer = Peer::with_backend(
        "net",
        "org1",
        "peer0",
        peer_id,
        Arc::new(ChaincodeRegistry::new()),
        Arc::new(MspRegistry::new()),
        Arc::new(std::collections::HashMap::new()),
        backend,
    )
    .expect("recovery"); // lint:allow(panic: "bench harness: a failed recovery invalidates the run")
    let total = started.elapsed();
    let report = peer.recovery_report().expect("opened via with_backend"); // lint:allow(panic: "bench harness: a failed recovery invalidates the run")
    Recovery {
        total,
        backend_share: Duration::from_nanos(report.duration_ns),
        chain_height: report.chain_height,
        replayed_blocks: report.replayed_blocks,
        wal_bytes: report.wal_bytes,
        snapshot_height: report.snapshot_height,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[usize] = if smoke {
        &[2_000, 10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut msp = Msp::new("net", "org1", Group::test_group(), b"bench");
    let creator = msp
        .enroll("alice", CertRole::Client, false)
        .certificate()
        .clone();
    println!("recovery_bench: {TXS_PER_BLOCK} txs/block, {KEYS} keys, snapshot every {SNAPSHOT_INTERVAL} blocks");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "txs", "mode", "total_ms", "backend_ms", "replay_ms", "blocks", "wal_mb"
    );
    for &total_txs in scales {
        // Cap the cadence at half the chain so every scale actually
        // exercises the snapshot path (the smoke chains are short).
        let blocks = (total_txs / TXS_PER_BLOCK) as u64;
        let cadence = SNAPSHOT_INTERVAL.min((blocks / 2).max(8));
        for (mode, interval) in [("wal-only", 0u64), ("snapshots", cadence)] {
            let disk = build_disk(total_txs, interval, &creator);
            let r = recover(&disk, interval);
            let replay = r.total.saturating_sub(r.backend_share);
            println!(
                "{:>10} {:>12} {:>12.1} {:>12.1} {:>12.1} {:>10} {:>10.1}",
                total_txs,
                mode,
                ms(r.total),
                ms(r.backend_share),
                ms(replay),
                r.chain_height,
                r.wal_bytes as f64 / (1024.0 * 1024.0),
            );
            if interval > 0 {
                assert!(
                    r.snapshot_height.is_some(),
                    "snapshotted run must recover through a snapshot"
                ); // lint:allow(panic: "bench harness: a recovery that skipped its snapshot measures the wrong thing")
                assert!(
                    r.replayed_blocks < r.chain_height,
                    "snapshot must retire replay work"
                ); // lint:allow(panic: "bench harness: a recovery that skipped its snapshot measures the wrong thing")
            }
        }
    }
    println!("recovery_bench: done");
}
