//! Open-loop load harness for the relay's TCP path (`BENCH_loadplane.json`).
//!
//! Drives a real [`TcpRelayServer`] over TCP with Poisson arrivals at a
//! configurable offered rate and measures latency from each request's
//! *scheduled* arrival time, not its send time — the standard defense
//! against coordinated omission: when the system falls behind, the
//! backlog shows up as latency instead of silently slowing the load
//! generator down to whatever the server can absorb.
//!
//! Three measurement phases:
//! 1. a closed-loop calibration burst to find this machine's capacity;
//! 2. an open-loop rate sweep (fractions of capacity, past saturation)
//!    in both unbatched and batched client modes — the goodput gap at
//!    the same offered rate is the envelope-batching win;
//! 3. a 2× overload run against a deliberately slow, admission-guarded
//!    server, showing sheds plus bounded completion p99 instead of
//!    queue collapse.
//!
//! Usage: `cargo run -p tdt-bench --release --bin loadplane -- \
//!            [--smoke] [--out PATH] [--profile-hz N]`
//!
//! `--profile-hz N` runs the scoped sampling profiler for the whole
//! rate sweep and writes the folded stacks next to the JSON (`<out>.folded`)
//! — a flamegraph of where the relay actually spends the sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_relay::admission::AdmissionConfig;
use tdt_relay::batch::{BatchConfig, BatchingTransport};
use tdt_relay::chaos::{unit_f64, SplitMix64};
use tdt_relay::discovery::{DiscoveryService, StaticRegistry};
use tdt_relay::driver::{EchoDriver, NetworkDriver};
use tdt_relay::error::RelayError;
use tdt_relay::service::{RelayService, OVERLOADED_PREFIX};
use tdt_relay::transport::{
    EnvelopeHandler, PooledTcpTransport, RelayTransport, TcpRelayServer, TcpServerConfig,
};
use tdt_wire::messages::{EnvelopeKind, NetworkAddress, Query, QueryResponse, RelayEnvelope};

/// The network served by the bench relay.
const NETWORK: &str = "loadnet";

#[derive(Clone, Copy)]
struct Profile {
    /// Open-loop sender threads. Sends block, so this is the client's
    /// in-flight ceiling: it must comfortably exceed both the offered
    /// rate × per-op latency product (or the "open" loop silently turns
    /// closed) and the server's shed-threshold queue depth (or the
    /// admission gate never sees a sheddable backlog).
    client_threads: usize,
    calibrate_threads: usize,
    calibrate_secs: f64,
    window_secs: f64,
    batch_max: usize,
    batch_linger: Duration,
    throughput_workers: usize,
    /// TCP dispatcher threads. Dispatchers block in `handle()` until the
    /// worker pool replies, so this also caps the queue depth the
    /// admission controller can observe.
    dispatchers: usize,
    overload_workers: usize,
    overload_service: Duration,
    overload_deadline: Duration,
    overload_window_secs: f64,
}

const FULL: Profile = Profile {
    client_threads: 128,
    calibrate_threads: 16,
    calibrate_secs: 1.0,
    window_secs: 2.0,
    batch_max: 16,
    batch_linger: Duration::from_micros(500),
    throughput_workers: 8,
    dispatchers: 96,
    overload_workers: 2,
    overload_service: Duration::from_millis(2),
    overload_deadline: Duration::from_millis(50),
    overload_window_secs: 2.0,
};

const SMOKE: Profile = Profile {
    client_threads: 48,
    calibrate_threads: 8,
    calibrate_secs: 0.3,
    window_secs: 0.4,
    batch_max: 8,
    batch_linger: Duration::from_micros(500),
    throughput_workers: 4,
    dispatchers: 64,
    overload_workers: 2,
    overload_service: Duration::from_millis(2),
    overload_deadline: Duration::from_millis(20),
    overload_window_secs: 0.4,
};

/// A driver with a fixed per-query service time: makes server capacity
/// predictable (`workers / service_time`) for the overload phase.
struct SlowDriver {
    service: Duration,
}

impl NetworkDriver for SlowDriver {
    fn network_id(&self) -> &str {
        NETWORK
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        std::thread::sleep(self.service);
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            result: query.address.args.first().cloned().unwrap_or_default(),
            ..Default::default()
        })
    }
}

/// One relay + TCP server pair; dropped in reverse construction order.
struct Testbed {
    relay: Arc<RelayService>,
    server: TcpRelayServer,
}

impl Testbed {
    fn spawn(
        driver: Arc<dyn NetworkDriver>,
        workers: usize,
        dispatchers: usize,
        deadline: Duration,
    ) -> Testbed {
        let registry = Arc::new(StaticRegistry::new());
        let relay = Arc::new(
            RelayService::new(
                "load-relay",
                NETWORK,
                registry as Arc<dyn DiscoveryService>,
                Arc::new(PooledTcpTransport::new()) as Arc<dyn RelayTransport>,
            )
            .with_request_deadline(deadline)
            .with_admission_control(AdmissionConfig::default()),
        );
        relay.register_driver(driver);
        relay.start_workers(workers);
        let server = TcpRelayServer::spawn_with(
            "127.0.0.1:0",
            Arc::clone(&relay) as Arc<dyn EnvelopeHandler>,
            TcpServerConfig {
                max_connections: 1024,
                dispatchers,
                ..TcpServerConfig::default()
            },
        )
        .expect("bind bench relay server"); // lint:allow(panic: "bench harness: cannot run without a listening socket")
        Testbed { relay, server }
    }

    fn shutdown(self) {
        self.server.shutdown();
        self.relay.stop_workers();
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Shed,
    Error,
}

struct Sample {
    latency: Duration,
    outcome: Outcome,
}

fn classify(reply: &Result<RelayEnvelope, RelayError>) -> Outcome {
    match reply {
        Ok(env) if env.kind == EnvelopeKind::QueryResponse => Outcome::Ok,
        Ok(env) if env.kind == EnvelopeKind::Error => {
            if String::from_utf8_lossy(&env.payload).starts_with(OVERLOADED_PREFIX) {
                Outcome::Shed
            } else {
                Outcome::Error
            }
        }
        Ok(_) => Outcome::Error,
        Err(RelayError::Overloaded(_)) => Outcome::Shed,
        Err(_) => Outcome::Error,
    }
}

fn query_envelope(thread: usize, seq: u64) -> RelayEnvelope {
    let q = Query {
        request_id: format!("t{thread}-{seq}"),
        address: NetworkAddress::new(NETWORK, "ledger", "contract", "fn")
            .with_arg(format!("payload-{thread}-{seq}").into_bytes()),
        ..Default::default()
    };
    RelayEnvelope::query("load-client", NETWORK, &q)
}

/// Closed-loop burst: every thread sends back-to-back for `secs`.
/// Returns the sustained ok-throughput — the capacity estimate the
/// open-loop sweep is scaled from.
fn calibrate(
    transport: &Arc<dyn RelayTransport>,
    endpoint: &str,
    threads: usize,
    secs: f64,
) -> f64 {
    let ok = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let until = started + Duration::from_secs_f64(secs);
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let transport = Arc::clone(transport);
            let ok = Arc::clone(&ok);
            scope.spawn(move || {
                let mut seq = 0u64;
                while Instant::now() < until {
                    let reply = transport.send(endpoint, &query_envelope(thread, seq));
                    if classify(&reply) == Outcome::Ok {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    seq += 1;
                }
            });
        }
    });
    ok.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
}

/// One open-loop run: Poisson arrivals at `offered_rps` split across the
/// client threads, latency measured from each request's scheduled
/// arrival (coordinated-omission-safe).
fn open_loop_run(
    transport: &Arc<dyn RelayTransport>,
    endpoint: &str,
    threads: usize,
    offered_rps: f64,
    window_secs: f64,
) -> (Vec<Sample>, f64) {
    let per_thread_rate = offered_rps / threads as f64;
    let mut all = Vec::new();
    let run_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread| {
                let transport = Arc::clone(transport);
                scope.spawn(move || {
                    // Deterministic per-thread schedule; inter-arrival
                    // gaps are exponential (Poisson process).
                    let mut rng = SplitMix64::new(0x10ad_c0de_u64 ^ thread as u64);
                    let mut samples = Vec::new();
                    let start = Instant::now();
                    let mut next_secs = 0.0f64;
                    let mut seq = 0u64;
                    loop {
                        let u = unit_f64(rng.next_u64()).max(f64::EPSILON);
                        next_secs += -u.ln() / per_thread_rate;
                        if next_secs > window_secs {
                            break;
                        }
                        let scheduled = start + Duration::from_secs_f64(next_secs);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let reply = transport.send(endpoint, &query_envelope(thread, seq));
                        samples.push(Sample {
                            latency: Instant::now().saturating_duration_since(scheduled),
                            outcome: classify(&reply),
                        });
                        seq += 1;
                    }
                    samples
                })
            })
            .collect();
        for handle in handles {
            all.extend(handle.join().expect("load thread panicked")); // lint:allow(panic: "bench harness: a panicked load thread invalidates the whole run")
        }
    });
    // Goodput is divided by wall time through the last completion, not the
    // nominal window, so a backlog draining after the window cannot
    // inflate the number past true capacity.
    (all, run_start.elapsed().as_secs_f64())
}

struct RunStats {
    attempted: u64,
    ok: u64,
    sheds: u64,
    errors: u64,
    goodput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
    sorted.get(index).map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

fn summarize(samples: &[Sample], elapsed_secs: f64) -> RunStats {
    let mut ok_latencies: Vec<Duration> = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Ok)
        .map(|s| s.latency)
        .collect();
    ok_latencies.sort_unstable();
    RunStats {
        attempted: samples.len() as u64,
        ok: ok_latencies.len() as u64,
        sheds: samples
            .iter()
            .filter(|s| s.outcome == Outcome::Shed)
            .count() as u64,
        errors: samples
            .iter()
            .filter(|s| s.outcome == Outcome::Error)
            .count() as u64,
        goodput_rps: ok_latencies.len() as f64 / elapsed_secs,
        p50_ms: percentile_ms(&ok_latencies, 0.50),
        p99_ms: percentile_ms(&ok_latencies, 0.99),
        p999_ms: percentile_ms(&ok_latencies, 0.999),
    }
}

fn stats_json(stats: &RunStats) -> String {
    format!(
        "\"attempted\": {}, \"ok\": {}, \"sheds\": {}, \"errors\": {}, \
         \"goodput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}",
        stats.attempted,
        stats.ok,
        stats.sheds,
        stats.errors,
        stats.goodput_rps,
        stats.p50_ms,
        stats.p99_ms,
        stats.p999_ms
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_loadplane.json".to_string());
    let profile_hz: u64 = args
        .iter()
        .position(|a| a == "--profile-hz")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let profile = if smoke { SMOKE } else { FULL };

    // ---- Phase 1 + 2: capacity calibration and the batching sweep ----
    let testbed = Testbed::spawn(
        Arc::new(EchoDriver::new(NETWORK)),
        profile.throughput_workers,
        profile.dispatchers,
        Duration::from_secs(1),
    );
    let endpoint = testbed.server.endpoint();
    let pooled: Arc<dyn RelayTransport> = Arc::new(
        PooledTcpTransport::new().with_connections_per_endpoint(profile.client_threads.min(8)),
    );
    let batched: Arc<dyn RelayTransport> = Arc::new(BatchingTransport::new(
        Arc::clone(&pooled),
        BatchConfig {
            max_batch: profile.batch_max,
            linger: profile.batch_linger,
        },
    ));

    eprintln!(
        "calibrating capacity ({} threads, closed loop)...",
        profile.calibrate_threads
    );
    let capacity = calibrate(
        &pooled,
        &endpoint,
        profile.calibrate_threads,
        profile.calibrate_secs,
    )
    .max(100.0);
    eprintln!("capacity estimate: {capacity:.0} req/s");

    let fractions: &[f64] = if smoke {
        &[0.4, 0.8]
    } else {
        &[0.3, 0.6, 0.9, 1.2]
    };
    let sampler = (profile_hz > 0).then(|| {
        eprintln!("profiling the sweep at {profile_hz} Hz");
        tdt_obs::profile::start(profile_hz)
    });
    let mut run_rows = Vec::new();
    for &fraction in fractions {
        let offered = (capacity * fraction).round();
        for (mode, transport) in [("unbatched", &pooled), ("batched", &batched)] {
            eprintln!(
                "open loop: {mode} at {offered:.0} req/s for {:.1}s",
                profile.window_secs
            );
            let (samples, elapsed) = open_loop_run(
                transport,
                &endpoint,
                profile.client_threads,
                offered,
                profile.window_secs,
            );
            let stats = summarize(&samples, elapsed);
            eprintln!(
                "  -> goodput {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, \
                 {} sheds, {} errors",
                stats.goodput_rps,
                stats.p50_ms,
                stats.p99_ms,
                stats.p999_ms,
                stats.sheds,
                stats.errors
            );
            run_rows.push(format!(
                "    {{\"mode\": \"{mode}\", \"offered_fraction_of_capacity\": {fraction:.2}, \
                 \"offered_rps\": {offered:.0}, \"window_s\": {:.2}, {}}}",
                profile.window_secs,
                stats_json(&stats)
            ));
        }
    }
    if let Some(sampler) = sampler {
        let report = sampler.stop();
        let folded_path = format!("{out_path}.folded");
        match std::fs::write(&folded_path, report.folded_text()) {
            Ok(()) => eprintln!(
                "wrote {folded_path} ({} samples, {} idle)",
                report.samples, report.idle
            ),
            Err(e) => eprintln!("warning: could not write {folded_path}: {e}"),
        }
    }
    testbed.shutdown();

    // ---- Phase 3: 2x overload against a slow, admission-guarded server ----
    let overload_capacity =
        profile.overload_workers as f64 / profile.overload_service.as_secs_f64();
    let overload_offered = overload_capacity * 2.0;
    eprintln!(
        "overload: {} workers x {:?} service (~{overload_capacity:.0} req/s capacity), \
         offering {overload_offered:.0} req/s",
        profile.overload_workers, profile.overload_service
    );
    let testbed = Testbed::spawn(
        Arc::new(SlowDriver {
            service: profile.overload_service,
        }),
        profile.overload_workers,
        profile.dispatchers,
        profile.overload_deadline,
    );
    let endpoint = testbed.server.endpoint();
    let pooled: Arc<dyn RelayTransport> = Arc::new(
        PooledTcpTransport::new().with_connections_per_endpoint(profile.client_threads.min(8)),
    );
    let (samples, elapsed) = open_loop_run(
        &pooled,
        &endpoint,
        profile.client_threads,
        overload_offered,
        profile.overload_window_secs,
    );
    let overload_stats = summarize(&samples, elapsed);
    let admission_shed = testbed.relay.stats().admission_shed();
    let admission_admitted = testbed.relay.stats().admission_admitted();
    eprintln!(
        "  -> goodput {:.0} req/s, completion p99 {:.2} ms (deadline {:?}), \
         {} sheds ({} at the gate), {} errors",
        overload_stats.goodput_rps,
        overload_stats.p99_ms,
        profile.overload_deadline,
        overload_stats.sheds,
        admission_shed,
        overload_stats.errors
    );
    testbed.shutdown();

    let json = format!(
        "{{\n  \"schema\": \"loadplane/v1\",\n  \"generated_by\": \"cargo run -p tdt-bench --release --bin loadplane{}\",\n  \
         \"smoke\": {smoke},\n  \
         \"config\": {{\"client_threads\": {}, \"window_s\": {:.2}, \"batch_max\": {}, \
         \"batch_linger_us\": {}, \"throughput_workers\": {}, \"dispatchers\": {}}},\n  \
         \"capacity_rps\": {capacity:.1},\n  \"runs\": [\n{}\n  ],\n  \
         \"overload\": {{\"workers\": {}, \"service_time_ms\": {:.2}, \"deadline_ms\": {:.1}, \
         \"capacity_rps\": {overload_capacity:.0}, \"offered_rps\": {overload_offered:.0}, \
         \"window_s\": {:.2}, \"admission_admitted\": {admission_admitted}, \
         \"admission_shed\": {admission_shed}, {}}}\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        profile.client_threads,
        profile.window_secs,
        profile.batch_max,
        profile.batch_linger.as_micros(),
        profile.throughput_workers,
        profile.dispatchers,
        run_rows.join(",\n"),
        profile.overload_workers,
        profile.overload_service.as_secs_f64() * 1e3,
        profile.overload_deadline.as_secs_f64() * 1e3,
        profile.overload_window_secs,
        stats_json(&overload_stats)
    );
    std::fs::write(&out_path, &json).expect("write bench output"); // lint:allow(panic: "bench harness: losing the result file must abort the run")
    eprintln!("wrote {out_path}");
}
