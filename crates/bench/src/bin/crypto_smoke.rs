//! Before/after microbenchmark for the Schnorr verify hot path
//! (`BENCH_crypto_smoke`): the committed Barrett baseline vs. the
//! Montgomery + fixed-base-table + batch-RLC path.
//!
//! The "before" column re-runs the pre-overhaul verify equation through
//! the still-public Barrett APIs: two `BarrettContext::modexp` calls
//! (`g^s`, `y^(q-e)`), a `modmul` join, and the challenge re-hash. The
//! "after" column runs `schnorr::batch_verify` over the same signatures
//! with cached per-key fixed-base tables — the steady state the cert
//! cache maintains (`CertChainCache::key_table`).
//!
//! Usage: `cargo run -p tdt-bench --release --bin crypto_smoke -- [--check]`
//!
//! `--check` exits non-zero unless the amortized speedup at modp2048 is
//! at least [`REQUIRED_SPEEDUP_2048`]× — the CI regression guard for the
//! crypto hot-path overhaul.

use std::sync::Arc;
use std::time::Instant;
use tdt_crypto::bigint::BarrettContext;
use tdt_crypto::group::Group;
use tdt_crypto::schnorr::{batch_verify, BatchItem, Signature, SigningKey, VerifyingKey};

/// Hard floor enforced by `--check` at modp2048.
const REQUIRED_SPEEDUP_2048: f64 = 5.0;

/// Signatures per batch. Small enough for a CI smoke run, large enough
/// that the batch aggregate and challenge striping amortize.
const BATCH: usize = 16;

/// Distinct signing keys the batch round-robins over, mirroring a proof
/// whose attestations come from a handful of orgs.
const KEYS: usize = 4;

/// Timed repetitions per measurement; the minimum is reported so a
/// scheduler hiccup in one round cannot fake a regression.
const ROUNDS: usize = 3;

struct Fixture {
    keys: Vec<VerifyingKey>,
    tables: Vec<Arc<tdt_crypto::group::FixedBaseTable>>,
    messages: Vec<Vec<u8>>,
    sigs: Vec<Signature>,
    /// keys/tables index for each batch slot.
    owner: Vec<usize>,
}

fn fixture(group: &Group) -> Fixture {
    let signers: Vec<SigningKey> = (0..KEYS)
        .map(|i| SigningKey::from_seed(group.clone(), format!("smoke-key-{i}").as_bytes()))
        .collect();
    let keys: Vec<VerifyingKey> = signers.iter().map(SigningKey::verifying_key).collect();
    let tables: Vec<_> = keys
        .iter()
        .map(|vk| Arc::new(vk.precompute_table()))
        .collect();
    let mut messages = Vec::with_capacity(BATCH);
    let mut sigs = Vec::with_capacity(BATCH);
    let mut owner = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        let msg = format!("attestation metadata {i}").into_bytes();
        let k = i % KEYS;
        sigs.push(signers[k].sign(&msg)); // lint:allow(panic: "smoke fixture: indices are i % KEYS / i < BATCH by construction")
        messages.push(msg);
        owner.push(k);
    }
    Fixture {
        keys,
        tables,
        messages,
        sigs,
        owner,
    }
}

/// The pre-overhaul verify: Barrett `modexp` twice, `modmul`, re-hash.
/// Byte-for-byte the old equation, driven through the public Barrett API
/// that one-shot reductions still use.
fn verify_barrett_baseline(
    barrett: &BarrettContext,
    group: &Group,
    vk: &VerifyingKey,
    message: &[u8],
    sig: &Signature,
) {
    let (e, s) = sig.scalars(group).expect("smoke signature decodes"); // lint:allow(panic: "smoke fixture: signatures were just produced by sign")
    let gs = barrett.modexp(group.generator(), &s);
    let ye = barrett.modexp(vk.element(), &group.q().sub(&e));
    let r_prime = barrett.modmul(&gs, &ye);
    let e_prime = group.hash_to_scalar(&[
        b"tdt-schnorr",
        &group.element_to_bytes(&r_prime),
        &group.element_to_bytes(vk.element()),
        message,
    ]);
    assert!(e_prime == e, "baseline verify must accept the fixture");
}

/// Minimum wall time over [`ROUNDS`] runs of `f`, in seconds.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up run outside the measurement.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    name: &'static str,
    before_us: f64,
    after_us: f64,
    speedup: f64,
}

fn measure(group: &Group) -> Row {
    let fx = fixture(group);
    let barrett = BarrettContext::new(group.p().clone());

    let before = time_min(|| {
        for i in 0..BATCH {
            verify_barrett_baseline(
                &barrett,
                group,
                &fx.keys[fx.owner[i]], // lint:allow(panic: "smoke fixture: indices are i % KEYS / i < BATCH by construction")
                &fx.messages[i],
                &fx.sigs[i], // lint:allow(panic: "smoke fixture: indices are i % KEYS / i < BATCH by construction")
            );
        }
    });

    let items: Vec<BatchItem<'_>> = (0..BATCH)
        .map(|i| BatchItem {
            key: &fx.keys[fx.owner[i]], // lint:allow(panic: "smoke fixture: indices are i % KEYS / i < BATCH by construction")
            message: &fx.messages[i],
            signature: &fx.sigs[i], // lint:allow(panic: "smoke fixture: indices are i % KEYS / i < BATCH by construction")
            table: Some(Arc::clone(&fx.tables[fx.owner[i]])),
        })
        .collect();
    let after = time_min(|| {
        batch_verify(&items).expect("smoke batch must verify"); // lint:allow(panic: "smoke guard: a failed batch verify must fail the CI job")
    });

    Row {
        name: group.name(),
        before_us: before / BATCH as f64 * 1e6,
        after_us: after / BATCH as f64 * 1e6,
        speedup: before / after,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    println!("crypto_smoke: {BATCH} signatures, {KEYS} keys, best of {ROUNDS} rounds");
    println!("| group | barrett verify (us/sig) | batch+tables (us/sig) | speedup |");
    println!("|---|---|---|---|");
    let mut speedup_2048 = None;
    for group in [Group::modp_768(), Group::modp_1024(), Group::modp_2048()] {
        let row = measure(&group);
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x |",
            row.name, row.before_us, row.after_us, row.speedup
        );
        if row.name == "modp2048" {
            speedup_2048 = Some(row.speedup);
        }
    }

    if check {
        let got = speedup_2048.expect("modp2048 row measured"); // lint:allow(panic: "smoke guard: --check requires the modp2048 row")
        if got < REQUIRED_SPEEDUP_2048 {
            eprintln!(
                "FAIL: modp2048 speedup {got:.2}x is below the required \
                 {REQUIRED_SPEEDUP_2048}x floor"
            );
            std::process::exit(1);
        }
        println!("check passed: modp2048 speedup {got:.2}x >= {REQUIRED_SPEEDUP_2048}x");
    }
}
