//! Profiler overhead bench (E21, `BENCH_profile.json`).
//!
//! Measures what the always-available sampling profiler costs the hot
//! path. The workload is an in-process relay echo: client threads call
//! [`EnvelopeHandler::handle`] on a worker-backed [`RelayService`] in a
//! closed loop, which walks the real instrumented path —
//! `profile_scope!("relay.dispatch")`, admission, driver dispatch — with
//! no TCP noise. Throughput is measured with the sampler off (the
//! baseline) and at each requested rate; overhead is the relative
//! throughput loss, best-of-3 per rate so a scheduler hiccup cannot
//! fail the gate.
//!
//! `--check` exits non-zero when overhead at the default rate
//! ([`tdt_obs::profile::DEFAULT_HZ`]) exceeds 3% — the CI gate that
//! keeps "always-on" honest. The folded stacks observed at the highest
//! rate are written next to the JSON so a flamegraph of the bench
//! itself is one `flamegraph.pl` away.
//!
//! Usage: `cargo run -p tdt-bench --release --bin profile -- \
//!            [--smoke] [--check] [--out PATH] [--folded PATH]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_relay::discovery::{DiscoveryService, StaticRegistry};
use tdt_relay::driver::EchoDriver;
use tdt_relay::service::RelayService;
use tdt_relay::transport::{EnvelopeHandler, PooledTcpTransport, RelayTransport};
use tdt_wire::messages::{EnvelopeKind, NetworkAddress, Query, RelayEnvelope};

/// The network served by the bench relay.
const NETWORK: &str = "profnet";

/// The overhead ceiling `--check` enforces at the default rate.
const MAX_OVERHEAD_PCT: f64 = 3.0;

/// Sampling rates measured after the hz=0 baseline. 19 Hz is the
/// always-on default; 97 Hz is the stress point (both prime, so they
/// cannot alias against periodic work).
const RATES: &[u64] = &[tdt_obs::profile::DEFAULT_HZ, 97];

#[derive(Clone, Copy)]
struct Profile {
    client_threads: usize,
    workers: usize,
    window_secs: f64,
    repeats: usize,
}

const FULL: Profile = Profile {
    client_threads: 4,
    workers: 4,
    window_secs: 1.5,
    repeats: 3,
};

const SMOKE: Profile = Profile {
    client_threads: 2,
    workers: 2,
    window_secs: 0.3,
    repeats: 2,
};

fn query_envelope(thread: usize, seq: u64) -> RelayEnvelope {
    let q = Query {
        request_id: format!("p{thread}-{seq}"),
        address: NetworkAddress::new(NETWORK, "ledger", "contract", "fn")
            .with_arg(format!("payload-{thread}-{seq}").into_bytes()),
        ..Default::default()
    };
    RelayEnvelope::query("profile-client", NETWORK, &q)
}

/// Closed-loop burst: every client thread calls `handle` back-to-back
/// for `secs`. Returns the sustained ok-throughput.
fn run_burst(relay: &Arc<RelayService>, threads: usize, secs: f64) -> f64 {
    let ok = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let until = started + Duration::from_secs_f64(secs);
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let relay = Arc::clone(relay);
            let ok = Arc::clone(&ok);
            scope.spawn(move || {
                let mut seq = 0u64;
                while Instant::now() < until {
                    let reply = relay.handle(query_envelope(thread, seq));
                    if reply.kind == EnvelopeKind::QueryResponse {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    seq += 1;
                }
            });
        }
    });
    ok.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
}

struct RateResult {
    hz: u64,
    best_rps: f64,
    runs: Vec<f64>,
    samples: u64,
    folded: String,
}

/// Best-of-`repeats` throughput at one sampling rate (0 = sampler off).
/// Keeps the folded stacks of the best run for the artifact.
fn measure_rate(relay: &Arc<RelayService>, profile: Profile, hz: u64) -> RateResult {
    let mut runs = Vec::with_capacity(profile.repeats);
    let mut best_rps = 0.0f64;
    let mut samples = 0u64;
    let mut folded = String::new();
    for _ in 0..profile.repeats {
        let handle = (hz > 0).then(|| tdt_obs::profile::start(hz));
        let rps = run_burst(relay, profile.client_threads, profile.window_secs);
        let report = handle.map(tdt_obs::profile::ProfilerHandle::stop);
        runs.push(rps);
        if rps > best_rps {
            best_rps = rps;
            if let Some(report) = report {
                samples = report.samples;
                folded = report.folded_text();
            }
        }
    }
    RateResult {
        hz,
        best_rps,
        runs,
        samples,
        folded,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    let folded_path = args
        .iter()
        .position(|a| a == "--folded")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_profile.folded".to_string());
    let profile = if smoke { SMOKE } else { FULL };

    let registry = Arc::new(StaticRegistry::new());
    let relay = Arc::new(RelayService::new(
        "profile-relay",
        NETWORK,
        registry as Arc<dyn DiscoveryService>,
        Arc::new(PooledTcpTransport::new()) as Arc<dyn RelayTransport>,
    ));
    relay.register_driver(Arc::new(EchoDriver::new(NETWORK)));
    relay.start_workers(profile.workers);

    // Warm up: intern tags, fill worker queues, fault in code paths.
    run_burst(&relay, profile.client_threads, profile.window_secs.min(0.3));

    eprintln!(
        "baseline: {} client threads x {} workers, {:.1}s windows, best of {}",
        profile.client_threads, profile.workers, profile.window_secs, profile.repeats
    );
    let baseline = measure_rate(&relay, profile, 0);
    eprintln!("  hz 0: {:.0} req/s (sampler off)", baseline.best_rps);

    let mut results = Vec::new();
    for &hz in RATES {
        let result = measure_rate(&relay, profile, hz);
        let overhead = 100.0 * (1.0 - result.best_rps / baseline.best_rps.max(1.0));
        eprintln!(
            "  hz {hz}: {:.0} req/s, {} samples, overhead {overhead:+.2}%",
            result.best_rps, result.samples
        );
        results.push((result, overhead));
    }
    relay.stop_workers();

    // The folded artifact comes from the highest rate: most samples,
    // same workload.
    if let Some((densest, _)) = results.last() {
        if let Err(e) = std::fs::write(&folded_path, &densest.folded) {
            eprintln!("warning: could not write {folded_path}: {e}");
        } else {
            eprintln!("wrote {folded_path} ({} samples)", densest.samples);
        }
    }

    let runs_json = |runs: &[f64]| {
        runs.iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let rows: Vec<String> = std::iter::once(format!(
        "    {{\"hz\": 0, \"best_rps\": {:.1}, \"runs\": [{}], \"samples\": 0, \
         \"overhead_pct\": 0.0}}",
        baseline.best_rps,
        runs_json(&baseline.runs)
    ))
    .chain(results.iter().map(|(r, overhead)| {
        format!(
            "    {{\"hz\": {}, \"best_rps\": {:.1}, \"runs\": [{}], \"samples\": {}, \
             \"overhead_pct\": {overhead:.2}}}",
            r.hz,
            r.best_rps,
            runs_json(&r.runs),
            r.samples
        )
    }))
    .collect();
    let json = format!(
        "{{\n  \"schema\": \"profile-overhead/v1\",\n  \
         \"generated_by\": \"cargo run -p tdt-bench --release --bin profile{}\",\n  \
         \"smoke\": {smoke},\n  \
         \"config\": {{\"client_threads\": {}, \"workers\": {}, \"window_s\": {:.2}, \
         \"repeats\": {}, \"default_hz\": {}}},\n  \"rates\": [\n{}\n  ]\n}}\n",
        if smoke { " -- --smoke" } else { "" },
        profile.client_threads,
        profile.workers,
        profile.window_secs,
        profile.repeats,
        tdt_obs::profile::DEFAULT_HZ,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench output"); // lint:allow(panic: "bench harness: losing the result file must abort the run")
    eprintln!("wrote {out_path}");

    if check {
        let default_overhead = results
            .iter()
            .find(|(r, _)| r.hz == tdt_obs::profile::DEFAULT_HZ)
            .map_or(0.0, |(_, overhead)| *overhead);
        if default_overhead > MAX_OVERHEAD_PCT {
            eprintln!(
                "FAIL: profiler overhead {default_overhead:.2}% at {} Hz exceeds the \
                 {MAX_OVERHEAD_PCT:.1}% ceiling",
                tdt_obs::profile::DEFAULT_HZ
            );
            std::process::exit(1);
        }
        eprintln!(
            "check ok: profiler overhead {default_overhead:.2}% at {} Hz is within the \
             {MAX_OVERHEAD_PCT:.1}% ceiling",
            tdt_obs::profile::DEFAULT_HZ
        );
    }
}
