//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one of the paper's evaluation artifacts;
//! the mapping is recorded in `DESIGN.md` (experiment index) and the
//! measured results in `EXPERIMENTS.md`.

use interop::driver::query_auth_bytes;
use interop::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
use interop::InteropClient;
use std::sync::Arc;
use tdt_contracts::swt::SwtChaincode;
use tdt_crypto::cert::CertRole;
use tdt_crypto::group::Group;
use tdt_crypto::sha256::sha256;
use tdt_fabric::msp::{Identity, Msp};
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    encode_certificate, Attestation, AuthInfo, NetworkAddress, NetworkConfig, OrgConfig, Proof,
    Query, ResultMetadata, VerificationPolicy,
};

/// Builds a testbed with a B/L issued and the L/C ready for docs upload.
pub fn prepared_testbed(po: &str) -> Testbed {
    let t = stl_swt_testbed();
    issue_sample_bl(&t, po);
    let buyer = t.swt_buyer_gateway();
    buyer
        .submit(
            SwtChaincode::NAME,
            "RequestLC",
            vec![
                po.as_bytes().to_vec(),
                b"LC-1".to_vec(),
                b"buyer".to_vec(),
                b"seller".to_vec(),
                b"100000".to_vec(),
            ],
        )
        .unwrap() // lint:allow(panic: "bench fixture: abort loudly on broken setup")
        .into_committed()
        .unwrap(); // lint:allow(panic: "bench fixture: abort loudly on broken setup")
    buyer
        .submit(SwtChaincode::NAME, "IssueLC", vec![po.as_bytes().to_vec()])
        .unwrap() // lint:allow(panic: "bench fixture: abort loudly on broken setup")
        .into_committed()
        .unwrap(); // lint:allow(panic: "bench fixture: abort loudly on broken setup")
    t
}

/// The standard B/L query address.
pub fn bl_address(po: &str) -> NetworkAddress {
    NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
        .with_arg(po.as_bytes().to_vec())
}

/// The paper's verification policy (both STL orgs, confidential).
pub fn bl_policy() -> VerificationPolicy {
    VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
}

/// An interop client for the SWT Seller Client over the testbed's relay.
pub fn swt_client(t: &Testbed) -> InteropClient {
    InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay))
}

/// A synthetic multi-org "source network" for proof-scaling benches: `n`
/// organizations, one attesting peer each, plus a requesting client.
pub struct SyntheticSource {
    /// Network id.
    pub network_id: String,
    /// Per-org attesting peers.
    pub peers: Vec<(String, Identity)>,
    /// The shareable configuration.
    pub config: NetworkConfig,
    /// The requesting client (with encryption keys).
    pub requester: Identity,
}

impl SyntheticSource {
    /// Builds the synthetic source with `n` orgs.
    pub fn new(n: usize) -> Self {
        let network_id = "synthetic-net".to_string();
        let mut peers = Vec::with_capacity(n);
        let mut orgs = Vec::with_capacity(n);
        for i in 0..n {
            let org = format!("org-{i}");
            let mut msp = Msp::new(&network_id, &org, Group::test_group(), b"bench");
            let peer = msp.enroll("peer0", CertRole::Peer, false);
            orgs.push(OrgConfig {
                org_id: org.clone(),
                root_cert: encode_certificate(msp.root_certificate()),
                peer_certs: vec![encode_certificate(peer.certificate())],
            });
            peers.push((org, peer));
        }
        let mut req_msp = Msp::new("dest-net", "dest-org", Group::test_group(), b"bench-req");
        let requester = req_msp.enroll("client", CertRole::Client, true);
        SyntheticSource {
            network_id: network_id.clone(),
            peers,
            config: NetworkConfig {
                network_id,
                group_name: "modp768".into(),
                orgs,
            },
            requester,
        }
    }

    /// The canonical address of the synthetic query.
    pub fn address(&self) -> String {
        format!("{}:ledger:DataCC:GetData", self.network_id)
    }

    /// A signed query for the synthetic source.
    pub fn query(&self, confidential: bool) -> Query {
        let orgs: Vec<String> = self.peers.iter().map(|(o, _)| o.clone()).collect();
        let mut policy = VerificationPolicy::all_of_orgs(orgs);
        if confidential {
            policy = policy.with_confidentiality();
        }
        let mut query = Query {
            request_id: "bench-req".into(),
            address: NetworkAddress::new(&self.network_id, "ledger", "DataCC", "GetData")
                .with_arg(b"K".to_vec()),
            policy,
            auth: AuthInfo {
                network_id: "dest-net".into(),
                organization_id: "dest-org".into(),
                certificate: encode_certificate(self.requester.certificate()),
                signature: Vec::new(),
            },
            nonce: vec![7; 16],
            invocation: false,
        };
        query.auth.signature = self
            .requester
            .signing_key()
            .sign(&query_auth_bytes(&query))
            .to_bytes();
        query
    }

    /// Generates an attestation proof over `result` with one attestation
    /// per org, optionally encrypting metadata for the requester.
    pub fn generate_proof(&self, result: &[u8], nonce: &[u8], encrypt_metadata: bool) -> Proof {
        let enc_key = self
            .requester
            .certificate()
            .encryption_key()
            .unwrap() // lint:allow(panic: "bench fixture: abort loudly on broken setup")
            .unwrap();
        let attestations = self
            .peers
            .iter()
            .map(|(org, peer)| {
                let metadata = ResultMetadata {
                    request_id: "bench-req".into(),
                    address: self.address(),
                    result_hash: sha256(result).to_vec(),
                    nonce: nonce.to_vec(),
                    peer_id: peer.qualified_name(),
                    org_id: org.clone(),
                    ledger_height: 10,
                    committed_block_plus_one: 0,
                    txid: String::new(),
                };
                let md = metadata.encode_to_vec();
                let signature = peer.sign(&md);
                let (metadata_out, encrypted) = if encrypt_metadata {
                    let seed = format!("bench:{}", peer.qualified_name());
                    (
                        enc_key
                            .encrypt_deterministic(&md, seed.as_bytes())
                            .to_bytes(),
                        true,
                    )
                } else {
                    (md, false)
                };
                Attestation {
                    signer_cert: encode_certificate(peer.certificate()),
                    signature: signature.to_bytes(),
                    metadata: metadata_out,
                    metadata_encrypted: encrypted,
                }
            })
            .collect();
        Proof {
            request_id: "bench-req".into(),
            address: self.address(),
            nonce: nonce.to_vec(),
            result: result.to_vec(),
            attestations,
        }
    }

    /// Validates a (plaintext-metadata) proof the way the CMDAC does:
    /// authenticate every signer against the config, verify every
    /// signature, and check metadata consistency. Returns the number of
    /// valid attestations.
    ///
    /// # Panics
    ///
    /// Panics when any attestation fails (benches want the happy path).
    pub fn validate_proof(&self, proof: &Proof) -> usize {
        let result_hash = sha256(&proof.result);
        let mut count = 0;
        for att in &proof.attestations {
            let cert = tdt_wire::messages::decode_certificate(&att.signer_cert).unwrap(); // lint:allow(panic: "bench validates the happy path; a failed attestation must abort the run")
            let org = self
                .config
                .orgs
                .iter()
                .find(|o| o.org_id == cert.subject().organization)
                .unwrap(); // lint:allow(panic: "bench validates the happy path; a failed attestation must abort the run")
            let root = tdt_wire::messages::decode_certificate(&org.root_cert).unwrap(); // lint:allow(panic: "bench validates the happy path; a failed attestation must abort the run")
            cert.verify(&root).unwrap(); // covered by the allow above
            let vk = cert.verifying_key().unwrap(); // lint:allow(panic: "bench validates the happy path; a failed attestation must abort the run")
            let sig = tdt_crypto::schnorr::Signature::from_bytes(&att.signature).unwrap(); // covered by the allow above
            vk.verify(&att.metadata, &sig).unwrap(); // lint:allow(panic: "bench validates the happy path; a failed attestation must abort the run")
            let md = ResultMetadata::decode_from_slice(&att.metadata).unwrap(); // covered by the allow above
            assert_eq!(md.result_hash, result_hash.to_vec());
            count += 1;
        }
        count
    }
}
