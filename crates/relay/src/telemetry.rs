//! Observability glue for the relay: trace-context ⇄ wire conversion and
//! scrape-time metric bridges.
//!
//! Two concerns live here:
//!
//! * **Context propagation.** [`current_trace_header`] stamps the active
//!   thread-local [`TraceContext`] onto an outgoing [`RelayEnvelope`] as a
//!   zero-elided [`TraceHeader`]; [`context_from_envelope`] recovers it on
//!   the receiving side so the destination relay's spans join the same
//!   trace tree even across worker threads and real TCP hops.
//! * **Unified metrics.** [`register_relay`] / [`register_group`] attach
//!   scrape-time [`MetricSource`] bridges to an [`ObsHandle`], copying the
//!   relay's existing atomic counters ([`RelayStats`], pool, breaker,
//!   cert cache, relay-group hedging) into one registry under stable
//!   `tdt_relay_*` names. Each relay's series carry a `relay="<id>"`
//!   label (groups a `group="<member ids>"` label), so several relays can
//!   share one handle without their scrapes overwriting each other. Hot
//!   paths keep their plain atomics; the bridge only runs on scrape.

use crate::redundancy::RelayGroup;
use crate::service::{RelayService, RelayStats};
use std::sync::{Arc, Weak};
use tdt_obs::metrics::{labeled_name, Registry};
use tdt_obs::{MetricSource, ObsHandle, TraceContext};
use tdt_wire::messages::{RelayEnvelope, TraceHeader};

/// Converts an in-process context into its wire representation. The unset
/// context maps to the all-zero header, which the codec elides entirely.
pub fn trace_header(ctx: &TraceContext) -> TraceHeader {
    TraceHeader {
        trace_hi: ctx.trace_hi,
        trace_lo: ctx.trace_lo,
        span_id: ctx.span_id,
        parent_span_id: ctx.parent_span_id,
        sampled: ctx.sampled,
    }
}

/// The wire header for the context installed on this thread, or the
/// zero-elided header when no trace is in progress.
pub fn current_trace_header() -> TraceHeader {
    match TraceContext::current() {
        Some(ctx) => trace_header(&ctx),
        None => TraceHeader::default(),
    }
}

/// Recovers the sender's context from a wire header.
pub fn context_from_header(header: &TraceHeader) -> TraceContext {
    if header.is_unset() {
        return TraceContext::unset();
    }
    TraceContext {
        trace_hi: header.trace_hi,
        trace_lo: header.trace_lo,
        span_id: header.span_id,
        parent_span_id: header.parent_span_id,
        sampled: header.sampled,
    }
}

/// Recovers the sender's context from an incoming envelope.
pub fn context_from_envelope(envelope: &RelayEnvelope) -> TraceContext {
    context_from_header(&envelope.trace)
}

/// Scrape-time bridge from one relay's stats into the registry. Every
/// series is labeled with the relay's id so multiple relays bridged into
/// one registry stay distinct.
struct RelayMetricSource {
    relay: Weak<RelayService>,
    id: String,
}

impl MetricSource for RelayMetricSource {
    fn collect(&self, registry: &Registry) {
        let Some(relay) = self.relay.upgrade() else {
            return;
        };
        let snap = relay.stats().snapshot();
        let labels = [("relay", self.id.as_str())];
        let c = |name: &str, help: &str, value: u64| {
            registry
                .counter(&labeled_name(name, &labels), help)
                .set(value);
        };
        let g = |name: &str, help: &str, value: u64| {
            registry
                .gauge(&labeled_name(name, &labels), help)
                .set(value.min(i64::MAX as u64) as i64);
        };
        c(
            "tdt_relay_forwarded_total",
            "Queries forwarded to remote relays (destination role)",
            snap.forwarded,
        );
        c(
            "tdt_relay_served_total",
            "Queries served for remote relays (source role)",
            snap.served,
        );
        c(
            "tdt_relay_shed_total",
            "Requests shed by the rate limiter",
            snap.shed,
        );
        c(
            "tdt_relay_enqueued_total",
            "Envelopes handed to the worker pool",
            snap.enqueued,
        );
        c(
            "tdt_relay_admission_admitted_total",
            "Requests admitted to the queue by the admission controller",
            snap.admission_admitted,
        );
        c(
            "tdt_relay_admission_shed_total",
            "Requests shed at the admission gate before queuing",
            snap.admission_shed,
        );
        g(
            "tdt_relay_admission_service_estimate_ns",
            "Admission controller's smoothed per-job service-time estimate",
            relay.stats().admission_service_estimate_ns(),
        );
        c(
            "tdt_relay_deadline_exceeded_total",
            "Envelopes answered with a deadline error",
            snap.deadline_exceeded,
        );
        g(
            "tdt_relay_queue_depth",
            "Envelopes waiting in the worker-pool queue",
            snap.queue_depth,
        );
        g(
            "tdt_relay_in_flight",
            "Envelopes currently being processed by workers",
            snap.in_flight,
        );
        c(
            "tdt_relay_events_delivered_total",
            "Event notices delivered to local subscribers",
            snap.events_delivered,
        );
        c(
            "tdt_relay_events_dropped_total",
            "Event notices dropped because a subscriber's queue was full",
            snap.events_dropped,
        );
        g(
            "tdt_relay_events_lagging",
            "Subscriptions whose delivery queue is currently full",
            relay.lagging_subscriptions(),
        );
        c(
            "tdt_relay_cache_hits_total",
            "Certificate-chain cache hits",
            snap.cache_hits,
        );
        c(
            "tdt_relay_cache_misses_total",
            "Certificate-chain cache misses",
            snap.cache_misses,
        );
        g(
            "tdt_relay_pool_open",
            "Transport-pool connections currently open",
            snap.pool_connections_open,
        );
        c(
            "tdt_relay_pool_dialed_total",
            "Transport-pool connections dialed",
            snap.pool_connections_dialed,
        );
        c(
            "tdt_relay_pool_reused_total",
            "Requests that reused an already-open pooled connection",
            snap.pool_connections_reused,
        );
        g(
            "tdt_relay_pool_in_flight",
            "Requests in flight on pooled connections",
            snap.pool_requests_in_flight,
        );
        c(
            "tdt_relay_pool_orphaned_total",
            "Multiplexed replies dropped for lack of a matching waiter",
            snap.pool_orphaned_replies,
        );
        c(
            "tdt_relay_pool_culled_total",
            "Pooled connections pruned as dead at checkout time",
            snap.pool_connections_culled,
        );
        c(
            "tdt_relay_breaker_trips_total",
            "Times the circuit breaker tripped open",
            snap.breaker_trips,
        );
        c(
            "tdt_relay_breaker_probes_total",
            "Half-open probe requests admitted by the breaker",
            snap.breaker_probes,
        );
        c(
            "tdt_relay_breaker_fast_rejects_total",
            "Requests rejected instantly by an open circuit",
            snap.breaker_fast_rejects,
        );
        g(
            "tdt_relay_breaker_open_endpoints",
            "Endpoints whose circuit is currently open or half-open",
            snap.breaker_open_endpoints,
        );
        // Process-global span-plane health: deliberately unlabeled (every
        // bridged relay writes the same process-wide value).
        registry
            .counter(
                "tdt_obs_spans_dropped_total",
                "Span records overwritten in full ring buffers before snapshot",
            )
            .set(tdt_obs::span::spans_dropped());
        registry
            .gauge(
                "tdt_obs_span_rings",
                "Per-thread span rings currently alive (growth past the worker \
                 count indicates leaked rings)",
            )
            .set(tdt_obs::span::live_rings().min(i64::MAX as u64) as i64);
        // Flight-recorder and profiler health, equally process-global.
        registry
            .counter(
                "tdt_obs_flight_events_total",
                "Events written to the flight recorder since process start",
            )
            .set(tdt_obs::flight::events_recorded());
        registry
            .counter(
                "tdt_obs_flight_dumps_total",
                "Incident dumps taken (on demand, on error, or on SLO breach)",
            )
            .set(tdt_obs::flight::dumps_taken());
        registry
            .gauge(
                "tdt_obs_flight_rings",
                "Per-thread flight-recorder rings currently alive",
            )
            .set(tdt_obs::flight::live_rings().min(i64::MAX as u64) as i64);
        registry
            .counter(
                "tdt_obs_profile_samples_total",
                "Stack observations taken by the sampling profiler",
            )
            .set(tdt_obs::profile::samples_total());
    }
}

/// Scrape-time bridge from a redundant relay group's counters. Series are
/// labeled with the group's member ids so several groups can share one
/// registry.
struct GroupMetricSource {
    group: Weak<RelayGroup>,
    label: String,
}

impl MetricSource for GroupMetricSource {
    fn collect(&self, registry: &Registry) {
        let Some(group) = self.group.upgrade() else {
            return;
        };
        let labels = [("group", self.label.as_str())];
        let c = |name: &str, help: &str, value: u64| {
            registry
                .counter(&labeled_name(name, &labels), help)
                .set(value);
        };
        c(
            "tdt_relay_group_hedges_total",
            "Hedged backup requests fired after the hedge delay",
            group.hedges(),
        );
        c(
            "tdt_relay_group_discarded_replies_total",
            "Hedged replies discarded because the other leg won",
            group.discarded_replies(),
        );
        c(
            "tdt_relay_group_breaker_skips_total",
            "Members skipped during selection because their circuit was open",
            group.breaker_skips(),
        );
        c(
            "tdt_relay_group_deadline_failures_total",
            "Group queries failed because the deadline budget ran out",
            group.deadline_failures(),
        );
        c(
            "tdt_relay_group_degraded_queries_total",
            "Group queries that succeeded only after at least one failover",
            group.degraded_queries(),
        );
    }
}

/// Wires one relay into an [`ObsHandle`]: adopts its exponential latency
/// histogram under `tdt_relay_latency_ns{relay="<id>"}` and attaches the
/// scrape-time stats bridge, with every series labeled by the relay's id
/// so a handle can host any number of relays. The handle holds only a
/// weak reference to the relay.
pub fn register_relay(handle: &ObsHandle, relay: &Arc<RelayService>) {
    register_latency(handle, relay.id(), relay.stats());
    handle.add_source(Arc::new(RelayMetricSource {
        relay: Arc::downgrade(relay),
        id: relay.id().to_string(),
    }));
}

/// Adopts a relay's latency histogram into the handle's registry without
/// attaching the counter bridge (useful when only latency is wanted).
/// The series is labeled `relay="<relay_id>"` so one handle can carry a
/// histogram per relay.
pub fn register_latency(handle: &ObsHandle, relay_id: &str, stats: &RelayStats) {
    handle.registry().register_histogram(
        &labeled_name("tdt_relay_latency_ns", &[("relay", relay_id)]),
        "Envelope-handling latency in nanoseconds",
        stats.latency_ns(),
    );
}

/// Wires a redundant relay group's hedging/failover counters into an
/// [`ObsHandle`] via a weak reference. Series are labeled
/// `group="<member ids joined with +>"`.
pub fn register_group(handle: &ObsHandle, group: &Arc<RelayGroup>) {
    let label = (0..group.len())
        .filter_map(|i| group.relay(i))
        .map(|r| r.id().to_string())
        .collect::<Vec<_>>()
        .join("+");
    handle.add_source(Arc::new(GroupMetricSource {
        group: Arc::downgrade(group),
        label,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_context_elides_header() {
        assert!(current_trace_header().is_unset());
        let ctx = context_from_header(&TraceHeader::default());
        assert!(ctx.is_unset());
        assert!(!ctx.is_recording());
    }

    #[test]
    fn header_roundtrip_preserves_context() {
        let ctx = TraceContext::root();
        let header = trace_header(&ctx);
        assert_eq!(context_from_header(&header), ctx);
    }

    #[test]
    fn installed_context_reaches_the_wire() {
        let ctx = TraceContext::root();
        let guard = ctx.install();
        let header = current_trace_header();
        assert_eq!(header.trace_hi, ctx.trace_hi);
        assert_eq!(header.span_id, ctx.span_id);
        assert!(header.sampled);
        drop(guard);
        assert!(current_trace_header().is_unset());
    }
}
