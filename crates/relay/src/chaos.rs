//! Deterministic chaos plane: transport-level fault injection with a
//! seeded, replayable schedule.
//!
//! The paper's availability argument (§5) only holds if the destination
//! network stays safe when relays misbehave. [`ChaosTransport`] wraps any
//! [`RelayTransport`] — the in-process bus, the connect-per-request TCP
//! transport, or the pooled multiplexed one — and injects the transport
//! faults a hostile or degraded WAN actually produces: dropped requests,
//! fixed-plus-jittered delay, byte corruption, duplication, reordering
//! delay, and per-endpoint-pair partitions.
//!
//! Every decision is drawn from a *stateless* function of `(seed, op)`
//! where `op` is the transport's global operation counter, so a run's
//! fault schedule is fully determined by its seed: re-running with the
//! same seed replays the identical schedule, which is what makes chaotic
//! soak failures debuggable. Print the seed on failure and replay it.
//!
//! The shared fault vocabulary ([`SharedFaults`]) also backs
//! `tdt_fabric::net::FaultInjector`, so fabric-level and relay-level
//! injection configure outages, latency and partitions in one language.

use crate::error::RelayError;
use crate::transport::RelayTransport;
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdt_obs::span::{self as obs_span};
use tdt_obs::TraceContext;
use tdt_wire::codec::Message;
use tdt_wire::messages::RelayEnvelope;

// ---------------------------------------------------------------------------
// Seeded, dependency-free PRNG
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, high-quality, dependency-free mixing PRNG.
///
/// Used both as a sequential generator and — via [`mix64`] — as a
/// stateless hash for per-operation fault decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix_steps(self.state)
    }
}

#[inline]
fn mix_steps(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless mix of `(seed, op, salt)` into 64 uniform bits. The same
/// inputs always produce the same output — the backbone of replayable
/// fault schedules.
#[inline]
pub fn mix64(seed: u64, op: u64, salt: u64) -> u64 {
    mix_steps(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ op.wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ salt.wrapping_mul(0x94d0_49bb_1331_11eb),
    )
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Shared fault vocabulary
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultState {
    down: HashSet<String>,
    latency: Duration,
    partitions: HashSet<(String, String)>,
}

/// Shared, cheaply clonable named-component fault state: components
/// marked down, a global injected latency, and directional
/// component-pair partitions.
///
/// This is the one vocabulary both injection layers speak:
/// `tdt_fabric::net::FaultInjector` re-exports it for peer/orderer
/// outages, and [`ChaosTransport`] consults it for endpoint outages and
/// partitions on the relay-to-relay path.
#[derive(Debug, Clone, Default)]
pub struct SharedFaults {
    inner: Arc<RwLock<FaultState>>,
}

impl SharedFaults {
    /// Creates a fault set with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a component (peer, relay, endpoint) as down.
    pub fn take_down(&self, component: impl Into<String>) {
        self.inner.write().down.insert(component.into());
    }

    /// Restores a component.
    pub fn restore(&self, component: &str) {
        self.inner.write().down.remove(component);
    }

    /// True when the component is currently down.
    pub fn is_down(&self, component: &str) -> bool {
        self.inner.read().down.contains(component)
    }

    /// Sets a per-message artificial latency.
    pub fn set_latency(&self, latency: Duration) {
        self.inner.write().latency = latency;
    }

    /// The configured artificial latency.
    pub fn latency(&self) -> Duration {
        self.inner.read().latency
    }

    /// Sleeps for the configured latency (no-op when zero).
    pub fn apply_latency(&self) {
        let latency = self.latency();
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
    }

    /// Partitions the directional pair `from → to`: traffic between them
    /// black-holes until [`SharedFaults::heal`] is called.
    pub fn partition(&self, from: impl Into<String>, to: impl Into<String>) {
        self.inner
            .write()
            .partitions
            .insert((from.into(), to.into()));
    }

    /// Heals the directional pair `from → to`.
    pub fn heal(&self, from: &str, to: &str) {
        self.inner
            .write()
            .partitions
            .remove(&(from.to_string(), to.to_string()));
    }

    /// True when the directional pair `from → to` is partitioned.
    pub fn is_partitioned(&self, from: &str, to: &str) -> bool {
        self.inner
            .read()
            .partitions
            .contains(&(from.to_string(), to.to_string()))
    }

    /// Number of active directional partitions.
    pub fn partition_count(&self) -> usize {
        self.inner.read().partitions.len()
    }

    /// Clears every fault.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.down.clear();
        inner.latency = Duration::ZERO;
        inner.partitions.clear();
    }

    /// Number of components currently down.
    pub fn down_count(&self) -> usize {
        self.inner.read().down.len()
    }
}

// ---------------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------------

/// Probabilities and magnitudes of the scheduled faults. All
/// probabilities are per-operation and independent; `..Default::default()`
/// gives an entirely quiet schedule to build on.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability the request is dropped before reaching the endpoint
    /// (surfaces as a transport failure).
    pub drop_prob: f64,
    /// Probability the exchange is delayed by `delay` ± `delay_jitter`.
    pub delay_prob: f64,
    /// Fixed component of an injected delay.
    pub delay: Duration,
    /// Uniform extra delay in `0..=delay_jitter`, drawn from the schedule.
    pub delay_jitter: Duration,
    /// Probability the envelope bytes are corrupted in flight (request or
    /// reply direction, chosen by the schedule).
    pub corrupt_prob: f64,
    /// Probability the request is delivered twice; the duplicate reply is
    /// discarded, never surfaced to the caller.
    pub duplicate_prob: f64,
    /// Probability this request is held back by `reorder_delay`, letting
    /// later requests overtake it.
    pub reorder_prob: f64,
    /// How long a reordered request is held back.
    pub reorder_delay: Duration,
    /// Probability a scheduled partition *starts* on the addressed
    /// endpoint at this operation.
    pub partition_prob: f64,
    /// How many subsequent operations a scheduled partition lasts before
    /// it auto-heals.
    pub partition_ops: u64,
    /// How long a send into a partition blocks before failing — models a
    /// black hole, not a fast reject.
    pub partition_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(1),
            delay_jitter: Duration::from_millis(1),
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: Duration::from_millis(2),
            partition_prob: 0.0,
            partition_ops: 16,
            partition_timeout: Duration::from_millis(20),
        }
    }
}

/// What the schedule decided for one operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Drop the request.
    pub drop: bool,
    /// Extra delay to inject before the exchange.
    pub delay: Option<Duration>,
    /// Corrupt the envelope; `true` = corrupt the request direction,
    /// `false` = corrupt the reply direction.
    pub corrupt: Option<bool>,
    /// Byte offset factor used to pick the flipped byte.
    pub corrupt_at: u64,
    /// Deliver the request twice.
    pub duplicate: bool,
    /// Hold the request back to let later ones overtake.
    pub reorder: bool,
    /// Start a scheduled partition on this endpoint.
    pub start_partition: bool,
}

impl FaultDecision {
    /// True when this operation proceeds completely untouched.
    /// (`corrupt_at` is ignored: it is only meaningful when `corrupt`
    /// fired.)
    pub fn is_quiet(&self) -> bool {
        !self.drop
            && self.delay.is_none()
            && self.corrupt.is_none()
            && !self.duplicate
            && !self.reorder
            && !self.start_partition
    }
}

/// A seeded, replayable fault schedule: a pure function from operation
/// number to [`FaultDecision`].
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    config: ChaosConfig,
}

/// Salts separating the independent per-operation draws.
mod salt {
    pub const DROP: u64 = 1;
    pub const DELAY: u64 = 2;
    pub const DELAY_JITTER: u64 = 3;
    pub const CORRUPT: u64 = 4;
    pub const CORRUPT_DIR: u64 = 5;
    pub const CORRUPT_AT: u64 = 6;
    pub const DUPLICATE: u64 = 7;
    pub const REORDER: u64 = 8;
    pub const PARTITION: u64 = 9;
}

impl FaultSchedule {
    /// Creates a schedule from a seed and fault probabilities.
    pub fn new(seed: u64, config: ChaosConfig) -> Self {
        FaultSchedule { seed, config }
    }

    /// The seed this schedule replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured probabilities.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    fn coin(&self, op: u64, salt: u64, prob: f64) -> bool {
        prob > 0.0 && unit_f64(mix64(self.seed, op, salt)) < prob
    }

    /// The decision for operation `op`. Pure: the same `(seed, config,
    /// op)` always yields the same decision.
    pub fn decision(&self, op: u64) -> FaultDecision {
        let c = &self.config;
        let delay = if self.coin(op, salt::DELAY, c.delay_prob) {
            let jitter_nanos = c.delay_jitter.as_nanos() as u64;
            let extra = if jitter_nanos == 0 {
                0
            } else {
                mix64(self.seed, op, salt::DELAY_JITTER) % (jitter_nanos + 1)
            };
            Some(c.delay + Duration::from_nanos(extra))
        } else {
            None
        };
        let corrupt = if self.coin(op, salt::CORRUPT, c.corrupt_prob) {
            Some(mix64(self.seed, op, salt::CORRUPT_DIR) & 1 == 0)
        } else {
            None
        };
        FaultDecision {
            drop: self.coin(op, salt::DROP, c.drop_prob),
            delay,
            corrupt,
            corrupt_at: mix64(self.seed, op, salt::CORRUPT_AT),
            duplicate: self.coin(op, salt::DUPLICATE, c.duplicate_prob),
            reorder: self.coin(op, salt::REORDER, c.reorder_prob),
            start_partition: self.coin(op, salt::PARTITION, c.partition_prob),
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos transport
// ---------------------------------------------------------------------------

/// Counters for every fault actually injected, for assertions and replay
/// triage.
#[derive(Debug, Default)]
pub struct ChaosStats {
    dropped: AtomicU64,
    delayed: AtomicU64,
    corrupted: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    partitioned_sends: AtomicU64,
    partitions_started: AtomicU64,
    partitions_healed: AtomicU64,
}

impl ChaosStats {
    /// Requests dropped before delivery.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Requests delayed.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Envelopes corrupted in flight (either direction).
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Requests delivered twice (duplicate reply discarded).
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Requests held back to force reordering.
    pub fn reordered(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }

    /// Sends that black-holed into an active partition.
    pub fn partitioned_sends(&self) -> u64 {
        self.partitioned_sends.load(Ordering::Relaxed)
    }

    /// Scheduled partitions started.
    pub fn partitions_started(&self) -> u64 {
        self.partitions_started.load(Ordering::Relaxed)
    }

    /// Scheduled partitions auto-healed.
    pub fn partitions_healed(&self) -> u64 {
        self.partitions_healed.load(Ordering::Relaxed)
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped()
            + self.delayed()
            + self.corrupted()
            + self.duplicated()
            + self.reordered()
            + self.partitioned_sends()
    }
}

/// A scheduled partition awaiting auto-heal.
#[derive(Debug)]
struct ScheduledPartition {
    endpoint: String,
    heal_at_op: u64,
}

/// A [`RelayTransport`] decorator injecting faults from a seeded,
/// replayable schedule.
///
/// Composes over any inner transport ([`crate::transport::InProcessBus`],
/// [`crate::transport::TcpTransport`], [`crate::transport::PooledTcpTransport`],
/// or another decorator). Manual faults (outages, partitions) come from
/// the attached [`SharedFaults`]; randomized faults come from the
/// [`FaultSchedule`]. Corruption is fail-closed end to end: a corrupted
/// envelope either fails to decode (the stream is treated as killed) or
/// decodes to garbage the verification layers above must reject.
pub struct ChaosTransport {
    inner: Arc<dyn RelayTransport>,
    schedule: FaultSchedule,
    /// Name of the local side, keying partition pairs in [`SharedFaults`].
    local: String,
    faults: SharedFaults,
    op: AtomicU64,
    scheduled: Mutex<Vec<ScheduledPartition>>,
    stats: Arc<ChaosStats>,
}

impl std::fmt::Debug for ChaosTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("seed", &self.schedule.seed())
            .field("local", &self.local)
            .field("op", &self.op.load(Ordering::Relaxed))
            .field("stats", &self.stats)
            .finish()
    }
}

impl ChaosTransport {
    /// Wraps `inner`, drawing faults from `seed` and `config`.
    pub fn new(inner: Arc<dyn RelayTransport>, seed: u64, config: ChaosConfig) -> Self {
        ChaosTransport {
            inner,
            schedule: FaultSchedule::new(seed, config),
            local: "chaos".into(),
            faults: SharedFaults::new(),
            op: AtomicU64::new(0),
            scheduled: Mutex::new(Vec::new()),
            stats: Arc::new(ChaosStats::default()),
        }
    }

    /// Names the local side for partition-pair keying (builder style).
    pub fn with_local_name(mut self, local: impl Into<String>) -> Self {
        self.local = local.into();
        self
    }

    /// Attaches a shared fault set, so outages and partitions configured
    /// elsewhere (e.g. by a fabric-level test) apply here too (builder
    /// style).
    pub fn with_faults(mut self, faults: SharedFaults) -> Self {
        self.faults = faults;
        self
    }

    /// The replay seed. Print this when a chaotic test fails.
    pub fn seed(&self) -> u64 {
        self.schedule.seed()
    }

    /// The schedule (pure; usable to pre-compute or compare runs).
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The manual fault set consulted on every send.
    pub fn faults(&self) -> &SharedFaults {
        &self.faults
    }

    /// Injection counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }

    /// Operations performed so far.
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::Relaxed)
    }

    /// Manually partitions this transport from `endpoint` (black-holed
    /// until healed).
    pub fn partition(&self, endpoint: &str) {
        self.faults.partition(self.local.clone(), endpoint);
    }

    /// Heals a manual partition to `endpoint`.
    pub fn heal(&self, endpoint: &str) {
        self.faults.heal(&self.local, endpoint);
    }

    /// Heals scheduled partitions whose lease expired at `op`.
    fn heal_expired(&self, op: u64) {
        let mut scheduled = self.scheduled.lock();
        if scheduled.is_empty() {
            return;
        }
        scheduled.retain(|p| {
            if op >= p.heal_at_op {
                self.faults.heal(&self.local, &p.endpoint);
                self.stats.partitions_healed.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        });
    }

    /// Corrupts one byte of `envelope`'s encoding at a schedule-chosen
    /// offset. `Ok` when the mutation still decodes (garbage envelope to
    /// deliver); `Err` when it broke framing (stream treated as killed).
    fn corrupt(&self, envelope: &RelayEnvelope, at: u64) -> Result<RelayEnvelope, RelayError> {
        let mut bytes = envelope.encode_to_vec();
        if bytes.is_empty() {
            bytes.push(0);
        }
        let pos = (at % bytes.len() as u64) as usize;
        if let Some(byte) = bytes.get_mut(pos) {
            *byte ^= 1u8 << (at % 8);
        }
        self.stats.corrupted.fetch_add(1, Ordering::Relaxed);
        RelayEnvelope::decode_from_slice(&bytes).map_err(|e| {
            RelayError::TransportFailed(format!("chaos: corrupted frame killed stream: {e}"))
        })
    }
}

impl RelayTransport for ChaosTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let op = self.op.fetch_add(1, Ordering::Relaxed);
        self.heal_expired(op);
        let decision = self.schedule.decision(op);
        // One "chaos.fault" span per operation that injects anything,
        // joined to the active trace (or, on a bare transport with no
        // installed context, to the envelope's wire trace) so injected
        // faults appear inside the span tree of the query they disturbed.
        let faulty = decision.start_partition
            || !decision.is_quiet()
            || self.faults.is_down(endpoint)
            || self.faults.is_partitioned(&self.local, endpoint);
        let mut obs = faulty.then(|| match TraceContext::current() {
            Some(_) => obs_span::enter("chaos.fault"),
            None => obs_span::enter_remote(
                "chaos.fault",
                &crate::telemetry::context_from_envelope(envelope),
            ),
        });
        if let Some((span, _)) = obs.as_mut() {
            span.event("chaos.fault");
        }
        if faulty {
            // One flight event per disturbed operation. The code packs
            // the decision as a bitset so a dump names the fault mix;
            // (a, b) = (seed, op) lets a reader replay the schedule.
            let code = u16::from(decision.drop)
                | u16::from(decision.delay.is_some()) << 1
                | u16::from(decision.corrupt.is_some()) << 2
                | u16::from(decision.duplicate) << 3
                | u16::from(decision.reorder) << 4
                | u16::from(decision.start_partition) << 5
                | u16::from(
                    self.faults.is_down(endpoint)
                        || self.faults.is_partitioned(&self.local, endpoint),
                ) << 6;
            tdt_obs::flight::record(tdt_obs::FlightKind::Chaos, code, self.schedule.seed(), op);
        }
        if decision.start_partition && !self.faults.is_partitioned(&self.local, endpoint) {
            self.faults.partition(self.local.clone(), endpoint);
            self.scheduled.lock().push(ScheduledPartition {
                endpoint: endpoint.to_string(),
                heal_at_op: op + self.schedule.config().partition_ops,
            });
            self.stats
                .partitions_started
                .fetch_add(1, Ordering::Relaxed);
        }
        if self.faults.is_down(endpoint) || self.faults.is_partitioned(&self.local, endpoint) {
            // A partition is a black hole, not a fast reject: the caller
            // pays its timeout before learning anything.
            let timeout = self.schedule.config().partition_timeout;
            if !timeout.is_zero() {
                std::thread::sleep(timeout);
            }
            self.stats.partitioned_sends.fetch_add(1, Ordering::Relaxed);
            let message = format!("chaos: partitioned from {endpoint} (op {op})");
            if let Some((span, _)) = obs.as_mut() {
                span.event("chaos.partitioned");
                span.fail(&message);
            }
            return Err(RelayError::TransportFailed(message));
        }
        self.faults.apply_latency();
        if decision.drop {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            let message = format!("chaos: dropped request to {endpoint} (op {op})");
            if let Some((span, _)) = obs.as_mut() {
                span.event("chaos.drop");
                span.fail(&message);
            }
            return Err(RelayError::TransportFailed(message));
        }
        if let Some(delay) = decision.delay {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            if let Some((span, _)) = obs.as_mut() {
                span.event("chaos.delay");
            }
            std::thread::sleep(delay);
        }
        if decision.reorder {
            // Holding this request back lets operations issued after it
            // complete first — reordering at the request level.
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            if let Some((span, _)) = obs.as_mut() {
                span.event("chaos.reorder");
            }
            std::thread::sleep(self.schedule.config().reorder_delay);
        }
        let request = match decision.corrupt {
            Some(true) => {
                if let Some((span, _)) = obs.as_mut() {
                    span.event("chaos.corrupt");
                }
                match self.corrupt(envelope, decision.corrupt_at) {
                    Ok(corrupted) => corrupted,
                    Err(e) => {
                        if let Some((span, _)) = obs.as_mut() {
                            span.fail(&e.to_string());
                        }
                        return Err(e);
                    }
                }
            }
            _ => envelope.clone(),
        };
        let reply = self.inner.send(endpoint, &request)?;
        if decision.duplicate {
            // Deliver the request a second time; the duplicate's reply is
            // discarded here and must never reach the caller.
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            if let Some((span, _)) = obs.as_mut() {
                span.event("chaos.duplicate");
            }
            let _ = self.inner.send(endpoint, &request);
        }
        match decision.corrupt {
            Some(false) => {
                if let Some((span, _)) = obs.as_mut() {
                    span.event("chaos.corrupt");
                }
                self.corrupt(&reply, decision.corrupt_at)
            }
            _ => Ok(reply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{EnvelopeHandler, InProcessBus};
    use tdt_wire::messages::EnvelopeKind;

    struct EchoHandler;

    impl EnvelopeHandler for EchoHandler {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                source_relay: "echo".into(),
                dest_network: envelope.dest_network,
                payload: envelope.payload,
                correlation_id: 0,
                trace: Default::default(),
                batch: Vec::new(),
            }
        }
    }

    fn bus_with_echo() -> Arc<InProcessBus> {
        let bus = Arc::new(InProcessBus::new());
        bus.register("echo", Arc::new(EchoHandler));
        bus
    }

    fn request(payload: &[u8]) -> RelayEnvelope {
        RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "test".into(),
            dest_network: "target".into(),
            payload: payload.to_vec(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        }
    }

    #[test]
    fn quiet_config_is_transparent() {
        let chaos = ChaosTransport::new(bus_with_echo(), 1, ChaosConfig::default());
        for i in 0..10 {
            let payload = format!("m{i}").into_bytes();
            let reply = chaos.send("inproc:echo", &request(&payload)).unwrap();
            assert_eq!(reply.payload, payload);
        }
        assert_eq!(chaos.stats().total(), 0);
        assert_eq!(chaos.ops(), 10);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let config = ChaosConfig {
            drop_prob: 0.3,
            delay_prob: 0.2,
            corrupt_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.1,
            partition_prob: 0.05,
            ..ChaosConfig::default()
        };
        let a = FaultSchedule::new(0xfeed, config.clone());
        let b = FaultSchedule::new(0xfeed, config.clone());
        let c = FaultSchedule::new(0xbeef, config);
        let decisions_a: Vec<_> = (0..512).map(|op| a.decision(op)).collect();
        let decisions_b: Vec<_> = (0..512).map(|op| b.decision(op)).collect();
        assert_eq!(decisions_a, decisions_b, "same seed must replay exactly");
        let decisions_c: Vec<_> = (0..512).map(|op| c.decision(op)).collect();
        assert_ne!(decisions_a, decisions_c, "different seeds must diverge");
        // And the probabilities actually bite.
        assert!(decisions_a.iter().any(|d| d.drop));
        assert!(decisions_a.iter().any(|d| d.corrupt.is_some()));
        assert!(decisions_a.iter().any(|d| !d.is_quiet()));
        assert!(decisions_a.iter().any(|d| d.is_quiet()));
    }

    #[test]
    fn always_drop_always_fails() {
        let chaos = ChaosTransport::new(
            bus_with_echo(),
            7,
            ChaosConfig {
                drop_prob: 1.0,
                ..ChaosConfig::default()
            },
        );
        for _ in 0..5 {
            let err = chaos.send("inproc:echo", &request(b"x")).unwrap_err();
            assert!(matches!(err, RelayError::TransportFailed(m) if m.contains("dropped")));
        }
        assert_eq!(chaos.stats().dropped(), 5);
    }

    #[test]
    fn corruption_never_yields_clean_reply() {
        // With corruption certain, the caller either gets a transport
        // error (frame killed) or an envelope whose bytes differ from the
        // honest reply — never a silently clean exchange.
        let chaos = ChaosTransport::new(
            bus_with_echo(),
            99,
            ChaosConfig {
                corrupt_prob: 1.0,
                ..ChaosConfig::default()
            },
        );
        let honest = RelayEnvelope {
            kind: EnvelopeKind::QueryResponse,
            source_relay: "echo".into(),
            dest_network: "target".into(),
            payload: b"payload".to_vec(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let mut corrupt_seen = 0;
        for i in 0..32 {
            let payload = b"payload".to_vec();
            match chaos.send("inproc:echo", &request(&payload)) {
                Ok(reply) => {
                    // Request-direction corruption may mutate fields the
                    // echo ignores; reply-direction corruption must show.
                    if reply.encode_to_vec() != honest.encode_to_vec() {
                        corrupt_seen += 1;
                    }
                }
                Err(RelayError::TransportFailed(m)) => {
                    assert!(m.contains("corrupt"), "unexpected failure {m} at op {i}");
                    corrupt_seen += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(chaos.stats().corrupted(), 32);
        assert!(corrupt_seen > 0, "corruption never observable");
    }

    #[test]
    fn duplicates_are_delivered_but_discarded() {
        use std::sync::atomic::AtomicU64;
        struct CountingHandler {
            calls: AtomicU64,
        }
        impl EnvelopeHandler for CountingHandler {
            fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
                self.calls.fetch_add(1, Ordering::Relaxed);
                EchoHandler.handle(envelope)
            }
        }
        let bus = Arc::new(InProcessBus::new());
        let handler = Arc::new(CountingHandler {
            calls: AtomicU64::new(0),
        });
        bus.register("echo", Arc::clone(&handler) as Arc<dyn EnvelopeHandler>);
        let chaos = ChaosTransport::new(
            bus,
            3,
            ChaosConfig {
                duplicate_prob: 1.0,
                ..ChaosConfig::default()
            },
        );
        for _ in 0..4 {
            let reply = chaos.send("inproc:echo", &request(b"dup")).unwrap();
            assert_eq!(reply.payload, b"dup");
        }
        // Each send reached the handler twice, yet the caller saw exactly
        // one reply per call.
        assert_eq!(handler.calls.load(Ordering::Relaxed), 8);
        assert_eq!(chaos.stats().duplicated(), 4);
    }

    #[test]
    fn manual_partition_black_holes_then_heals() {
        let chaos = ChaosTransport::new(
            bus_with_echo(),
            5,
            ChaosConfig {
                partition_timeout: Duration::from_millis(10),
                ..ChaosConfig::default()
            },
        )
        .with_local_name("swt-relay");
        chaos.partition("inproc:echo");
        let start = std::time::Instant::now();
        let err = chaos.send("inproc:echo", &request(b"x")).unwrap_err();
        assert!(matches!(err, RelayError::TransportFailed(m) if m.contains("partition")));
        assert!(start.elapsed() >= Duration::from_millis(10), "must block");
        chaos.heal("inproc:echo");
        assert!(chaos.send("inproc:echo", &request(b"x")).is_ok());
        assert_eq!(chaos.stats().partitioned_sends(), 1);
    }

    #[test]
    fn scheduled_partition_auto_heals() {
        let chaos = ChaosTransport::new(
            bus_with_echo(),
            11,
            ChaosConfig {
                partition_prob: 1.0, // first op starts a partition
                partition_ops: 3,
                partition_timeout: Duration::ZERO,
                ..ChaosConfig::default()
            },
        );
        // Op 0 starts the partition and black-holes. The next sends land
        // inside it; once the lease expires the pair heals (and, with
        // partition_prob 1.0, a new partition immediately starts).
        assert!(chaos.send("inproc:echo", &request(b"a")).is_err());
        assert!(chaos.send("inproc:echo", &request(b"b")).is_err());
        assert_eq!(chaos.stats().partitions_started(), 1);
        assert!(chaos.stats().partitioned_sends() >= 2);
        // Walk past the lease: the heal fires even under constant re-partition.
        for _ in 0..4 {
            let _ = chaos.send("inproc:echo", &request(b"c"));
        }
        assert!(chaos.stats().partitions_healed() >= 1);
    }

    #[test]
    fn shared_faults_down_and_latency() {
        let faults = SharedFaults::new();
        let chaos = ChaosTransport::new(
            bus_with_echo(),
            2,
            ChaosConfig {
                partition_timeout: Duration::ZERO,
                ..ChaosConfig::default()
            },
        )
        .with_faults(faults.clone());
        faults.take_down("inproc:echo");
        assert!(chaos.send("inproc:echo", &request(b"x")).is_err());
        faults.restore("inproc:echo");
        assert!(chaos.send("inproc:echo", &request(b"x")).is_ok());
        assert_eq!(faults.down_count(), 0);
        faults.set_latency(Duration::from_millis(5));
        let start = std::time::Instant::now();
        assert!(chaos.send("inproc:echo", &request(b"x")).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(5));
        faults.clear();
        assert!(faults.latency().is_zero());
    }

    #[test]
    fn shared_faults_partition_pairs_are_directional() {
        let faults = SharedFaults::new();
        faults.partition("a", "b");
        assert!(faults.is_partitioned("a", "b"));
        assert!(!faults.is_partitioned("b", "a"));
        assert_eq!(faults.partition_count(), 1);
        faults.heal("a", "b");
        assert!(!faults.is_partitioned("a", "b"));
    }

    #[test]
    fn splitmix_and_unit_are_stable() {
        let mut rng = SplitMix64::new(42);
        let a = rng.next_u64();
        let mut rng2 = SplitMix64::new(42);
        assert_eq!(a, rng2.next_u64());
        for op in 0..1000 {
            let u = unit_f64(mix64(42, op, 1));
            assert!((0.0..1.0).contains(&u));
        }
        assert_ne!(mix64(1, 2, 3), mix64(1, 2, 4));
        assert_ne!(mix64(1, 2, 3), mix64(2, 2, 3));
    }
}
