#![warn(missing_docs)]

//! The relay service: trusted-data-transfer plumbing between networks.
//!
//! "Deployed within, and acting on behalf of, each network is a relay
//! service ... The relay service serves requests for authentic data from
//! applications by fetching the data along with verifiable proofs from
//! remote networks" (paper §3.2). The relay operates at the technical,
//! syntactic, and semantic layers; it is *untrusted*: data and proofs are
//! end-to-end protected between source peers and the requesting client.
//!
//! * [`service`] — the relay itself: query forwarding on the destination
//!   side, driver dispatch on the source side.
//! * [`driver`] — the pluggable [`driver::NetworkDriver`] abstraction that
//!   translates the network-neutral protocol into ledger-specific calls
//!   (the Fabric driver lives in the `interop` crate).
//! * [`discovery`] — pluggable relay discovery: a static map and the
//!   paper's local file-based registry.
//! * [`transport`] — relay-to-relay transports: an in-process bus for
//!   deterministic tests and a length-prefixed TCP transport.
//! * [`ratelimit`] — token-bucket DoS protection (paper §5, availability).
//! * [`admission`] — deadline-aware admission control: fast-rejects
//!   requests whose deadline budget cannot plausibly be met at the
//!   current queue depth, so overload degrades into cheap sheds instead
//!   of queue collapse.
//! * [`batch`] — client-side envelope batching (size + linger): many
//!   queries ride one frame, amortizing framing and syscalls.
//! * [`redundancy`] — redundant relay groups with health-weighted,
//!   breaker-aware selection, hedged requests, and deadline budgets
//!   (paper §5).
//! * [`retry`] — bounded exponential backoff with jitter for transient
//!   relay-to-relay faults, optionally breaker- and deadline-aware.
//! * [`breaker`] — per-endpoint three-state circuit breaker that turns
//!   repeated transport failures into fast local rejects.
//! * [`chaos`] — deterministic, seed-replayable fault injection at the
//!   transport layer (drops, delays, corruption, duplication, reorder,
//!   partitions) for chaos testing the above.
//! * [`telemetry`] — observability glue: trace-context propagation on the
//!   relay envelope and scrape-time bridges that export relay, pool,
//!   breaker and group counters through one unified metrics registry.

pub mod admission;
pub mod batch;
pub mod breaker;
pub mod chaos;
pub mod discovery;
pub mod driver;
pub mod error;
pub mod events;
pub mod ratelimit;
pub mod redundancy;
pub mod retry;
pub mod service;
pub mod telemetry;
pub mod transport;

pub use error::RelayError;
