//! Client-side envelope batching: many queries per frame.
//!
//! At high offered rates the per-frame cost — length-prefix framing, a
//! syscall pair, and the server's dispatch bookkeeping — dominates the
//! per-query cost. [`BatchingTransport`] wraps any [`RelayTransport`]
//! and coalesces concurrent `QueryRequest` sends to the same endpoint
//! into one combined frame, using the group-commit pattern: the first
//! caller to open a batch (the *leader*) waits up to the linger budget
//! for followers; whoever fills the batch to `max_batch` flushes it
//! immediately. Each item in the combined frame is a complete encoded
//! [`RelayEnvelope`], and the server replies with a positionally
//! matching batch of reply frames (see
//! [`crate::service::RelayService`]'s batch expansion), so items
//! succeed and fail independently.
//!
//! The batch field is zero-elided on the wire: an unbatched send and a
//! legacy peer's frame stay byte-identical (see
//! [`tdt_wire::messages::RelayEnvelope::batch`]).

use crate::error::RelayError;
use crate::service::OVERLOADED_PREFIX;
use crate::transport::RelayTransport;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdt_wire::codec::Message;
use tdt_wire::messages::{EnvelopeKind, RelayEnvelope};

/// Tuning knobs for [`BatchingTransport`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Flush as soon as this many items have accumulated for one
    /// endpoint. A value of 1 (or 0) disables batching entirely.
    pub max_batch: usize,
    /// How long the batch leader waits for followers before flushing a
    /// partial batch. Bounds the latency cost of batching: a lone
    /// request is delayed by at most this much.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            linger: Duration::from_millis(1),
        }
    }
}

/// Counters exposed by [`BatchingTransport::stats`].
#[derive(Debug, Default)]
pub struct BatchStats {
    frames: AtomicU64,
    items: AtomicU64,
    full_flushes: AtomicU64,
    linger_flushes: AtomicU64,
    pass_through: AtomicU64,
}

impl BatchStats {
    /// Frames flushed through the batching path (including batches of
    /// one that were forwarded unbatched).
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Queries carried by those frames.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Flushes triggered by a full batch.
    pub fn full_flushes(&self) -> u64 {
        self.full_flushes.load(Ordering::Relaxed)
    }

    /// Flushes triggered by the leader's linger expiring.
    pub fn linger_flushes(&self) -> u64 {
        self.linger_flushes.load(Ordering::Relaxed)
    }

    /// Envelopes sent directly because they were not batchable
    /// (non-query kinds, or batching disabled).
    pub fn pass_through(&self) -> u64 {
        self.pass_through.load(Ordering::Relaxed)
    }
}

type Outcome = Result<RelayEnvelope, RelayError>;

struct PendingItem {
    envelope: RelayEnvelope,
    reply: Sender<Outcome>,
}

enum Role {
    /// This caller filled the batch and must flush it now.
    Flush(Vec<PendingItem>),
    /// This caller opened the batch and owns the linger timer.
    Leader,
    /// Someone else will flush; just wait for the reply.
    Follower,
}

/// A [`RelayTransport`] decorator that coalesces concurrent query sends
/// per endpoint into combined frames (size + linger thresholds).
pub struct BatchingTransport {
    inner: Arc<dyn RelayTransport>,
    config: BatchConfig,
    pending: Mutex<HashMap<String, Vec<PendingItem>>>,
    stats: Arc<BatchStats>,
}

impl BatchingTransport {
    /// Wraps `inner` with the given batching thresholds.
    pub fn new(inner: Arc<dyn RelayTransport>, config: BatchConfig) -> Self {
        BatchingTransport {
            inner,
            config,
            pending: Mutex::new(HashMap::new()),
            stats: Arc::new(BatchStats::default()),
        }
    }

    /// Batching counters, shareable with a metrics bridge.
    pub fn stats(&self) -> Arc<BatchStats> {
        Arc::clone(&self.stats)
    }

    /// Sends one flushed batch and distributes per-item outcomes to
    /// every waiter. Every item's channel receives exactly one outcome,
    /// success or error — a waiter can never be left hanging.
    fn flush(&self, endpoint: &str, items: Vec<PendingItem>) {
        if items.is_empty() {
            return;
        }
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        self.stats
            .items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        // A batch of one gains nothing from the combined encoding: send
        // the original envelope so the frame stays byte-identical to an
        // unbatched (legacy-compatible) send.
        if items.len() == 1 {
            for item in items {
                let outcome = self.inner.send(endpoint, &item.envelope);
                item.reply.send(outcome).ok();
            }
            return;
        }
        let Some(first) = items.first().map(|i| &i.envelope) else {
            return;
        };
        let combined = RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: first.source_relay.clone(),
            dest_network: first.dest_network.clone(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: first.trace,
            batch: items.iter().map(|i| i.envelope.encode_to_vec()).collect(),
        };
        match self.inner.send(endpoint, &combined) {
            Ok(reply) if reply.batch.len() == items.len() => {
                for (item, frame) in items.into_iter().zip(reply.batch) {
                    let outcome =
                        RelayEnvelope::decode_from_slice(&frame).map_err(RelayError::from);
                    item.reply.send(outcome).ok();
                }
            }
            Ok(reply) if reply.kind == EnvelopeKind::Error => {
                // The whole frame was rejected before expansion (e.g.
                // the admission gate shed it, or a legacy peer choked
                // on the empty payload): every item shares the outcome.
                let message = String::from_utf8_lossy(&reply.payload).into_owned();
                let error = match message.strip_prefix(OVERLOADED_PREFIX) {
                    Some(detail) => RelayError::Overloaded(detail.to_string()),
                    None => RelayError::Remote(message),
                };
                for item in items {
                    item.reply.send(Err(error.clone())).ok();
                }
            }
            Ok(reply) => {
                let error = RelayError::TransportFailed(format!(
                    "batched frame of {} answered with {} reply items",
                    items.len(),
                    reply.batch.len()
                ));
                for item in items {
                    item.reply.send(Err(error.clone())).ok();
                }
            }
            Err(error) => {
                for item in items {
                    item.reply.send(Err(error.clone())).ok();
                }
            }
        }
    }
}

impl RelayTransport for BatchingTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        // Only queries batch; control traffic (pings, subscriptions,
        // event pushes) and pre-batched frames go straight through.
        if envelope.kind != EnvelopeKind::QueryRequest
            || envelope.is_batch()
            || self.config.max_batch <= 1
        {
            self.stats.pass_through.fetch_add(1, Ordering::Relaxed);
            return self.inner.send(endpoint, envelope);
        }
        let (tx, rx) = bounded(1);
        let role = {
            let mut pending = self.pending.lock();
            let items = pending.entry(endpoint.to_string()).or_default();
            items.push(PendingItem {
                envelope: envelope.clone(),
                reply: tx,
            });
            if items.len() >= self.config.max_batch {
                self.stats.full_flushes.fetch_add(1, Ordering::Relaxed);
                Role::Flush(std::mem::take(items))
            } else if items.len() == 1 {
                Role::Leader
            } else {
                Role::Follower
            }
        };
        match role {
            Role::Flush(items) => self.flush(endpoint, items),
            Role::Leader => match rx.recv_timeout(self.config.linger) {
                Ok(outcome) => return outcome,
                Err(RecvTimeoutError::Timeout) => {
                    // Linger expired: flush whatever accumulated. The
                    // entry may already have been taken (and possibly
                    // restarted by a newer generation) by a concurrent
                    // filler — flushing the newer items early is
                    // harmless, and our own outcome arrives on `rx`.
                    let items = {
                        let mut pending = self.pending.lock();
                        pending
                            .get_mut(endpoint)
                            .map(std::mem::take)
                            .unwrap_or_default()
                    };
                    if !items.is_empty() {
                        self.stats.linger_flushes.fetch_add(1, Ordering::Relaxed);
                    }
                    self.flush(endpoint, items);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RelayError::TransportFailed(
                        "batch flusher dropped the reply channel".to_string(),
                    ));
                }
            },
            Role::Follower => {}
        }
        // Every flushed item is answered exactly once; block until ours
        // arrives (the flush carrying it may still be on the wire).
        rx.recv().unwrap_or_else(|_| {
            Err(RelayError::TransportFailed(
                "batch flusher dropped the reply channel".to_string(),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::EnvelopeHandler;
    use std::sync::atomic::AtomicU64;

    /// Echoes each item of a batch (or a lone envelope) and counts the
    /// frames it actually receives.
    struct CountingEchoServer {
        frames: AtomicU64,
        batched_frames: AtomicU64,
    }

    impl CountingEchoServer {
        fn new() -> Self {
            CountingEchoServer {
                frames: AtomicU64::new(0),
                batched_frames: AtomicU64::new(0),
            }
        }
    }

    impl RelayTransport for CountingEchoServer {
        fn send(&self, _endpoint: &str, envelope: &RelayEnvelope) -> Outcome {
            self.frames.fetch_add(1, Ordering::Relaxed);
            if envelope.is_batch() {
                self.batched_frames.fetch_add(1, Ordering::Relaxed);
                let replies = envelope
                    .batch
                    .iter()
                    .map(|item| {
                        let sub = RelayEnvelope::decode_from_slice(item)?;
                        Ok(RelayEnvelope {
                            kind: EnvelopeKind::QueryResponse,
                            payload: sub.payload,
                            ..Default::default()
                        }
                        .encode_to_vec())
                    })
                    .collect::<Result<Vec<_>, tdt_wire::error::WireError>>()?;
                return Ok(RelayEnvelope::response_batch("srv", "net", replies));
            }
            Ok(RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                payload: envelope.payload.clone(),
                ..Default::default()
            })
        }
    }

    fn query_envelope(i: usize) -> RelayEnvelope {
        RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "client".into(),
            dest_network: "net".into(),
            payload: format!("q{i}").into_bytes(),
            ..Default::default()
        }
    }

    #[test]
    fn full_batch_flushes_in_one_frame_with_positional_replies() {
        let server = Arc::new(CountingEchoServer::new());
        let transport = Arc::new(BatchingTransport::new(
            Arc::clone(&server) as Arc<dyn RelayTransport>,
            BatchConfig {
                max_batch: 4,
                linger: Duration::from_secs(5),
            },
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let transport = Arc::clone(&transport);
                std::thread::spawn(move || {
                    let reply = transport.send("ep", &query_envelope(i)).unwrap();
                    (i, reply)
                })
            })
            .collect();
        for handle in handles {
            let (i, reply) = handle.join().unwrap();
            assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
            assert_eq!(reply.payload, format!("q{i}").into_bytes());
        }
        // Four queries, one wire frame: that is the whole point.
        assert_eq!(server.frames.load(Ordering::Relaxed), 1);
        assert_eq!(server.batched_frames.load(Ordering::Relaxed), 1);
        assert_eq!(transport.stats().full_flushes(), 1);
        assert_eq!(transport.stats().items(), 4);
    }

    #[test]
    fn lone_request_flushes_unbatched_after_linger() {
        let server = Arc::new(CountingEchoServer::new());
        let transport = BatchingTransport::new(
            Arc::clone(&server) as Arc<dyn RelayTransport>,
            BatchConfig {
                max_batch: 16,
                linger: Duration::from_millis(1),
            },
        );
        let reply = transport.send("ep", &query_envelope(0)).unwrap();
        assert_eq!(reply.payload, b"q0");
        // The single item went out as a plain frame, not a batch-of-one.
        assert_eq!(server.frames.load(Ordering::Relaxed), 1);
        assert_eq!(server.batched_frames.load(Ordering::Relaxed), 0);
        assert_eq!(transport.stats().linger_flushes(), 1);
    }

    #[test]
    fn non_query_kinds_pass_through_unbatched() {
        let server = Arc::new(CountingEchoServer::new());
        let transport = BatchingTransport::new(
            Arc::clone(&server) as Arc<dyn RelayTransport>,
            BatchConfig::default(),
        );
        let ping = RelayEnvelope {
            kind: EnvelopeKind::Ping,
            ..Default::default()
        };
        transport.send("ep", &ping).unwrap();
        assert_eq!(transport.stats().pass_through(), 1);
        assert_eq!(transport.stats().frames(), 0);
    }

    #[test]
    fn transport_error_reaches_every_waiter() {
        struct FailingServer;
        impl RelayTransport for FailingServer {
            fn send(&self, _endpoint: &str, _envelope: &RelayEnvelope) -> Outcome {
                Err(RelayError::TransportFailed("wire cut".into()))
            }
        }
        let transport = Arc::new(BatchingTransport::new(
            Arc::new(FailingServer) as Arc<dyn RelayTransport>,
            BatchConfig {
                max_batch: 2,
                linger: Duration::from_secs(5),
            },
        ));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let transport = Arc::clone(&transport);
                std::thread::spawn(move || transport.send("ep", &query_envelope(i)))
            })
            .collect();
        for handle in handles {
            assert!(matches!(
                handle.join().unwrap(),
                Err(RelayError::TransportFailed(_))
            ));
        }
    }

    #[test]
    fn whole_frame_shed_maps_to_overloaded_for_every_waiter() {
        struct SheddingServer;
        impl RelayTransport for SheddingServer {
            fn send(&self, _endpoint: &str, envelope: &RelayEnvelope) -> Outcome {
                Ok(RelayEnvelope::error(
                    "srv",
                    envelope.dest_network.clone(),
                    format!("{OVERLOADED_PREFIX}queue full"),
                ))
            }
        }
        let transport = Arc::new(BatchingTransport::new(
            Arc::new(SheddingServer) as Arc<dyn RelayTransport>,
            BatchConfig {
                max_batch: 2,
                linger: Duration::from_secs(5),
            },
        ));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let transport = Arc::clone(&transport);
                std::thread::spawn(move || transport.send("ep", &query_envelope(i)))
            })
            .collect();
        for handle in handles {
            assert!(matches!(
                handle.join().unwrap(),
                Err(RelayError::Overloaded(_))
            ));
        }
    }

    #[test]
    fn end_to_end_against_a_real_relay_over_the_bus() {
        use crate::discovery::{DiscoveryService, StaticRegistry};
        use crate::driver::EchoDriver;
        use crate::service::RelayService;
        use crate::transport::InProcessBus;
        use tdt_wire::messages::{NetworkAddress, Query, QueryResponse};

        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        let stl = Arc::new(RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        stl.register_driver(Arc::new(EchoDriver::new("stl")));
        bus.register("stl-relay", Arc::clone(&stl) as Arc<dyn EnvelopeHandler>);
        let batching = Arc::new(BatchingTransport::new(
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
            BatchConfig {
                max_batch: 4,
                linger: Duration::from_secs(5),
            },
        ));
        let swt = Arc::new(RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            batching as Arc<dyn RelayTransport>,
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let swt = Arc::clone(&swt);
                std::thread::spawn(move || {
                    let payload = format!("payload-{i}").into_bytes();
                    let q = Query {
                        request_id: format!("r{i}"),
                        address: NetworkAddress::new("stl", "l", "c", "f")
                            .with_arg(payload.clone()),
                        ..Default::default()
                    };
                    let response: QueryResponse = swt.relay_query(&q).unwrap();
                    assert_eq!(response.result, payload);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // All four queries were served by the source relay.
        assert_eq!(stl.stats().served.load(Ordering::Relaxed), 4);
    }
}
