//! Pluggable relay discovery.
//!
//! The relay "designed to support pluggable discovery services, performs a
//! lookup using such a service for the address of the destination relay
//! based on the remote network's name" (paper §3.3, Step 2). The paper's
//! proof-of-concept plugged "a local file-based registry" into the SWT
//! relay; both that and a static in-memory registry are provided.

use crate::error::RelayError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Resolves a network name to a relay endpoint string.
///
/// Endpoint strings are transport-specific, e.g. `inproc:stl-relay-0` for
/// the in-process bus or `tcp:127.0.0.1:9040` for the TCP transport.
pub trait DiscoveryService: Send + Sync {
    /// Looks up the relay endpoint for `network_id`.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::DiscoveryFailed`] when the network is unknown.
    fn lookup(&self, network_id: &str) -> Result<String, RelayError>;
}

/// A static in-memory registry.
#[derive(Debug, Default)]
pub struct StaticRegistry {
    entries: RwLock<HashMap<String, String>>,
}

impl StaticRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the endpoint for a network.
    pub fn register(&self, network_id: impl Into<String>, endpoint: impl Into<String>) {
        self.entries
            .write()
            .insert(network_id.into(), endpoint.into());
    }

    /// Removes a network's entry.
    pub fn deregister(&self, network_id: &str) {
        self.entries.write().remove(network_id);
    }

    /// Number of registered networks.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no network is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

impl DiscoveryService for StaticRegistry {
    fn lookup(&self, network_id: &str) -> Result<String, RelayError> {
        self.entries.read().get(network_id).cloned().ok_or_else(|| {
            RelayError::DiscoveryFailed(format!("network {network_id:?} not registered"))
        })
    }
}

/// The paper's local file-based registry: a text file of
/// `network_id=endpoint` lines, re-read on every lookup so out-of-band
/// updates take effect immediately.
#[derive(Debug)]
pub struct FileRegistry {
    path: PathBuf,
}

impl FileRegistry {
    /// Creates a registry backed by `path`.
    pub fn new(path: impl AsRef<Path>) -> Self {
        FileRegistry {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Writes a full registry file (helper for setup code and tests).
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::DiscoveryFailed`] when the file can't be written.
    pub fn write_entries<'a, I>(path: impl AsRef<Path>, entries: I) -> Result<(), RelayError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut content = String::new();
        for (network, endpoint) in entries {
            content.push_str(network);
            content.push('=');
            content.push_str(endpoint);
            content.push('\n');
        }
        std::fs::write(path, content)
            .map_err(|e| RelayError::DiscoveryFailed(format!("cannot write registry: {e}")))
    }
}

impl DiscoveryService for FileRegistry {
    fn lookup(&self, network_id: &str) -> Result<String, RelayError> {
        let content = std::fs::read_to_string(&self.path).map_err(|e| {
            RelayError::DiscoveryFailed(format!(
                "cannot read registry {}: {e}",
                self.path.display()
            ))
        })?;
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((network, endpoint)) = line.split_once('=') {
                if network.trim() == network_id {
                    return Ok(endpoint.trim().to_string());
                }
            }
        }
        Err(RelayError::DiscoveryFailed(format!(
            "network {network_id:?} not in registry {}",
            self.path.display()
        )))
    }
}

/// Chains several discovery services, trying each in order.
#[derive(Default)]
pub struct ChainedDiscovery {
    services: Vec<Box<dyn DiscoveryService>>,
}

impl std::fmt::Debug for ChainedDiscovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainedDiscovery")
            .field("services", &self.services.len())
            .finish()
    }
}

impl ChainedDiscovery {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a service to the chain (builder style).
    pub fn with(mut self, service: Box<dyn DiscoveryService>) -> Self {
        self.services.push(service);
        self
    }
}

impl DiscoveryService for ChainedDiscovery {
    fn lookup(&self, network_id: &str) -> Result<String, RelayError> {
        for service in &self.services {
            if let Ok(endpoint) = service.lookup(network_id) {
                return Ok(endpoint);
            }
        }
        Err(RelayError::DiscoveryFailed(format!(
            "network {network_id:?} unknown to all {} discovery services",
            self.services.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_registry_roundtrip() {
        let reg = StaticRegistry::new();
        assert!(reg.is_empty());
        reg.register("stl", "inproc:stl-relay");
        assert_eq!(reg.lookup("stl").unwrap(), "inproc:stl-relay");
        assert_eq!(reg.len(), 1);
        reg.deregister("stl");
        assert!(reg.lookup("stl").is_err());
    }

    #[test]
    fn static_registry_replaces() {
        let reg = StaticRegistry::new();
        reg.register("stl", "a");
        reg.register("stl", "b");
        assert_eq!(reg.lookup("stl").unwrap(), "b");
    }

    #[test]
    fn file_registry_lookup() {
        let dir = std::env::temp_dir().join(format!("tdt-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.txt");
        FileRegistry::write_entries(
            &path,
            [("stl", "tcp:127.0.0.1:9040"), ("swt", "inproc:swt-relay")],
        )
        .unwrap();
        let reg = FileRegistry::new(&path);
        assert_eq!(reg.lookup("stl").unwrap(), "tcp:127.0.0.1:9040");
        assert_eq!(reg.lookup("swt").unwrap(), "inproc:swt-relay");
        assert!(reg.lookup("other").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_registry_tolerates_comments_and_blanks() {
        let dir = std::env::temp_dir().join(format!("tdt-reg2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.txt");
        std::fs::write(&path, "# comment\n\n  stl = tcp:1.2.3.4:9 \n").unwrap();
        let reg = FileRegistry::new(&path);
        assert_eq!(reg.lookup("stl").unwrap(), "tcp:1.2.3.4:9");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_registry_missing_file() {
        let reg = FileRegistry::new("/nonexistent/registry.txt");
        assert!(matches!(
            reg.lookup("stl"),
            Err(RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    fn file_registry_reflects_updates() {
        let dir = std::env::temp_dir().join(format!("tdt-reg3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.txt");
        FileRegistry::write_entries(&path, [("stl", "old")]).unwrap();
        let reg = FileRegistry::new(&path);
        assert_eq!(reg.lookup("stl").unwrap(), "old");
        FileRegistry::write_entries(&path, [("stl", "new")]).unwrap();
        assert_eq!(reg.lookup("stl").unwrap(), "new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chained_discovery_falls_through() {
        let a = StaticRegistry::new();
        a.register("stl", "from-a");
        let b = StaticRegistry::new();
        b.register("swt", "from-b");
        let chain = ChainedDiscovery::new().with(Box::new(a)).with(Box::new(b));
        assert_eq!(chain.lookup("stl").unwrap(), "from-a");
        assert_eq!(chain.lookup("swt").unwrap(), "from-b");
        assert!(chain.lookup("other").is_err());
    }
}
