//! Redundant relay groups with degradation-aware member selection.
//!
//! "The effects of DoS attacks can be mitigated by adding redundant
//! relays" (paper §5). A [`RelayGroup`] fronts several relay instances of
//! the same network and fails over between them. Selection is not blind
//! round-robin: each member carries an EWMA health score, members whose
//! circuit breaker is open are skipped without touching the network, and
//! an optional latency-threshold *hedge* races the next-healthiest member
//! when the primary is slow. An optional end-to-end deadline bounds the
//! whole attempt sequence — failover and hedging never exceed the
//! caller's budget.

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::error::RelayError;
use crate::service::RelayService;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_obs::span::{self as obs_span, RecordErr, Span};
use tdt_obs::{ContextGuard, TraceContext};
use tdt_wire::messages::{Query, QueryResponse};

/// Tunables for a [`RelayGroup`].
#[derive(Debug, Clone, Default)]
pub struct GroupConfig {
    /// When the in-flight attempt has not answered after this long,
    /// launch a concurrent hedged attempt against the next candidate.
    /// `None` (the default) keeps attempts strictly sequential.
    pub hedge_after: Option<Duration>,
    /// Default end-to-end deadline for [`RelayGroup::relay_query`]
    /// covering every failover and hedge. `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Thresholds for the group's per-member circuit breaker.
    pub breaker: BreakerConfig,
}

/// EWMA weight: each outcome moves a member's health 10 % of the way
/// toward 1.0 (success) or 0.0 (failure).
const HEALTH_ALPHA: f64 = 0.1;

/// One relay instance plus its rolling health score.
struct Member {
    relay: Arc<RelayService>,
    /// EWMA success rate in `0.0..=1.0`, stored as `f64` bits.
    health: AtomicU64,
}

impl Member {
    fn new(relay: Arc<RelayService>) -> Self {
        Member {
            relay,
            health: AtomicU64::new(1.0f64.to_bits()),
        }
    }

    fn health(&self) -> f64 {
        f64::from_bits(self.health.load(Ordering::Relaxed))
    }

    fn record(&self, success: bool) {
        let target = if success { 1.0 } else { 0.0 };
        let _ = self
            .health
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                let h = f64::from_bits(bits);
                Some((h + HEALTH_ALPHA * (target - h)).to_bits())
            });
    }

    /// Coarse bucket so that members with *equal* health keep their
    /// round-robin rotation order (the sort below is stable), while a
    /// clearly degraded member sinks behind healthy peers.
    fn health_bucket(&self) -> u8 {
        (self.health() * 8.0).clamp(0.0, 8.0) as u8
    }
}

/// A set of interchangeable relays for one network, with health-weighted
/// selection, breaker-aware skip, optional hedging, and deadline budgets.
pub struct RelayGroup {
    members: Vec<Arc<Member>>,
    next: AtomicUsize,
    config: GroupConfig,
    breaker: Arc<CircuitBreaker>,
    hedges: AtomicU64,
    /// Shared with detached hedge worker threads, which outlive the
    /// query call when they lose the race.
    discarded_replies: Arc<AtomicU64>,
    breaker_skips: AtomicU64,
    deadline_failures: AtomicU64,
    degraded_queries: AtomicU64,
}

impl std::fmt::Debug for RelayGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayGroup")
            .field(
                "relays",
                &self
                    .members
                    .iter()
                    .map(|m| m.relay.id())
                    .collect::<Vec<_>>(),
            )
            .field("config", &self.config)
            .finish()
    }
}

impl RelayGroup {
    /// Creates a group from relay instances with default tunables.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::InvalidConfig`] when `relays` is empty.
    pub fn new(relays: Vec<Arc<RelayService>>) -> Result<Self, RelayError> {
        // lint:allow(obs: "constructor, no request in flight to trace")
        Self::with_config(relays, GroupConfig::default())
    }

    /// Creates a group with explicit [`GroupConfig`] tunables.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::InvalidConfig`] when `relays` is empty.
    pub fn with_config(
        relays: Vec<Arc<RelayService>>,
        config: GroupConfig,
    ) -> Result<Self, RelayError> {
        // lint:allow(obs: "constructor, no request in flight to trace")
        if relays.is_empty() {
            return Err(RelayError::InvalidConfig(
                "a relay group needs at least one relay".into(),
            ));
        }
        let breaker = Arc::new(CircuitBreaker::new(config.breaker.clone()));
        Ok(RelayGroup {
            members: relays
                .into_iter()
                .map(|r| Arc::new(Member::new(r)))
                .collect(),
            next: AtomicUsize::new(0),
            config,
            breaker,
            hedges: AtomicU64::new(0),
            discarded_replies: Arc::new(AtomicU64::new(0)),
            breaker_skips: AtomicU64::new(0),
            deadline_failures: AtomicU64::new(0),
            degraded_queries: AtomicU64::new(0),
        })
    }

    /// Number of member relays.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: construction rejects empty groups.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The member relay at `index` (rotation position at construction).
    pub fn relay(&self, index: usize) -> Option<&Arc<RelayService>> {
        self.members.get(index).map(|m| &m.relay)
    }

    /// The EWMA health score of the member at `index` (`1.0` = perfect).
    pub fn member_health(&self, index: usize) -> Option<f64> {
        self.members.get(index).map(|m| m.health())
    }

    /// The group's per-member circuit breaker (keyed by relay id).
    pub fn breaker(&self) -> &Arc<CircuitBreaker> {
        &self.breaker
    }

    /// Number of members currently marked down.
    pub fn down_count(&self) -> usize {
        self.members.iter().filter(|m| m.relay.is_down()).count()
    }

    /// Hedged attempts launched because the primary was slow.
    pub fn hedges(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Replies that arrived after another attempt already won the race
    /// and were therefore discarded (never delivered to the caller).
    pub fn discarded_replies(&self) -> u64 {
        self.discarded_replies.load(Ordering::Relaxed)
    }

    /// Attempts skipped without touching the network because the
    /// member's circuit was open.
    pub fn breaker_skips(&self) -> u64 {
        self.breaker_skips.load(Ordering::Relaxed)
    }

    /// Queries that failed because the deadline budget ran out.
    pub fn deadline_failures(&self) -> u64 {
        self.deadline_failures.load(Ordering::Relaxed)
    }

    /// Queries that ran in degraded mode: every candidate's circuit was
    /// open, so the group forced an attempt anyway rather than fail the
    /// caller on [`RelayError::CircuitOpen`] alone.
    pub fn degraded_queries(&self) -> u64 {
        self.degraded_queries.load(Ordering::Relaxed)
    }

    /// Whether a relay-local error should trigger failover to another
    /// member. Errors the *remote* side decided (protocol, unknown
    /// network/driver) fail identically everywhere and surface
    /// immediately. A [`RelayError::Wire`] decode failure means *this*
    /// member returned a reply that does not parse — a path-integrity
    /// fault another member may not share — so it fails over too.
    fn is_failover(error: &RelayError) -> bool {
        matches!(
            error,
            RelayError::RelayDown(_)
                | RelayError::RateLimited
                | RelayError::TransportFailed(_)
                | RelayError::StaleConnection(_)
                | RelayError::CircuitOpen(_)
                | RelayError::DeadlineExceeded(_)
                | RelayError::Wire(_)
                | RelayError::Overloaded(_)
        )
    }

    /// Candidate order for one query: rotation for fairness, then a
    /// stable sort by health bucket so degraded members are tried last
    /// while equally healthy members preserve round-robin order.
    fn selection_order(&self) -> Vec<usize> {
        let n = self.members.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n.max(1);
        let mut order: Vec<usize> = (0..n).map(|i| (start + i) % n).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(self.members.get(i).map_or(0, |m| m.health_bucket()))
        });
        order
    }

    /// Records one member outcome in both the health EWMA and the
    /// group breaker, attributed to the breaker [`Admission`] the
    /// attempt was launched under (so half-open probe credit goes to
    /// the probe itself, never to a straggler).
    fn record_outcome(
        &self,
        index: usize,
        admission: Admission,
        outcome: &Result<QueryResponse, RelayError>,
    ) {
        let Some(member) = self.members.get(index) else {
            return;
        };
        let id = member.relay.id();
        match outcome {
            Ok(_) => {
                member.record(true);
                self.breaker.record_outcome(id, admission, true);
            }
            // An admission shed is a fast answer from a live member
            // protecting its queue: fail over (and bias selection away
            // via the health EWMA), but do NOT count it against the
            // member's circuit — with hedging, one overloaded member
            // would otherwise land its sheds in its peers' failure
            // windows faster than real traffic could amortize them,
            // tripping circuits on relays that are merely busy.
            Err(RelayError::Overloaded(_)) => {
                member.record(false);
                self.breaker.record_outcome(id, admission, true);
            }
            Err(e) if Self::is_failover(e) => {
                member.record(false);
                self.breaker.record_outcome(id, admission, false);
            }
            // Terminal errors mean the member is alive and answering.
            Err(_) => {
                member.record(true);
                self.breaker.record_outcome(id, admission, true);
            }
        }
    }

    /// Relays a query under the group's configured deadline (if any),
    /// starting from the healthiest candidate in rotation order and
    /// failing over — or hedging, when configured — on relay-local
    /// errors and slowness.
    ///
    /// # Errors
    ///
    /// Returns the last failure when every member relay failed,
    /// [`RelayError::DeadlineExceeded`] when the budget ran out first,
    /// or a terminal error from the first member that produced one.
    pub fn relay_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        // lint:allow(obs: "delegates to relay_query_with_deadline, which records")
        self.relay_query_with_deadline(query, self.config.deadline)
    }

    /// Like [`RelayGroup::relay_query`] with an explicit end-to-end
    /// deadline covering every failover attempt and hedge.
    ///
    /// # Errors
    ///
    /// As [`RelayGroup::relay_query`].
    pub fn relay_query_with_deadline(
        &self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<QueryResponse, RelayError> {
        let (mut span, _obs_guard) = obs_span::enter("group.query");
        let started = Instant::now();
        let order = self.selection_order();
        let result = match self.config.hedge_after {
            None => self.run_sequential(query, &order, started, deadline, &mut span),
            Some(hedge_after) => {
                self.run_hedged(query, &order, started, deadline, hedge_after, &mut span)
            }
        };
        result.record_err(&mut span)
    }

    fn deadline_error(&self, started: Instant, deadline: Duration) -> RelayError {
        self.deadline_failures.fetch_add(1, Ordering::Relaxed);
        RelayError::DeadlineExceeded(format!(
            "relay group budget {deadline:?} spent after {:?}",
            started.elapsed()
        ))
    }

    fn run_sequential(
        &self,
        query: &Query,
        order: &[usize],
        started: Instant,
        deadline: Option<Duration>,
        span: &mut Span,
    ) -> Result<QueryResponse, RelayError> {
        let mut last_err = None;
        let mut skipped = Vec::new();
        for &index in order {
            if let Some(budget) = deadline {
                if started.elapsed() >= budget {
                    return Err(self.deadline_error(started, budget));
                }
            }
            let Some(member) = self.members.get(index) else {
                continue;
            };
            let admission = match self.breaker.try_acquire(member.relay.id()) {
                Ok(admission) => admission,
                Err(open) => {
                    self.breaker_skips.fetch_add(1, Ordering::Relaxed);
                    span.event("breaker.fast_reject");
                    skipped.push(index);
                    last_err.get_or_insert(open);
                    continue;
                }
            };
            let outcome = member.relay.relay_query(query);
            self.record_outcome(index, admission, &outcome);
            match outcome {
                Ok(response) => return Ok(response),
                Err(e) if Self::is_failover(&e) => last_err = Some(e),
                Err(terminal) => return Err(terminal),
            }
        }
        // Degraded mode: every attempt was a breaker skip. Failing the
        // caller on open circuits alone would turn a cooldown window into
        // an outage, so force attempts at the skipped members instead —
        // each doubles as recovery evidence for its breaker.
        if skipped.len() == order.len() {
            self.degraded_queries.fetch_add(1, Ordering::Relaxed);
            span.event("group.degraded");
            for index in skipped {
                if let Some(budget) = deadline {
                    if started.elapsed() >= budget {
                        return Err(self.deadline_error(started, budget));
                    }
                }
                let Some(member) = self.members.get(index) else {
                    continue;
                };
                // Forced attempt: the circuit was open, so there is no
                // admission — the outcome is ordinary window evidence.
                let outcome = member.relay.relay_query(query);
                self.record_outcome(index, Admission::default(), &outcome);
                match outcome {
                    Ok(response) => return Ok(response),
                    Err(e) if Self::is_failover(&e) => last_err = Some(e),
                    Err(terminal) => return Err(terminal),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| RelayError::RelayDown("all relays".into())))
    }

    /// Races member attempts: the first one launched normally, further
    /// ones either on failure (failover) or after `hedge_after` without
    /// an answer (hedge). The first success wins; late replies are
    /// counted in [`RelayGroup::discarded_replies`] and dropped, so a
    /// caller can never observe two replies for one query.
    fn run_hedged(
        &self,
        query: &Query,
        order: &[usize],
        started: Instant,
        deadline: Option<Duration>,
        hedge_after: Duration,
        span: &mut Span,
    ) -> Result<QueryResponse, RelayError> {
        let (tx, rx) =
            crossbeam::channel::unbounded::<(usize, Admission, Result<QueryResponse, RelayError>)>(
            );
        let won = Arc::new(AtomicBool::new(false));
        let mut pending = order
            .iter()
            .copied()
            .collect::<std::collections::VecDeque<_>>();
        // Members skipped on an open circuit, kept for degraded mode:
        // when nothing can be attempted normally, they are re-queued and
        // attempted with the breaker bypassed.
        let mut skipped = std::collections::VecDeque::new();
        let mut outstanding = 0usize;
        let mut last_err = None;
        // The worker threads must join the caller's trace even though the
        // thread-local slot does not cross `thread::spawn`: capture the
        // context here and re-install it inside each worker.
        let trace_ctx = TraceContext::current();
        let launch = |hedged: bool,
                      force: bool,
                      pending: &mut std::collections::VecDeque<usize>,
                      skipped: &mut std::collections::VecDeque<usize>,
                      outstanding: &mut usize,
                      last_err: &mut Option<RelayError>,
                      span: &mut Span| {
            while let Some(index) = pending.pop_front() {
                let Some(member) = self.members.get(index) else {
                    continue;
                };
                // Forced attempts carry no admission: their outcomes are
                // ordinary window evidence for an open circuit.
                let mut admission = Admission::default();
                if !force {
                    match self.breaker.try_acquire(member.relay.id()) {
                        Ok(a) => admission = a,
                        Err(open) => {
                            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
                            span.event("breaker.fast_reject");
                            skipped.push_back(index);
                            last_err.get_or_insert(open);
                            continue;
                        }
                    }
                }
                if hedged {
                    self.hedges.fetch_add(1, Ordering::Relaxed);
                    span.event("hedge.fired");
                    tdt_obs::flight::record(
                        tdt_obs::FlightKind::Hedge,
                        0,
                        index as u64,
                        started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    );
                }
                let member = Arc::clone(member);
                let query = query.clone();
                let tx = tx.clone();
                let won = Arc::clone(&won);
                let discarded = Arc::clone(&self.discarded_replies);
                // Detached worker: a slow loser finishes in the
                // background; its reply is counted and dropped, never
                // delivered.
                std::thread::spawn(move || {
                    let _trace_guard = match trace_ctx {
                        Some(ctx) => ctx.install(),
                        None => ContextGuard::noop(),
                    };
                    let outcome = member.relay.relay_query(&query);
                    if outcome.is_ok() && won.swap(true, Ordering::SeqCst) {
                        // Another attempt already delivered first. The
                        // loser is marked as discarded in its own span so
                        // the trace shows the duplicate was dropped, not
                        // delivered twice.
                        discarded.fetch_add(1, Ordering::Relaxed);
                        let (mut loser, _loser_guard) = obs_span::enter("hedge.discarded");
                        loser.event("hedge.discarded");
                        return;
                    }
                    let _ = tx.send((index, admission, outcome));
                });
                *outstanding += 1;
                return true;
            }
            false
        };
        launch(
            false,
            false,
            &mut pending,
            &mut skipped,
            &mut outstanding,
            &mut last_err,
            span,
        );
        loop {
            if outstanding == 0 && pending.is_empty() {
                if skipped.is_empty() {
                    return Err(
                        last_err.unwrap_or_else(|| RelayError::RelayDown("all relays".into()))
                    );
                }
                // Degraded mode: nothing in flight and every remaining
                // candidate's circuit is open. Re-queue the skipped
                // members and force an attempt rather than fail the
                // caller on cooldown alone.
                self.degraded_queries.fetch_add(1, Ordering::Relaxed);
                span.event("group.degraded");
                std::mem::swap(&mut pending, &mut skipped);
                launch(
                    false,
                    true,
                    &mut pending,
                    &mut skipped,
                    &mut outstanding,
                    &mut last_err,
                    span,
                );
                continue;
            }
            let remaining = match deadline {
                None => None,
                Some(budget) => match budget.checked_sub(started.elapsed()) {
                    Some(r) => Some(r),
                    None => return Err(self.deadline_error(started, budget)),
                },
            };
            let wait = if pending.is_empty() {
                remaining.unwrap_or(Duration::from_secs(3600))
            } else {
                remaining.map_or(hedge_after, |r| r.min(hedge_after))
            };
            match rx.recv_timeout(wait) {
                Ok((index, admission, outcome)) => {
                    self.record_outcome(index, admission, &outcome);
                    match outcome {
                        Ok(response) => return Ok(response),
                        Err(e) if Self::is_failover(&e) => {
                            outstanding -= 1;
                            last_err = Some(e);
                            launch(
                                false,
                                false,
                                &mut pending,
                                &mut skipped,
                                &mut outstanding,
                                &mut last_err,
                                span,
                            );
                        }
                        Err(terminal) => return Err(terminal),
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if let Some(budget) = deadline {
                        if started.elapsed() >= budget {
                            return Err(self.deadline_error(started, budget));
                        }
                    }
                    // The in-flight attempt is slow: hedge with the next
                    // candidate if one is available. When nothing can be
                    // launched and nothing is in flight, the loop top
                    // handles degraded mode or gives up.
                    launch(
                        true,
                        false,
                        &mut pending,
                        &mut skipped,
                        &mut outstanding,
                        &mut last_err,
                        span,
                    );
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(last_err
                        .unwrap_or_else(|| RelayError::TransportFailed("hedge race lost".into())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{DiscoveryService, StaticRegistry};
    use crate::driver::EchoDriver;
    use crate::ratelimit::RateLimiter;
    use crate::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
    use tdt_wire::messages::NetworkAddress;

    fn setup_with(n: usize, limited: bool, config: GroupConfig) -> (RelayGroup, Arc<RelayService>) {
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        let stl_relay = Arc::new(RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        bus.register(
            "stl-relay",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        );
        let mut relays = Vec::new();
        for i in 0..n {
            let mut relay = RelayService::new(
                format!("swt-relay-{i}"),
                "swt",
                Arc::clone(&registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
            );
            if limited {
                relay = relay.with_rate_limiter(RateLimiter::new(1, 0.0));
            }
            relays.push(Arc::new(relay));
        }
        (RelayGroup::with_config(relays, config).unwrap(), stl_relay)
    }

    fn setup(n: usize, limited: bool) -> (RelayGroup, Arc<RelayService>) {
        setup_with(n, limited, GroupConfig::default())
    }

    fn query() -> Query {
        Query {
            request_id: "r".into(),
            address: NetworkAddress::new("stl", "l", "c", "f").with_arg(b"data".to_vec()),
            ..Default::default()
        }
    }

    #[test]
    fn group_serves_queries() {
        let (group, _stl) = setup(3, false);
        assert_eq!(group.len(), 3);
        let response = group.relay_query(&query()).unwrap();
        assert_eq!(response.result, b"data");
    }

    #[test]
    fn failover_past_down_relays() {
        let (group, _stl) = setup(3, false);
        group.relay(0).unwrap().set_down(true);
        group.relay(1).unwrap().set_down(true);
        assert_eq!(group.down_count(), 2);
        // Should still succeed on the remaining relay, for many requests.
        for _ in 0..5 {
            assert!(group.relay_query(&query()).is_ok());
        }
    }

    #[test]
    fn all_down_fails() {
        let (group, _stl) = setup(2, false);
        for i in 0..group.len() {
            group.relay(i).unwrap().set_down(true);
        }
        assert!(group.relay_query(&query()).is_err());
    }

    #[test]
    fn rate_limited_relays_fail_over() {
        // Each relay allows exactly one request; the group absorbs N.
        let (group, _stl) = setup(3, true);
        for _ in 0..3 {
            assert!(group.relay_query(&query()).is_ok());
        }
        assert!(matches!(
            group.relay_query(&query()),
            Err(RelayError::RateLimited)
        ));
    }

    /// A group whose one upstream source relay sheds *every* request at
    /// the admission gate: burst floor zero and an hour-long seed
    /// service-time estimate make the wait estimate always exceed the
    /// 50 ms deadline budget.
    fn overloaded_upstream_setup(config: GroupConfig) -> (RelayGroup, Arc<RelayService>) {
        use crate::admission::AdmissionConfig;
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        let stl_relay = Arc::new(
            RelayService::new(
                "stl-relay",
                "stl",
                Arc::clone(&registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
            )
            .with_request_deadline(Duration::from_millis(50))
            .with_admission_control(AdmissionConfig {
                burst_floor: 0,
                alpha: 0.2,
                initial_service_time: Duration::from_secs(3600),
                headroom: 1.0,
            }),
        );
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        stl_relay.start_workers(1);
        bus.register(
            "stl-relay",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        );
        let relays = (0..2)
            .map(|i| {
                Arc::new(RelayService::new(
                    format!("swt-relay-{i}"),
                    "swt",
                    Arc::clone(&registry) as Arc<dyn DiscoveryService>,
                    Arc::clone(&bus) as Arc<dyn RelayTransport>,
                ))
            })
            .collect();
        (RelayGroup::with_config(relays, config).unwrap(), stl_relay)
    }

    #[test]
    fn sheds_fail_over_without_tripping_member_breakers() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let config = GroupConfig {
            hedge_after: None,
            deadline: None,
            breaker: BreakerConfig {
                consecutive_failures: 2,
                cooldown: Duration::from_secs(60),
                ..BreakerConfig::default()
            },
        };
        let (group, stl) = overloaded_upstream_setup(config);
        // Far more sheds per member than the trip threshold.
        for _ in 0..10 {
            assert!(matches!(
                group.relay_query(&query()),
                Err(RelayError::Overloaded(_))
            ));
        }
        assert!(stl.stats().admission_shed() >= 10, "upstream must shed");
        // The members answered every time (with a shed): their circuits
        // must stay closed — the overload is upstream, not member death.
        let breaker = group.breaker();
        assert_eq!(breaker.trips(), 0, "sheds must not trip circuits");
        for i in 0..group.len() {
            assert_eq!(
                breaker.state(group.relay(i).unwrap().id()),
                BreakerState::Closed
            );
        }
        stl.stop_workers();
    }

    #[test]
    fn hedged_sheds_do_not_trip_peer_circuits() {
        use crate::breaker::{BreakerConfig, BreakerState};
        // Hedging doubles the shed traffic per query: without the
        // shed-aware outcome recording, each query would land failures
        // in *two* members' windows and trip both circuits within a
        // handful of queries.
        let config = GroupConfig {
            hedge_after: Some(Duration::from_millis(1)),
            deadline: Some(Duration::from_secs(2)),
            breaker: BreakerConfig {
                consecutive_failures: 2,
                cooldown: Duration::from_secs(60),
                ..BreakerConfig::default()
            },
        };
        let (group, stl) = overloaded_upstream_setup(config);
        for _ in 0..10 {
            assert!(group.relay_query(&query()).is_err());
        }
        assert!(stl.stats().admission_shed() >= 10, "upstream must shed");
        let breaker = group.breaker();
        assert_eq!(
            breaker.trips(),
            0,
            "a fast-reject from an overloaded upstream must not trip a peer's circuit"
        );
        for i in 0..group.len() {
            assert_eq!(
                breaker.state(group.relay(i).unwrap().id()),
                BreakerState::Closed
            );
        }
        stl.stop_workers();
    }

    #[test]
    fn remote_errors_not_retried() {
        let (group, _stl) = setup(2, false);
        let mut q = query();
        q.address.network_id = "unknown-network".into();
        // Discovery failure is relay-local config, not failover-able.
        assert!(matches!(
            group.relay_query(&q),
            Err(RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    fn empty_group_is_rejected() {
        let err = RelayGroup::new(Vec::new()).unwrap_err();
        assert!(matches!(err, RelayError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn health_tracks_failures_and_selection_prefers_healthy() {
        let (group, _stl) = setup(2, false);
        group.relay(0).unwrap().set_down(true);
        for _ in 0..8 {
            assert!(group.relay_query(&query()).is_ok());
        }
        let unhealthy = group.member_health(0).unwrap();
        let healthy = group.member_health(1).unwrap();
        assert!(
            unhealthy < healthy,
            "failing member must degrade: {unhealthy} vs {healthy}"
        );
        // Once buckets diverge, the healthy member is tried first even on
        // rotations that would have started at the degraded one, so
        // queries keep succeeding on the first attempt.
        assert!(group.member_health(1).unwrap() > 0.99);
    }

    #[test]
    fn breaker_isolates_repeatedly_failing_member() {
        let config = GroupConfig {
            breaker: BreakerConfig {
                consecutive_failures: 2,
                cooldown: Duration::from_secs(60),
                ..BreakerConfig::default()
            },
            ..GroupConfig::default()
        };
        let (group, _stl) = setup_with(2, false, config);
        // With every member down, failover keeps re-trying both, so the
        // failure count accumulates until the circuits trip.
        for i in 0..group.len() {
            group.relay(i).unwrap().set_down(true);
        }
        for _ in 0..2 {
            assert!(group.relay_query(&query()).is_err());
        }
        assert_eq!(
            group.breaker().state(group.relay(0).unwrap().id()),
            crate::breaker::BreakerState::Open
        );
        // With every circuit open the group degrades to forced attempts
        // instead of failing on CircuitOpen alone; the members are still
        // down, so the forced attempts report that.
        assert!(matches!(
            group.relay_query(&query()),
            Err(RelayError::RelayDown(_))
        ));
        assert!(group.breaker_skips() >= 2, "open circuits must be skipped");
        assert!(group.breaker().trips() >= 2);
        assert!(group.degraded_queries() >= 1);
        // Degraded mode keeps serving once the members recover, even
        // while the circuits are still cooling down.
        group.relay(0).unwrap().set_down(false);
        assert!(group.relay_query(&query()).is_ok());
    }

    #[test]
    fn zero_deadline_fails_with_classified_error() {
        let config = GroupConfig {
            deadline: Some(Duration::ZERO),
            ..GroupConfig::default()
        };
        let (group, _stl) = setup_with(2, false, config);
        let err = group.relay_query(&query()).unwrap_err();
        assert!(matches!(err, RelayError::DeadlineExceeded(_)), "{err}");
        assert_eq!(group.deadline_failures(), 1);
    }

    #[test]
    fn explicit_deadline_overrides_config() {
        let (group, _stl) = setup(2, false);
        let err = group
            .relay_query_with_deadline(&query(), Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, RelayError::DeadlineExceeded(_)));
        // And an ample explicit deadline succeeds.
        let ok = group.relay_query_with_deadline(&query(), Some(Duration::from_secs(5)));
        assert!(ok.is_ok());
    }

    #[test]
    fn hedged_mode_serves_queries_and_fails_over() {
        let config = GroupConfig {
            hedge_after: Some(Duration::from_millis(5)),
            ..GroupConfig::default()
        };
        let (group, _stl) = setup_with(3, false, config);
        for _ in 0..5 {
            let response = group.relay_query(&query()).unwrap();
            assert_eq!(response.result, b"data");
        }
        group.relay(0).unwrap().set_down(true);
        group.relay(1).unwrap().set_down(true);
        for _ in 0..5 {
            assert!(group.relay_query(&query()).is_ok());
        }
        for i in 0..group.len() {
            group.relay(i).unwrap().set_down(true);
        }
        assert!(group.relay_query(&query()).is_err());
    }
}
