//! Redundant relay groups.
//!
//! "The effects of DoS attacks can be mitigated by adding redundant
//! relays" (paper §5). A [`RelayGroup`] fronts several relay instances of
//! the same network and fails over between them.

use crate::error::RelayError;
use crate::service::RelayService;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tdt_wire::messages::{Query, QueryResponse};

/// A set of interchangeable relays for one network, with round-robin
/// selection and failover.
pub struct RelayGroup {
    relays: Vec<Arc<RelayService>>,
    next: AtomicUsize,
}

impl std::fmt::Debug for RelayGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayGroup")
            .field(
                "relays",
                &self.relays.iter().map(|r| r.id()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl RelayGroup {
    /// Creates a group from relay instances.
    ///
    /// # Panics
    ///
    /// Panics when `relays` is empty.
    pub fn new(relays: Vec<Arc<RelayService>>) -> Self {
        assert!(!relays.is_empty(), "a relay group needs at least one relay");
        RelayGroup {
            relays,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of member relays.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// Always false: groups cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of members currently marked down.
    pub fn down_count(&self) -> usize {
        self.relays.iter().filter(|r| r.is_down()).count()
    }

    /// Relays a query, starting from the next relay in round-robin order
    /// and failing over on relay-local errors (down, rate limited,
    /// transport failure). Errors reported by the *remote* side are
    /// returned immediately — retrying a different local relay cannot fix
    /// them.
    ///
    /// # Errors
    ///
    /// Returns the last failure when every member relay failed.
    pub fn relay_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last_err = None;
        let rotation = self
            .relays
            .iter()
            .cycle()
            .skip(start % self.relays.len().max(1))
            .take(self.relays.len());
        for relay in rotation {
            match relay.relay_query(query) {
                Ok(response) => return Ok(response),
                Err(
                    e @ (RelayError::RelayDown(_)
                    | RelayError::RateLimited
                    | RelayError::TransportFailed(_)),
                ) => last_err = Some(e),
                Err(other) => return Err(other),
            }
        }
        Err(last_err.unwrap_or_else(|| RelayError::RelayDown("all relays".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{DiscoveryService, StaticRegistry};
    use crate::driver::EchoDriver;
    use crate::ratelimit::RateLimiter;
    use crate::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
    use tdt_wire::messages::NetworkAddress;

    fn setup(n: usize, limited: bool) -> (RelayGroup, Arc<RelayService>) {
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        let stl_relay = Arc::new(RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        bus.register(
            "stl-relay",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        );
        let mut relays = Vec::new();
        for i in 0..n {
            let mut relay = RelayService::new(
                format!("swt-relay-{i}"),
                "swt",
                Arc::clone(&registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
            );
            if limited {
                relay = relay.with_rate_limiter(RateLimiter::new(1, 0.0));
            }
            relays.push(Arc::new(relay));
        }
        (RelayGroup::new(relays), stl_relay)
    }

    fn query() -> Query {
        Query {
            request_id: "r".into(),
            address: NetworkAddress::new("stl", "l", "c", "f").with_arg(b"data".to_vec()),
            ..Default::default()
        }
    }

    #[test]
    fn group_serves_queries() {
        let (group, _stl) = setup(3, false);
        assert_eq!(group.len(), 3);
        let response = group.relay_query(&query()).unwrap();
        assert_eq!(response.result, b"data");
    }

    #[test]
    fn failover_past_down_relays() {
        let (group, _stl) = setup(3, false);
        group.relays[0].set_down(true);
        group.relays[1].set_down(true);
        assert_eq!(group.down_count(), 2);
        // Should still succeed on the remaining relay, for many requests.
        for _ in 0..5 {
            assert!(group.relay_query(&query()).is_ok());
        }
    }

    #[test]
    fn all_down_fails() {
        let (group, _stl) = setup(2, false);
        for relay in &group.relays {
            relay.set_down(true);
        }
        assert!(matches!(
            group.relay_query(&query()),
            Err(RelayError::RelayDown(_))
        ));
    }

    #[test]
    fn rate_limited_relays_fail_over() {
        // Each relay allows exactly one request; the group absorbs N.
        let (group, _stl) = setup(3, true);
        for _ in 0..3 {
            assert!(group.relay_query(&query()).is_ok());
        }
        assert!(matches!(
            group.relay_query(&query()),
            Err(RelayError::RateLimited)
        ));
    }

    #[test]
    fn remote_errors_not_retried() {
        let (group, _stl) = setup(2, false);
        let mut q = query();
        q.address.network_id = "unknown-network".into();
        // Discovery failure is relay-local config, not failover-able.
        assert!(matches!(
            group.relay_query(&q),
            Err(RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one relay")]
    fn empty_group_panics() {
        RelayGroup::new(Vec::new());
    }
}
