//! Deadline-aware admission control for the relay worker pool.
//!
//! Under sustained overload an unbounded queue converts every request
//! into a deadline miss: work waits, times out, and the worker pool
//! burns cycles on jobs nobody is still waiting for (queue collapse).
//! The admission controller rejects *early* instead: before a request
//! is enqueued it estimates the queue wait from the current depth and
//! a smoothed (EWMA) per-job service time, and sheds the request with a
//! fast, retryable [`crate::RelayError::Overloaded`] when that estimate
//! cannot plausibly fit the deadline budget. Rejects cost microseconds;
//! queue collapse costs the whole deadline per request.
//!
//! The estimator is deliberately simple — `(depth + 1) × service_time /
//! workers` against the deadline — because admission only has to be
//! *roughly* right: an occasional over-admit still times out in the
//! queue (the worker discards it unstarted), and an occasional
//! over-shed is retried by the client, ideally against a less loaded
//! group member.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tuning knobs for [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queue depth below which requests are always admitted, so short
    /// bursts ride out in the queue instead of being shed while the
    /// service-time estimate is still warming up.
    pub burst_floor: u64,
    /// EWMA smoothing factor for the service-time estimate, in (0, 1];
    /// higher weighs recent jobs more.
    pub alpha: f64,
    /// Seed for the service-time estimate before any job has completed.
    pub initial_service_time: Duration,
    /// Fraction of the deadline budget the wait estimate must fit in,
    /// in (0, 1]. Admitting right up to the budget parks the queue
    /// exactly at the deadline boundary, where estimator noise converts
    /// borderline admits into deadline misses; headroom keeps the hover
    /// point safely inside the deadline.
    pub headroom: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            burst_floor: 8,
            alpha: 0.2,
            initial_service_time: Duration::from_micros(500),
            headroom: 0.8,
        }
    }
}

/// Decides, per request, whether the worker pool can plausibly meet the
/// request's deadline at the current queue depth. Shared by the
/// dispatcher (admit) and the workers (service-time feedback); all
/// state is atomic, so the gate itself never queues.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Worker count the estimate divides by; set when the pool starts.
    workers: AtomicU64,
    /// EWMA of per-job service time, in nanoseconds.
    service_ns: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionController {
    /// A controller with the given knobs, assuming one worker until
    /// [`set_workers`](Self::set_workers) is called.
    pub fn new(config: AdmissionConfig) -> Self {
        let initial_ns = config.initial_service_time.as_nanos().min(u64::MAX as u128) as u64;
        AdmissionController {
            config,
            workers: AtomicU64::new(1),
            service_ns: AtomicU64::new(initial_ns.max(1)),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Records how many workers drain the queue.
    pub fn set_workers(&self, workers: usize) {
        // Release pairs with the Acquire in `estimated_wait`: a gate that
        // observes the new worker count also observes everything the pool
        // set up before publishing it.
        self.workers.store(workers.max(1) as u64, Ordering::Release);
    }

    /// Admits or sheds a request arriving at `queue_depth` with `budget`
    /// left before its deadline. On shed, returns the wait estimate that
    /// disqualified the request.
    // lint:allow(obs: "Err here is a shed decision, not a failure; the dispatch caller records the admission.shed span event and the flight Admission record")
    pub fn admit(&self, queue_depth: u64, budget: Duration) -> Result<(), Duration> {
        if queue_depth < self.config.burst_floor {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let estimated = self.estimated_wait(queue_depth);
        let usable = budget.mul_f64(self.config.headroom.clamp(f64::EPSILON, 1.0));
        if estimated <= usable {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            Err(estimated)
        }
    }

    /// The estimated time until a request arriving at `queue_depth`
    /// would *finish*: every queued job plus the new one, spread across
    /// the workers, at the smoothed per-job service time.
    pub fn estimated_wait(&self, queue_depth: u64) -> Duration {
        let workers = self.workers.load(Ordering::Acquire).max(1);
        let service = self.service_ns.load(Ordering::Relaxed).max(1);
        let jobs = queue_depth.saturating_add(1);
        let ns = (jobs as u128).saturating_mul(service as u128) / workers as u128;
        Duration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Folds one completed job's service time into the EWMA estimate.
    pub fn observe_service_time(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u64::MAX as u128) as f64;
        let alpha = self.config.alpha.clamp(0.0, 1.0);
        // A separate load-then-store here silently drops concurrent
        // samples: with W workers completing jobs at once, up to W−1
        // observations vanish per window, and a burst of slow-job
        // reports can be erased by one stale fast-job writer — exactly
        // when the gate most needs to believe the queue got slower. The
        // CAS loop folds every sample in; Relaxed suffices because the
        // estimate is a freestanding statistic (no other data is
        // published through it).
        let _ = self
            .service_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                let next = (current as f64 + alpha * (sample - current as f64)).max(1.0);
                Some(next as u64)
            });
    }

    /// The smoothed per-job service-time estimate.
    pub fn service_time_estimate(&self) -> Duration {
        Duration::from_nanos(self.service_ns.load(Ordering::Relaxed))
    }

    /// Requests admitted to the queue.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed at the gate.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

impl Default for AdmissionController {
    fn default() -> Self {
        AdmissionController::new(AdmissionConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(burst_floor: u64, service: Duration) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            burst_floor,
            alpha: 0.5,
            initial_service_time: service,
            headroom: 1.0,
        })
    }

    #[test]
    fn admits_below_burst_floor_regardless_of_estimate() {
        let c = controller(4, Duration::from_secs(3600));
        for depth in 0..4 {
            assert!(c.admit(depth, Duration::from_millis(1)).is_ok());
        }
        assert_eq!(c.admitted(), 4);
        assert_eq!(c.shed(), 0);
    }

    #[test]
    fn sheds_when_estimated_wait_exceeds_budget() {
        let c = controller(0, Duration::from_millis(10));
        c.set_workers(2);
        // 20 queued jobs at 10 ms across 2 workers ≈ 105 ms wait.
        let wait = c.admit(20, Duration::from_millis(50)).unwrap_err();
        assert!(wait > Duration::from_millis(50));
        assert_eq!(c.shed(), 1);
        // The same depth with a generous budget is admitted.
        assert!(c.admit(20, Duration::from_secs(1)).is_ok());
        assert_eq!(c.admitted(), 1);
    }

    #[test]
    fn ewma_tracks_observed_service_times() {
        let c = controller(0, Duration::from_millis(1));
        for _ in 0..32 {
            c.observe_service_time(Duration::from_millis(9));
        }
        let est = c.service_time_estimate();
        assert!(
            est > Duration::from_millis(8) && est < Duration::from_millis(10),
            "estimate should converge near 9 ms, got {est:?}"
        );
        // A faster regime pulls the estimate back down.
        for _ in 0..32 {
            c.observe_service_time(Duration::from_micros(100));
        }
        assert!(c.service_time_estimate() < Duration::from_millis(1));
    }

    #[test]
    fn headroom_sheds_borderline_admits() {
        let c = AdmissionController::new(AdmissionConfig {
            burst_floor: 0,
            alpha: 0.5,
            initial_service_time: Duration::from_millis(10),
            headroom: 0.5,
        });
        // Estimated wait 20 ms fits a 30 ms budget outright but not the
        // 15 ms usable slice left after headroom.
        assert_eq!(c.estimated_wait(1), Duration::from_millis(20));
        assert!(c.admit(1, Duration::from_millis(30)).is_err());
        assert!(c.admit(1, Duration::from_millis(50)).is_ok());
    }

    #[test]
    fn more_workers_shrink_the_wait_estimate() {
        let c = controller(0, Duration::from_millis(10));
        c.set_workers(1);
        let one = c.estimated_wait(10);
        c.set_workers(10);
        let ten = c.estimated_wait(10);
        assert!(ten < one);
    }

    #[test]
    fn estimator_saturates_instead_of_overflowing() {
        let c = controller(0, Duration::from_secs(u64::MAX / 2));
        c.observe_service_time(Duration::from_secs(u64::MAX / 2));
        let wait = c.estimated_wait(u64::MAX);
        assert!(wait >= Duration::from_secs(1));
        assert!(c.admit(u64::MAX, Duration::from_secs(1)).is_err());
    }
}
