//! Token-bucket rate limiting: the relay-side DoS protection discussed in
//! the paper's availability analysis (§5: "DoS protection can also be
//! built into the relay service, protecting the peers themselves from such
//! attacks").

use parking_lot::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket.
#[derive(Debug)]
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    bucket: Mutex<Bucket>,
}

impl RateLimiter {
    /// Creates a bucket holding at most `capacity` tokens, refilled at
    /// `refill_per_sec` tokens per second. Starts full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, or if `refill_per_sec` is not a
    /// finite non-negative number. A negative rate would silently drain
    /// the bucket below zero and a NaN rate poisons every refill
    /// computation, wedging the limiter permanently open or shut.
    pub fn new(capacity: u32, refill_per_sec: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            refill_per_sec.is_finite() && refill_per_sec >= 0.0,
            "refill_per_sec must be finite and non-negative, got {refill_per_sec}"
        );
        RateLimiter {
            capacity: capacity as f64,
            refill_per_sec,
            bucket: Mutex::new(Bucket {
                tokens: capacity as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Tries to take one token; `false` means the request should be shed.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_n(1)
    }

    /// Advances the bucket to `now`, clamping the count into
    /// `0.0..=capacity` so no arithmetic edge case can push it outside
    /// the valid range.
    fn refill(&self, bucket: &mut Bucket) {
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.last_refill);
        bucket.tokens =
            (bucket.tokens + elapsed.as_secs_f64() * self.refill_per_sec).clamp(0.0, self.capacity);
        bucket.last_refill = now;
    }

    /// Tries to take `n` tokens atomically.
    pub fn try_acquire_n(&self, n: u32) -> bool {
        let mut bucket = self.bucket.lock();
        self.refill(&mut bucket);
        if bucket.tokens >= n as f64 {
            bucket.tokens -= n as f64;
            true
        } else {
            false
        }
    }

    /// Current token count (diagnostics).
    pub fn available(&self) -> f64 {
        let mut bucket = self.bucket.lock();
        self.refill(&mut bucket);
        bucket.tokens
    }

    /// Time until at least one token is available (zero when one already is).
    pub fn time_to_next_token(&self) -> Duration {
        let available = self.available();
        if available >= 1.0 || self.refill_per_sec <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64((1.0 - available) / self.refill_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity() {
        let rl = RateLimiter::new(5, 0.0);
        for _ in 0..5 {
            assert!(rl.try_acquire());
        }
        assert!(!rl.try_acquire());
    }

    #[test]
    fn refill_restores_tokens() {
        let rl = RateLimiter::new(2, 100.0); // 100 tokens/sec
        assert!(rl.try_acquire_n(2));
        assert!(!rl.try_acquire());
        std::thread::sleep(Duration::from_millis(30));
        assert!(rl.try_acquire());
    }

    #[test]
    fn never_exceeds_capacity() {
        let rl = RateLimiter::new(3, 1000.0);
        std::thread::sleep(Duration::from_millis(20));
        assert!(rl.available() <= 3.0);
    }

    #[test]
    fn acquire_n_atomicity() {
        let rl = RateLimiter::new(3, 0.0);
        assert!(!rl.try_acquire_n(4));
        assert!(rl.try_acquire_n(3));
        assert!(!rl.try_acquire());
    }

    #[test]
    fn time_to_next_token_behaviour() {
        let rl = RateLimiter::new(1, 10.0);
        assert_eq!(rl.time_to_next_token(), Duration::ZERO);
        assert!(rl.try_acquire());
        let wait = rl.time_to_next_token();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(110));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        RateLimiter::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_refill_rejected() {
        RateLimiter::new(5, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_refill_rejected() {
        RateLimiter::new(5, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinite_refill_rejected() {
        RateLimiter::new(5, f64::INFINITY);
    }

    #[test]
    fn tokens_never_go_negative() {
        let rl = RateLimiter::new(3, 0.5);
        while rl.try_acquire() {}
        assert!(rl.available() >= 0.0);
        assert!(!rl.try_acquire_n(3));
        assert!(rl.available() >= 0.0);
    }

    #[test]
    fn concurrent_acquires_bounded() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let rl = Arc::new(RateLimiter::new(50, 0.0));
        let granted = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rl = Arc::clone(&rl);
            let granted = Arc::clone(&granted);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    if rl.try_acquire() {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(granted.load(Ordering::Relaxed), 50);
    }
}
