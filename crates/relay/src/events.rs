//! Cross-network event subscription plumbing.
//!
//! The paper lists "publish and subscribe to events" among the operations
//! networks should expose for interoperability (§2) and defers the
//! protocol to future work (§7). This module implements it: a destination
//! relay subscribes on behalf of a local application; the source relay
//! attaches an [`EventSource`] that pushes peer-attested
//! [`EventNotice`]s back through the normal relay transport.

use crate::error::RelayError;
use tdt_wire::messages::{EventNotice, EventSubscribeRequest};

/// Delivers one event notice toward the subscriber. Returns an error when
/// the subscriber is gone (the source should stop forwarding).
pub type EventSink = Box<dyn Fn(EventNotice) -> Result<(), RelayError> + Send + Sync>;

/// A local network's event feed, pluggable into a relay the same way
/// network drivers are.
pub trait EventSource: Send + Sync {
    /// The network whose events this source serves.
    fn network_id(&self) -> &str;

    /// Starts forwarding block events for `request` into `sink`,
    /// returning once forwarding is set up (delivery is asynchronous).
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::DriverFailed`] when the subscription cannot
    /// be served (unknown network, unauthorized subscriber, ...).
    fn start(&self, request: &EventSubscribeRequest, sink: EventSink) -> Result<(), RelayError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct CountingSource {
        delivered: Arc<AtomicUsize>,
    }

    impl EventSource for CountingSource {
        fn network_id(&self) -> &str {
            "test-net"
        }

        fn start(
            &self,
            request: &EventSubscribeRequest,
            sink: EventSink,
        ) -> Result<(), RelayError> {
            // Deliver three synthetic notices synchronously.
            for n in 0..3 {
                let notice = EventNotice {
                    subscription_id: request.subscription_id.clone(),
                    network_id: "test-net".into(),
                    block_number: n,
                    ..Default::default()
                };
                if sink(notice).is_ok() {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        }
    }

    #[test]
    fn source_sink_contract() {
        let delivered = Arc::new(AtomicUsize::new(0));
        let source = CountingSource {
            delivered: Arc::clone(&delivered),
        };
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let sink: EventSink = Box::new(move |notice| {
            assert_eq!(notice.subscription_id, "sub-1");
            seen2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        let request = EventSubscribeRequest {
            subscription_id: "sub-1".into(),
            network_id: "test-net".into(),
            ..Default::default()
        };
        source.start(&request, sink).unwrap();
        assert_eq!(delivered.load(Ordering::Relaxed), 3);
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
