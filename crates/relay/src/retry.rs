//! Retry with bounded exponential backoff for relay-to-relay calls.
//!
//! Relay-to-relay traffic crosses administrative domains over unreliable
//! links, so transient faults (connection refused mid-restart, a relay
//! briefly marked down, a shed request) deserve another attempt, while
//! terminal protocol errors (the remote *answered* and said no) must
//! surface immediately. [`RetryingTransport`] wraps any
//! [`RelayTransport`] with that distinction plus capped exponential
//! backoff and jitter, so a thundering herd of retries from many relays
//! decorrelates instead of synchronizing.

use crate::breaker::{Admission, CircuitBreaker};
use crate::error::RelayError;
use crate::transport::RelayTransport;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_obs::span::{self as obs_span, RecordErr, Span};
use tdt_wire::messages::RelayEnvelope;

/// When and how long to back off between send attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Re-sends allowed after the initial attempt.
    pub max_retries: u32,
    /// Delay before the first retry; doubles on each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Fraction of the delay randomized around its nominal value, in
    /// `0.0..=1.0`: a delay `d` becomes uniform in `d*(1-j) ..= d*(1+j)`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// Creates a policy with explicit parameters.
    pub fn new(max_retries: u32, base_delay: Duration, max_delay: Duration, jitter: f64) -> Self {
        RetryPolicy {
            max_retries,
            base_delay,
            max_delay,
            jitter: jitter.clamp(0.0, 1.0),
        }
    }

    /// A policy that retries immediately, without sleeping — for tests
    /// and for transports with their own pacing.
    pub fn without_delay(max_retries: u32) -> Self {
        RetryPolicy::new(max_retries, Duration::ZERO, Duration::ZERO, 0.0)
    }

    /// Whether `error` is a transient fault worth retrying.
    ///
    /// Transport failures, pooled connections that died mid-request (the
    /// next attempt dials a fresh stream), downed relays, and shed
    /// (rate-limited) requests may heal on their own. Anything the remote
    /// actually decided — protocol errors, unknown networks or drivers,
    /// malformed frames — will fail identically on every attempt.
    pub fn is_retryable(error: &RelayError) -> bool {
        matches!(
            error,
            RelayError::TransportFailed(_)
                | RelayError::StaleConnection(_)
                | RelayError::RelayDown(_)
                | RelayError::RateLimited
                | RelayError::Overloaded(_)
        )
    }

    /// Whether a retryable `error` should count against the endpoint's
    /// circuit-breaker health.
    ///
    /// An admission shed ([`RelayError::Overloaded`]) is an *answer*
    /// from a live endpoint protecting its queue: worth retrying
    /// (ideally elsewhere), but tripping the breaker on it would turn a
    /// transient load spike into minutes of self-inflicted unavailability.
    pub fn counts_against_breaker(error: &RelayError) -> bool {
        Self::is_retryable(error) && !matches!(error, RelayError::Overloaded(_))
    }

    /// The backoff before retry number `attempt` (0-based), jittered.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_delay
            .as_nanos()
            .saturating_mul(1u128 << attempt.min(63));
        let capped = doubled.min(self.max_delay.as_nanos());
        if capped == 0 || self.jitter == 0.0 {
            return nanos_to_duration(capped);
        }
        // Uniform factor in [1 - jitter, 1 + jitter].
        let unit = rand::thread_rng().next_u64() as f64 / u64::MAX as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        let jittered = (capped as f64 * factor) as u128;
        nanos_to_duration(jittered.min(self.max_delay.as_nanos()))
    }

    /// Like [`RetryPolicy::backoff_delay`], additionally clamped to the
    /// remaining deadline budget — a retry sleep must never outlive the
    /// caller's deadline.
    pub fn backoff_delay_within(&self, attempt: u32, remaining: Duration) -> Duration {
        self.backoff_delay(attempt).min(remaining)
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// A [`RelayTransport`] decorator that retries transient faults.
///
/// Terminal errors and exhausted budgets propagate the *last* error seen.
/// Attempt counters make retry behavior observable in tests and stats.
pub struct RetryingTransport {
    inner: Arc<dyn RelayTransport>,
    policy: RetryPolicy,
    attempts: AtomicU64,
    retries: AtomicU64,
    breaker: Option<Arc<CircuitBreaker>>,
    deadline_budget: Option<Duration>,
}

impl std::fmt::Debug for RetryingTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingTransport")
            .field("policy", &self.policy)
            .field("attempts", &self.attempts)
            .field("retries", &self.retries)
            .field("breaker", &self.breaker.is_some())
            .field("deadline_budget", &self.deadline_budget)
            .finish()
    }
}

impl RetryingTransport {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: Arc<dyn RelayTransport>, policy: RetryPolicy) -> Self {
        RetryingTransport {
            inner,
            policy,
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            breaker: None,
            deadline_budget: None,
        }
    }

    /// Consults `breaker` before every attempt and reports transient
    /// outcomes back to it. While the endpoint's circuit is open, sends
    /// fail instantly with [`RelayError::CircuitOpen`] — which is *not*
    /// retryable here; a [`crate::redundancy::RelayGroup`] is expected to
    /// fail over to another member instead.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Bounds the whole send — attempts plus backoff sleeps — to
    /// `budget`. Backoff sleeps are clamped to the remaining budget and
    /// retries stop with [`RelayError::DeadlineExceeded`] once it runs
    /// out.
    pub fn with_deadline_budget(mut self, budget: Duration) -> Self {
        self.deadline_budget = Some(budget);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The breaker consulted before each attempt, if any.
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Total send attempts (including first tries).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Total re-sends after a transient fault.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

impl RelayTransport for RetryingTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let (mut span, _obs_guard) = obs_span::enter("transport.retry");
        self.send_with_span(endpoint, envelope, &mut span)
            .record_err(&mut span)
    }
}

impl RetryingTransport {
    fn send_with_span(
        &self,
        endpoint: &str,
        envelope: &RelayEnvelope,
        span: &mut Span,
    ) -> Result<RelayEnvelope, RelayError> {
        let started = Instant::now();
        let mut attempt = 0;
        loop {
            let mut admission = Admission::default();
            if let Some(breaker) = &self.breaker {
                match breaker.try_acquire(endpoint) {
                    Ok(a) => admission = a,
                    Err(e) => {
                        span.event("breaker.fast_reject");
                        return Err(e);
                    }
                }
            }
            self.attempts.fetch_add(1, Ordering::Relaxed);
            let outcome = self.inner.send(endpoint, envelope);
            if let Some(breaker) = &self.breaker {
                // Terminal errors and admission sheds mean the endpoint
                // answered — only transient faults count against its
                // health.
                let healthy = match &outcome {
                    Ok(_) => true,
                    Err(e) => !RetryPolicy::counts_against_breaker(e),
                };
                breaker.record_outcome(endpoint, admission, healthy);
            }
            match outcome {
                Ok(reply) => return Ok(reply),
                Err(error)
                    if RetryPolicy::is_retryable(&error) && attempt < self.policy.max_retries =>
                {
                    let delay = match self.deadline_budget {
                        None => self.policy.backoff_delay(attempt),
                        Some(budget) => {
                            let Some(remaining) = budget.checked_sub(started.elapsed()) else {
                                return Err(RelayError::DeadlineExceeded(format!(
                                    "retry budget {budget:?} spent after {} attempts; last: {error}",
                                    attempt + 1
                                )));
                            };
                            self.policy.backoff_delay_within(attempt, remaining)
                        }
                    };
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    span.event("retry.attempt");
                    tdt_obs::flight::record(
                        tdt_obs::FlightKind::Retry,
                        u16::try_from(attempt + 1).unwrap_or(u16::MAX),
                        delay.as_nanos().min(u128::from(u64::MAX)) as u64,
                        0,
                    );
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(error) => return Err(error),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use tdt_wire::messages::EnvelopeKind;

    /// Fails with scripted errors before finally succeeding.
    struct FlakyTransport {
        failures: Mutex<Vec<RelayError>>,
    }

    impl FlakyTransport {
        fn failing(failures: Vec<RelayError>) -> Self {
            FlakyTransport {
                failures: Mutex::new(failures),
            }
        }
    }

    impl RelayTransport for FlakyTransport {
        fn send(
            &self,
            _endpoint: &str,
            envelope: &RelayEnvelope,
        ) -> Result<RelayEnvelope, RelayError> {
            let mut failures = self.failures.lock().unwrap();
            if failures.is_empty() {
                Ok(RelayEnvelope {
                    kind: EnvelopeKind::Ack,
                    source_relay: "flaky".into(),
                    dest_network: envelope.dest_network.clone(),
                    payload: Vec::new(),
                    correlation_id: 0,
                    trace: Default::default(),
                    batch: Vec::new(),
                })
            } else {
                Err(failures.remove(0))
            }
        }
    }

    fn envelope() -> RelayEnvelope {
        RelayEnvelope {
            kind: EnvelopeKind::Ping,
            source_relay: "test".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        }
    }

    fn transient(k: usize) -> Vec<RelayError> {
        (0..k)
            .map(|i| RelayError::TransportFailed(format!("transient {i}")))
            .collect()
    }

    #[test]
    fn k_transient_failures_then_success_costs_exactly_k_retries() {
        for k in 0..4 {
            let transport = RetryingTransport::new(
                Arc::new(FlakyTransport::failing(transient(k))),
                RetryPolicy::without_delay(5),
            );
            let reply = transport.send("inproc:x", &envelope()).unwrap();
            assert_eq!(reply.kind, EnvelopeKind::Ack);
            assert_eq!(transport.retries(), k as u64, "k = {k}");
            assert_eq!(transport.attempts(), k as u64 + 1, "k = {k}");
        }
    }

    #[test]
    fn exhausted_budget_returns_last_error() {
        let transport = RetryingTransport::new(
            Arc::new(FlakyTransport::failing(transient(10))),
            RetryPolicy::without_delay(2),
        );
        let err = transport.send("inproc:x", &envelope()).unwrap_err();
        assert!(matches!(&err, RelayError::TransportFailed(m) if m == "transient 2"));
        assert_eq!(transport.attempts(), 3);
        assert_eq!(transport.retries(), 2);
    }

    #[test]
    fn terminal_errors_fail_immediately() {
        for terminal in [
            RelayError::Remote("nope".into()),
            RelayError::DiscoveryFailed("unknown network".into()),
            RelayError::NoDriver("mars".into()),
            RelayError::DriverFailed("boom".into()),
        ] {
            let transport = RetryingTransport::new(
                Arc::new(FlakyTransport::failing(vec![terminal])),
                RetryPolicy::without_delay(5),
            );
            assert!(transport.send("inproc:x", &envelope()).is_err());
            assert_eq!(transport.attempts(), 1);
            assert_eq!(transport.retries(), 0);
        }
    }

    #[test]
    fn mixed_transient_kinds_all_retry() {
        let transport = RetryingTransport::new(
            Arc::new(FlakyTransport::failing(vec![
                RelayError::TransportFailed("t".into()),
                RelayError::RelayDown("r1".into()),
                RelayError::RateLimited,
            ])),
            RetryPolicy::without_delay(5),
        );
        assert!(transport.send("inproc:x", &envelope()).is_ok());
        assert_eq!(transport.retries(), 3);
    }

    #[test]
    fn backoff_doubles_and_caps_without_jitter() {
        let policy = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(45), 0.0);
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(40));
        // Capped from here on, including absurd attempt numbers.
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(45));
        assert_eq!(policy.backoff_delay(200), Duration::from_millis(45));
    }

    #[test]
    fn jittered_backoff_stays_in_band() {
        let policy = RetryPolicy::new(3, Duration::from_millis(10), Duration::from_secs(1), 0.5);
        for _ in 0..64 {
            let d = policy.backoff_delay(0);
            assert!(
                d >= Duration::from_millis(5) && d <= Duration::from_millis(15),
                "delay {d:?} outside jitter band"
            );
        }
    }

    #[test]
    fn jittered_backoff_never_exceeds_cap_or_deadline_budget() {
        // Large base + max jitter: the nominal delay would overshoot both
        // bounds, so this pins the clamping itself, not a lucky draw.
        let policy = RetryPolicy::new(
            8,
            Duration::from_millis(100),
            Duration::from_millis(60),
            1.0,
        );
        for attempt in 0..8 {
            for _ in 0..64 {
                assert!(
                    policy.backoff_delay(attempt) <= Duration::from_millis(60),
                    "attempt {attempt}: jittered delay exceeded max_delay"
                );
                let remaining = Duration::from_millis(7);
                assert!(
                    policy.backoff_delay_within(attempt, remaining) <= remaining,
                    "attempt {attempt}: delay exceeded remaining deadline budget"
                );
            }
        }
        // Growth stays pinned with jitter disabled.
        let exact = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_secs(10), 0.0);
        let growth: Vec<Duration> = (0..5).map(|a| exact.backoff_delay(a)).collect();
        assert_eq!(
            growth,
            [10, 20, 40, 80, 160].map(Duration::from_millis).to_vec()
        );
    }

    #[test]
    fn deadline_budget_stops_retries_with_classified_error() {
        let transport = RetryingTransport::new(
            Arc::new(FlakyTransport::failing(transient(50))),
            RetryPolicy::new(50, Duration::from_millis(5), Duration::from_millis(5), 0.0),
        )
        .with_deadline_budget(Duration::from_millis(30));
        let started = std::time::Instant::now();
        let err = transport.send("inproc:x", &envelope()).unwrap_err();
        assert!(matches!(err, RelayError::DeadlineExceeded(_)), "{err}");
        // Sleeps were clamped to the remaining budget: well under the
        // 50 × 5 ms the policy alone would have allowed.
        assert!(started.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn breaker_opens_after_repeated_transport_failures() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 3,
            ..BreakerConfig::default()
        }));
        let transport = RetryingTransport::new(
            Arc::new(FlakyTransport::failing(transient(10))),
            RetryPolicy::without_delay(2),
        )
        .with_breaker(Arc::clone(&breaker));
        // 3 attempts = 3 transient failures: the circuit trips.
        assert!(transport.send("inproc:x", &envelope()).is_err());
        assert_eq!(breaker.state("inproc:x"), BreakerState::Open);
        // Next send is rejected locally without an attempt.
        let before = transport.attempts();
        let err = transport.send("inproc:x", &envelope()).unwrap_err();
        assert!(matches!(err, RelayError::CircuitOpen(_)));
        assert_eq!(transport.attempts(), before);
    }

    #[test]
    fn terminal_errors_do_not_trip_breaker() {
        use crate::breaker::BreakerState;
        let breaker = Arc::new(CircuitBreaker::default());
        let transport = RetryingTransport::new(
            Arc::new(FlakyTransport::failing(vec![
                RelayError::Remote("no".into()),
                RelayError::Remote("no".into()),
                RelayError::Remote("no".into()),
                RelayError::Remote("no".into()),
            ])),
            RetryPolicy::without_delay(0),
        )
        .with_breaker(Arc::clone(&breaker));
        for _ in 0..4 {
            assert!(matches!(
                transport.send("inproc:x", &envelope()),
                Err(RelayError::Remote(_))
            ));
        }
        assert_eq!(breaker.state("inproc:x"), BreakerState::Closed);
    }

    #[test]
    fn retryability_classification() {
        assert!(RetryPolicy::is_retryable(&RelayError::TransportFailed(
            "x".into()
        )));
        assert!(RetryPolicy::is_retryable(&RelayError::StaleConnection(
            "conn closed".into()
        )));
        assert!(RetryPolicy::is_retryable(&RelayError::RelayDown(
            "r".into()
        )));
        assert!(RetryPolicy::is_retryable(&RelayError::RateLimited));
        assert!(RetryPolicy::is_retryable(&RelayError::Overloaded(
            "queue full".into()
        )));
        assert!(!RetryPolicy::is_retryable(&RelayError::Remote("x".into())));
        assert!(!RetryPolicy::is_retryable(&RelayError::DiscoveryFailed(
            "x".into()
        )));
        assert!(!RetryPolicy::is_retryable(&RelayError::Wire(
            tdt_wire::error::WireError::UnexpectedEof
        )));
    }

    #[test]
    fn sheds_are_retryable_but_not_breaker_failures() {
        let shed = RelayError::Overloaded("queue full".into());
        assert!(RetryPolicy::is_retryable(&shed));
        assert!(!RetryPolicy::counts_against_breaker(&shed));
        // Genuine transient faults still count against the endpoint.
        for e in [
            RelayError::TransportFailed("x".into()),
            RelayError::StaleConnection("x".into()),
            RelayError::RelayDown("r".into()),
            RelayError::RateLimited,
        ] {
            assert!(RetryPolicy::counts_against_breaker(&e));
        }
        // Terminal errors never did.
        assert!(!RetryPolicy::counts_against_breaker(&RelayError::Remote(
            "x".into()
        )));
    }
}
