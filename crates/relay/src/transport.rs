//! Relay-to-relay transports.
//!
//! Two interchangeable transports carry [`RelayEnvelope`]s between relays:
//! an in-process bus (deterministic, used by tests and benches) and a real
//! TCP transport using length-prefixed frames. Endpoint strings select the
//! transport: `inproc:<relay-id>` or `tcp:<host>:<port>`.

use crate::error::RelayError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdt_wire::codec::Message;
use tdt_wire::framing::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tdt_wire::messages::RelayEnvelope;

/// Something that can answer relay envelopes (a relay service).
pub trait EnvelopeHandler: Send + Sync {
    /// Handles one request envelope, returning the response envelope.
    fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope;
}

/// Request/response transport between relays.
pub trait RelayTransport: Send + Sync {
    /// Sends `envelope` to `endpoint` and waits for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when the endpoint is
    /// unreachable or the exchange fails.
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError>;
}

/// In-process bus: endpoints are handler registrations in a shared map.
#[derive(Default)]
pub struct InProcessBus {
    handlers: RwLock<HashMap<String, Arc<dyn EnvelopeHandler>>>,
}

impl std::fmt::Debug for InProcessBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessBus")
            .field("endpoints", &self.handlers.read().len())
            .finish()
    }
}

impl InProcessBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` under `relay_id` (endpoint `inproc:<relay_id>`).
    pub fn register(&self, relay_id: impl Into<String>, handler: Arc<dyn EnvelopeHandler>) {
        self.handlers.write().insert(relay_id.into(), handler);
    }

    /// Removes a registration (simulates a relay going offline).
    pub fn deregister(&self, relay_id: &str) {
        self.handlers.write().remove(relay_id);
    }
}

impl RelayTransport for InProcessBus {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let relay_id = endpoint.strip_prefix("inproc:").ok_or_else(|| {
            RelayError::TransportFailed(format!(
                "in-process bus cannot serve endpoint {endpoint:?}"
            ))
        })?;
        let handler = self
            .handlers
            .read()
            .get(relay_id)
            .cloned()
            .ok_or_else(|| {
                RelayError::TransportFailed(format!("no relay registered at {endpoint:?}"))
            })?;
        Ok(handler.handle(envelope.clone()))
    }
}

/// TCP transport: connects per request, frames the envelope, reads the
/// framed reply.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    max_frame: usize,
    timeout: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates a transport with the default frame cap and a 5 s timeout.
    pub fn new() -> Self {
        TcpTransport {
            max_frame: DEFAULT_MAX_FRAME,
            timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

impl RelayTransport for TcpTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let addr = endpoint.strip_prefix("tcp:").ok_or_else(|| {
            RelayError::TransportFailed(format!("tcp transport cannot serve endpoint {endpoint:?}"))
        })?;
        let stream = TcpStream::connect(addr)
            .map_err(|e| RelayError::TransportFailed(format!("connect {addr}: {e}")))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let mut stream = stream;
        write_frame(&mut stream, &envelope.encode_to_vec(), self.max_frame)
            .map_err(|e| RelayError::TransportFailed(format!("send to {addr}: {e}")))?;
        stream.flush().ok();
        let reply = read_frame(&mut stream, self.max_frame)
            .map_err(|e| RelayError::TransportFailed(format!("receive from {addr}: {e}")))?;
        Ok(RelayEnvelope::decode_from_slice(&reply)?)
    }
}

/// A TCP server front-end for a relay: accepts framed envelopes and feeds
/// them to an [`EnvelopeHandler`].
#[derive(Debug)]
pub struct TcpRelayServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpRelayServer {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when binding fails.
    pub fn spawn(bind_addr: &str, handler: Arc<dyn EnvelopeHandler>) -> Result<Self, RelayError> {
        let listener = TcpListener::bind(bind_addr)
            .map_err(|e| RelayError::TransportFailed(format!("bind {bind_addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RelayError::TransportFailed(e.to_string()))?;
        listener.set_nonblocking(true).ok();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let handler = Arc::clone(&handler);
                        std::thread::spawn(move || {
                            let mut stream = stream;
                            stream
                                .set_read_timeout(Some(Duration::from_secs(10)))
                                .ok();
                            // Serve framed requests until the peer closes.
                            while let Ok(frame) = read_frame(&mut stream, DEFAULT_MAX_FRAME) {
                                let reply = match RelayEnvelope::decode_from_slice(&frame) {
                                    Ok(envelope) => handler.handle(envelope),
                                    Err(e) => RelayEnvelope::error(
                                        "tcp-server",
                                        "",
                                        format!("malformed envelope: {e}"),
                                    ),
                                };
                                if write_frame(
                                    &mut stream,
                                    &reply.encode_to_vec(),
                                    DEFAULT_MAX_FRAME,
                                )
                                .is_err()
                                {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TcpRelayServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address, e.g. to build the `tcp:<addr>` endpoint string.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The endpoint string clients should use.
    pub fn endpoint(&self) -> String {
        format!("tcp:{}", self.local_addr)
    }

    /// Signals the accept loop to stop (without blocking).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for TcpRelayServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_wire::messages::EnvelopeKind;

    /// Echoes the payload back as a response envelope.
    struct EchoHandler;

    impl EnvelopeHandler for EchoHandler {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                source_relay: "echo".into(),
                dest_network: envelope.dest_network,
                payload: envelope.payload,
            }
        }
    }

    fn request(payload: &[u8]) -> RelayEnvelope {
        RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "test".into(),
            dest_network: "target".into(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn inproc_roundtrip() {
        let bus = InProcessBus::new();
        bus.register("echo-relay", Arc::new(EchoHandler));
        let reply = bus.send("inproc:echo-relay", &request(b"ping")).unwrap();
        assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
        assert_eq!(reply.payload, b"ping");
    }

    #[test]
    fn inproc_unknown_endpoint() {
        let bus = InProcessBus::new();
        assert!(matches!(
            bus.send("inproc:ghost", &request(b"x")),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn inproc_rejects_foreign_scheme() {
        let bus = InProcessBus::new();
        assert!(bus.send("tcp:1.2.3.4:1", &request(b"x")).is_err());
    }

    #[test]
    fn inproc_deregister() {
        let bus = InProcessBus::new();
        bus.register("r", Arc::new(EchoHandler));
        assert!(bus.send("inproc:r", &request(b"x")).is_ok());
        bus.deregister("r");
        assert!(bus.send("inproc:r", &request(b"x")).is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = TcpTransport::new();
        let reply = transport
            .send(&server.endpoint(), &request(b"over tcp"))
            .unwrap();
        assert_eq!(reply.payload, b"over tcp");
        assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
    }

    #[test]
    fn tcp_multiple_sequential_requests() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = TcpTransport::new();
        for i in 0..5 {
            let payload = format!("msg-{i}").into_bytes();
            let reply = transport.send(&server.endpoint(), &request(&payload)).unwrap();
            assert_eq!(reply.payload, payload);
        }
    }

    #[test]
    fn tcp_concurrent_requests() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let endpoint = server.endpoint();
        let mut handles = Vec::new();
        for i in 0..4 {
            let endpoint = endpoint.clone();
            handles.push(std::thread::spawn(move || {
                let transport = TcpTransport::new();
                let payload = format!("thread-{i}").into_bytes();
                let reply = transport.send(&endpoint, &request(&payload)).unwrap();
                assert_eq!(reply.payload, payload);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tcp_unreachable_endpoint() {
        let transport = TcpTransport::new().with_timeout(Duration::from_millis(300));
        // Port 1 is almost certainly closed.
        assert!(matches!(
            transport.send("tcp:127.0.0.1:1", &request(b"x")),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn tcp_bad_scheme() {
        let transport = TcpTransport::new();
        assert!(transport.send("inproc:x", &request(b"x")).is_err());
    }
}
